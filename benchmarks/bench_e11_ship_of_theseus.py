"""E11 — §1: the Ship of Theseus — pipelined cohorts vs en-masse
deployment.

"Even if it is unlikely for any one device to last multiple decades, it
is both reasonable and likely for municipal-scale systems to last for
decades."  A fleet refreshed in staggered geographic batches outlives
the century-scale study window; the same hardware deployed once and
abandoned dies with its cohort.
"""

import os

import numpy as np

from repro.analysis.report import PaperComparison
from repro.core import en_masse_fleet, pipelined_fleet, summarize, units
from repro.core.rng import RandomStreams
from repro.reliability import battery_powered_device
from repro.runtime import MonteCarloRunner

from conftest import emit

MC_RUNS = 8


def pipelined_coverage_sample(index: int, seed: int) -> float:
    """MC task: mean coverage of the pipelined fleet over a century.

    Module-level (picklable) so ``repro.runtime`` can fan it across
    worker processes; the seed arrives via the runner's fork lineage.
    """
    rng = RandomStreams(seed=seed).get("theseus")
    model = battery_powered_device()
    timeline = pipelined_fleet(
        nominal_size=1200,
        lifetime_sampler=lambda n: model.sample(rng, n),
        refresh_interval=units.years(8.0),
        horizon=units.years(100.0),
        batches=12,
    )
    return summarize(
        "pipelined", timeline, units.years(100.0), units.years(0.5)
    ).mean_coverage


def compute_theseus(rng):
    model = battery_powered_device()
    sampler = lambda n: model.sample(rng, n)
    horizon = units.years(100.0)
    step = units.years(0.5)
    fleet = 1200

    pipelined = pipelined_fleet(
        nominal_size=fleet,
        lifetime_sampler=sampler,
        refresh_interval=units.years(8.0),
        horizon=horizon,
        batches=12,
    )
    abandoned = pipelined_fleet(
        nominal_size=fleet,
        lifetime_sampler=sampler,
        refresh_interval=units.years(8.0),
        horizon=horizon,
        batches=12,
        stop_replacing_after=units.years(30.0),
    )
    single = en_masse_fleet(fleet, sampler)
    return (
        summarize("pipelined (Ship of Theseus)", pipelined, horizon, step),
        summarize("abandoned at year 30", abandoned, horizon, step),
        summarize("en-masse, never replaced", single, horizon, step),
    )


def compute_theseus_with_mc(rng):
    strategies = compute_theseus(rng)
    study = MonteCarloRunner(
        pipelined_coverage_sample,
        runs=MC_RUNS,
        base_seed=2021,
        workers=min(4, os.cpu_count() or 1),
        label="theseus-coverage",
    ).run()
    return strategies, study


def test_e11_ship_of_theseus(benchmark, rng):
    (pipelined, abandoned, single), study = benchmark.pedantic(
        compute_theseus_with_mc, rounds=1, iterations=1, args=(rng,)
    )
    holds = (
        pipelined.system_lifetime_years == 100.0
        and single.system_lifetime_years < 20.0
        and 30.0 < abandoned.system_lifetime_years < 60.0
    )
    rows = [
        PaperComparison(
            experiment="E11",
            claim="pipelined municipal systems reach century scale on ~10-yr devices",
            paper_value="aggregate system lifetime reaches decades/century",
            measured_value=(
                f"pipelined system alive at 100 yr (coverage "
                f"{pipelined.mean_coverage:.0%}); en-masse dies at "
                f"{single.system_lifetime_years:.0f} yr"
            ),
            holds=holds,
        ),
    ]
    for row in (pipelined, abandoned, single):
        rows.append(
            f"{row.strategy:<28} lifetime {row.system_lifetime_years:5.1f} yr, "
            f"mean coverage {row.mean_coverage:.0%}, "
            f"{row.replacements_per_year:6.1f} replacements/yr"
        )
    rows.append(
        f"pipelined coverage across {study.uptime.runs} seeds: "
        f"mean {study.uptime.mean:.0%}, worst {study.uptime.worst:.0%} "
        f"({study.workers} worker(s))"
    )
    emit(rows)
    assert holds
    # The factor: pipelining buys >5x the en-masse system lifetime.
    assert pipelined.system_lifetime_years > 5.0 * single.system_lifetime_years
    # The claim is seed-robust: every seed's century coverage stays high.
    assert study.uptime.worst > 0.9
