"""E11 — §1: the Ship of Theseus — pipelined cohorts vs en-masse
deployment.

"Even if it is unlikely for any one device to last multiple decades, it
is both reasonable and likely for municipal-scale systems to last for
decades."  A fleet refreshed in staggered geographic batches outlives
the century-scale study window; the same hardware deployed once and
abandoned dies with its cohort.
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.core import en_masse_fleet, pipelined_fleet, summarize, units
from repro.reliability import battery_powered_device

from conftest import emit


def compute_theseus(rng):
    model = battery_powered_device()
    sampler = lambda n: model.sample(rng, n)
    horizon = units.years(100.0)
    step = units.years(0.5)
    fleet = 1200

    pipelined = pipelined_fleet(
        nominal_size=fleet,
        lifetime_sampler=sampler,
        refresh_interval=units.years(8.0),
        horizon=horizon,
        batches=12,
    )
    abandoned = pipelined_fleet(
        nominal_size=fleet,
        lifetime_sampler=sampler,
        refresh_interval=units.years(8.0),
        horizon=horizon,
        batches=12,
        stop_replacing_after=units.years(30.0),
    )
    single = en_masse_fleet(fleet, sampler)
    return (
        summarize("pipelined (Ship of Theseus)", pipelined, horizon, step),
        summarize("abandoned at year 30", abandoned, horizon, step),
        summarize("en-masse, never replaced", single, horizon, step),
    )


def test_e11_ship_of_theseus(benchmark, rng):
    pipelined, abandoned, single = benchmark.pedantic(
        compute_theseus, rounds=1, iterations=1, args=(rng,)
    )
    holds = (
        pipelined.system_lifetime_years == 100.0
        and single.system_lifetime_years < 20.0
        and 30.0 < abandoned.system_lifetime_years < 60.0
    )
    rows = [
        PaperComparison(
            experiment="E11",
            claim="pipelined municipal systems reach century scale on ~10-yr devices",
            paper_value="aggregate system lifetime reaches decades/century",
            measured_value=(
                f"pipelined system alive at 100 yr (coverage "
                f"{pipelined.mean_coverage:.0%}); en-masse dies at "
                f"{single.system_lifetime_years:.0f} yr"
            ),
            holds=holds,
        ),
    ]
    for row in (pipelined, abandoned, single):
        rows.append(
            f"{row.strategy:<28} lifetime {row.system_lifetime_years:5.1f} yr, "
            f"mean coverage {row.mean_coverage:.0%}, "
            f"{row.replacements_per_year:6.1f} replacements/yr"
        )
    emit(rows)
    assert holds
    # The factor: pipelining buys >5x the en-masse system lifetime.
    assert pipelined.system_lifetime_years > 5.0 * single.system_lifetime_years
