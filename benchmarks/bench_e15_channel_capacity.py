"""E15 — Figure 1's fan-out, capacity-checked.

"Gateways may support thousands of devices" — true only if the shared
channel carries them.  Unslotted-ALOHA capacity per radio at the
paper's hourly 24-byte schedule: 802.15.4 supports Figure 1's thousands
with two orders of magnitude to spare; LoRa SF12 tops out below two
hundred devices per channel, which is why dense deployments must use
fast PHYs or slow cadences.
"""

from repro.analysis.report import PaperComparison
from repro.core import units
from repro.radio import LoRaParameters, capacity_table, density_sweep, ieee802154

from conftest import emit


def compute_capacity():
    airtimes = {
        "802.15.4": ieee802154.airtime_s(24),
        "lora-sf7": LoRaParameters(spreading_factor=7).airtime_s(24),
        "lora-sf10": LoRaParameters(spreading_factor=10).airtime_s(24),
        "lora-sf12": LoRaParameters(spreading_factor=12).airtime_s(24),
    }
    capacities = capacity_table(airtimes, interval_s=units.HOUR, min_delivery=0.9)
    sweep = density_sweep(
        airtimes["lora-sf10"], units.HOUR, (100, 500, 1000, 5000, 20000)
    )
    return airtimes, capacities, sweep


def test_e15_channel_capacity(benchmark):
    airtimes, capacities, sweep = benchmark(compute_capacity)
    holds = capacities["802.15.4"] > 1000 and capacities["lora-sf12"] < 1000
    rows = [
        PaperComparison(
            experiment="E15",
            claim="Figure 1: a gateway may support thousands of devices",
            paper_value="thousands of devices per gateway",
            measured_value=(
                f"hourly @ 90% per-frame delivery: 802.15.4 carries "
                f"{capacities['802.15.4']:,} devices/channel; LoRa SF12 only "
                f"{capacities['lora-sf12']:,}"
            ),
            holds=holds,
        ),
    ]
    for name, capacity in capacities.items():
        rows.append(
            f"{name:<10} airtime {airtimes[name]*1e3:8.2f} ms -> "
            f"{capacity:>9,} devices/channel"
        )
    rows.append("LoRa SF10 congestion sweep (hourly reporters):")
    for point in sweep:
        rows.append(
            f"  {point.devices:>6,} devices: delivery "
            f"{point.delivery_probability:.3f}, goodput "
            f"{point.effective_reports_per_hour:,.0f} reports/h"
        )
    emit(rows)
    assert holds
    # SF12 vs 802.15.4: ~3 orders of magnitude apart.
    assert capacities["802.15.4"] > 100 * capacities["lora-sf12"]
