"""Sharded Monte-Carlo runtime: scheduler + shard/merge performance.

The perf-regression harness for the work-queue scheduler PR.  Three
measurements, written to ``BENCH_runtime.json`` (``baseline`` pinned on
first capture, ``latest`` rewritten every run, same-host gating like
``BENCH_kernel.json``):

1. **Scaling curve** — wall clock of the same study at workers 1/2/4
   through the dynamic work-queue scheduler.
2. **Dynamic vs static** — the dynamic scheduler raced against the
   frozen PR-3 idiom (``pool.map`` with ``static_chunksize``) on the
   identical study.  Both sides run here and now, so the ratio is
   hardware-independent and always asserted: dynamic must not be
   slower than static beyond tolerance.
3. **Shard + merge round trip** — two on-disk shards written, merged,
   and checked bit-identical to the in-process study; merge wall clock
   recorded as the artifact-overhead figure.

A per-run dispatch-overhead figure (scheduler wall clock not accounted
for by the runs themselves) rides along for trajectory.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import platform
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from pathlib import Path

from repro.core import units
from repro.runtime import (
    MonteCarloRunner,
    ScenarioTask,
    derive_seeds,
    execute_runs,
    merge_shards,
    run_shard,
)
from repro.runtime.queue import measure_dispatch_overhead, static_chunksize
from repro.runtime.runner import _execute

from conftest import emit

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

SCENARIO = "owned-only"
HORIZON = units.years(2.0)
CADENCE = units.days(7.0)
RUNS = 16
BASE_SEED = 100
WORKER_GRID = (1, 2, 4)
REPS = 3

#: Same-machine bar, always armed: the dynamic scheduler races the
#: frozen static-chunk ``pool.map`` idiom on the identical study and
#: may cost at most this factor of its wall clock.
MAX_DYNAMIC_VS_STATIC = 1.15

#: Same-host regression bar vs the pinned baseline capture.
MAX_REGRESSION = 1.25


def host_facts() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
    }


def _task() -> ScenarioTask:
    return ScenarioTask(
        scenario=SCENARIO, horizon=HORIZON, report_interval=CADENCE
    )


def _pairs():
    return list(zip(range(RUNS), derive_seeds(BASE_SEED, RUNS)))


def time_dynamic(task, workers: int):
    """Best-of-REPS wall clock through the work-queue scheduler."""
    walls, report = [], None
    for _ in range(REPS):
        started = time.perf_counter()
        report = execute_runs(_execute, task, _pairs(), workers=workers)
        walls.append(time.perf_counter() - started)
    return min(walls), report


def time_static(task, workers: int) -> float:
    """Best-of-REPS wall clock through the frozen PR-3 static idiom."""
    indices, seeds = zip(*_pairs())
    chunk = static_chunksize(RUNS, workers)
    walls = []
    for _ in range(REPS):
        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(partial(_execute, task), indices, seeds, chunksize=chunk)
            )
        walls.append(time.perf_counter() - started)
        assert len(results) == RUNS
    return min(walls)


def measure_shard_merge(task) -> dict:
    """Write a 2-shard partition to disk, merge, and time each phase."""
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        started = time.perf_counter()
        for shard in range(2):
            path = os.path.join(tmp, f"s{shard}.mcr")
            run_shard(
                task, runs=RUNS, base_seed=BASE_SEED, shard=shard,
                nshards=2, out_path=path, workers=1,
            )
            paths.append(path)
        shards_s = time.perf_counter() - started
        shard_bytes = sum(os.path.getsize(p) for p in paths)
        started = time.perf_counter()
        study = merge_shards(paths)
        merge_s = time.perf_counter() - started
    return {
        "nshards": 2,
        "shards_wall_s": shards_s,
        "shard_bytes": shard_bytes,
        "merge_wall_s": merge_s,
        "uptime": dataclasses.asdict(study.uptime),
    }


def load_document() -> dict:
    if BENCH_JSON.exists():
        return json.loads(BENCH_JSON.read_text())
    return {"version": 1, "baseline": None, "latest": None}


def capture() -> dict:
    task = _task()
    scaling = {}
    overhead_s = None
    for workers in WORKER_GRID:
        wall_s, report = time_dynamic(task, workers)
        scaling[str(workers)] = wall_s
        if workers == max(WORKER_GRID):
            overhead_s = measure_dispatch_overhead(report, wall_s)
    pool_workers = 2
    static_s = time_static(task, pool_workers)
    dynamic_s, _ = time_dynamic(task, pool_workers)
    return {
        "captured_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "scheduler": "work-queue dynamic chunking",
        "host": host_facts(),
        "study": {
            "scenario": SCENARIO,
            "horizon_years": HORIZON / units.years(1.0),
            "runs": RUNS,
            "base_seed": BASE_SEED,
        },
        "scaling_s": scaling,
        "race_workers": pool_workers,
        "static_chunk_s": static_s,
        "dynamic_s": dynamic_s,
        "dispatch_overhead_per_run_s": overhead_s,
        "shard_merge": measure_shard_merge(task),
    }


def test_mc_sharding_runtime(benchmark):
    document = load_document()
    latest = benchmark.pedantic(capture, rounds=1, iterations=1)

    # Correctness rides along: the merged study must be bit-identical
    # to the same study run in-process.
    reference = MonteCarloRunner(
        _task(), runs=RUNS, base_seed=BASE_SEED, workers=1
    ).run()
    assert latest["shard_merge"]["uptime"] == dataclasses.asdict(
        reference.uptime
    )

    if document.get("baseline") is None:
        document["baseline"] = latest
    document["latest"] = latest
    BENCH_JSON.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    baseline = document["baseline"]
    ratio = latest["dynamic_s"] / latest["static_chunk_s"]
    rows = [
        "scaling        : "
        + ", ".join(
            f"{w}w {latest['scaling_s'][str(w)]:.2f} s" for w in WORKER_GRID
        ),
        f"dynamic/static : {latest['dynamic_s']:.2f} s vs "
        f"{latest['static_chunk_s']:.2f} s ({ratio:.3f}x) at "
        f"{latest['race_workers']} workers",
        f"dispatch cost  : {latest['dispatch_overhead_per_run_s'] * 1e3:.2f} "
        f"ms/run at {max(WORKER_GRID)} workers",
        f"shard+merge    : {latest['shard_merge']['shards_wall_s']:.2f} s to "
        f"write {latest['shard_merge']['shard_bytes']:,} B, "
        f"{latest['shard_merge']['merge_wall_s'] * 1e3:.1f} ms to merge",
    ]
    same_host = baseline["host"]["hostname"] == platform.node()
    regression = latest["dynamic_s"] / baseline["dynamic_s"]
    rows.append(
        f"vs baseline    : {baseline['dynamic_s']:.2f} s → "
        f"{latest['dynamic_s']:.2f} s ({regression:.2f}x"
        f"{', same host' if same_host else ', DIFFERENT host — informational'})"
    )
    rows.append(f"wrote latest → {BENCH_JSON.name}")
    emit(rows)

    # Same-machine bar, always armed: both schedulers just ran here.
    assert ratio <= MAX_DYNAMIC_VS_STATIC, (
        f"dynamic scheduler is {ratio:.3f}x the static-chunk baseline "
        f"(> allowed {MAX_DYNAMIC_VS_STATIC}x)"
    )

    # Regression bar vs the pinned capture, armed only on its host.
    if same_host:
        assert regression <= MAX_REGRESSION, (
            f"dynamic wall clock is {regression:.2f}x the pinned baseline "
            f"(> allowed {MAX_REGRESSION}x)"
        )
