"""E7 — §4.3 footnote 5: the Helium backhaul's AS concentration.

"Comcast, Spectrum, and Verizon are the ISPs for roughly half of the
12,400 gateways with public IP addresses ... 50% of nodes belong to just
ten ASes, but the long tail extends to nearly 200 unique ASes."

We synthesize the population, verify the three measurements, and run the
analysis the paper leaves to future work: the correlated-failure
exposure of relying on that backhaul (what fraction of the network one
AS outage removes).
"""

import numpy as np

from repro.analysis import (
    PAPER_GATEWAY_COUNT,
    concentration,
    survival_correlation_groups,
    synthesize_assignments,
)
from repro.analysis.report import PaperComparison

from conftest import emit


def compute_asn(rng):
    assignments = synthesize_assignments(rng=rng)
    report = concentration(assignments)
    groups = survival_correlation_groups(assignments)
    sizes = sorted(groups.values(), reverse=True)
    top1_exposure = sizes[0] / report.total_nodes
    top3_exposure = sum(sizes[:3]) / report.total_nodes
    return report, top1_exposure, top3_exposure


def test_e07_helium_asn(benchmark, rng):
    report, top1_exposure, top3_exposure = benchmark(compute_asn, rng)
    holds = report.matches_paper()
    emit([
        PaperComparison(
            experiment="E7",
            claim="Helium gateway backhaul AS concentration",
            paper_value="12,400 gateways; top-10 ASes = 50%; ~200 unique ASes",
            measured_value=(
                f"{report.total_nodes:,} gateways; top-10 = "
                f"{report.top10_share:.0%}; {report.unique_ases} unique ASes; "
                f"named ISPs = {report.named_isp_share:.0%}"
            ),
            holds=holds,
        ),
        f"future-work analysis: one-AS outage removes {top1_exposure:.0%} of "
        f"the network; top-3 simultaneous = {top3_exposure:.0%} "
        f"(HHI {report.hhi:.3f})",
    ])
    assert holds
    assert report.total_nodes == PAPER_GATEWAY_COUNT
    assert 0.05 < top1_exposure < 0.35
