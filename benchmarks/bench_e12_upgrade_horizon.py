"""E12 — §2: the 2-7-year operator upgrade horizon, and what it costs.

"For these modest numbers of devices, operators predict lifetimes of 2-7
years until the system is upgraded."  We sweep the scheduled-refresh
horizon against a ~10-year hardware fleet and measure hardware
utilization and the obsolescence split — quantifying how much working
hardware today's practice discards, and what run-to-failure would
recover.
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.obsolescence import (
    ObsolescenceKind,
    UpgradePolicy,
    historical_cellular_timeline,
    simulate_fleet_fates,
)
from repro.core import units
from repro.reliability import battery_powered_device

from conftest import emit


def compute_sweep(rng):
    model = battery_powered_device()
    lifetimes = model.sample(rng, 6000)
    timeline = historical_cellular_timeline()
    sweep = []
    for refresh in (2.0, 3.0, 5.0, 7.0, 10.0, 15.0):
        fates = simulate_fleet_fates(
            lifetimes,
            UpgradePolicy.todays_operator(refresh),
            timeline,
            deploy_t=units.years(20.0),
        )
        sweep.append((refresh, fates))
    run_to_failure = simulate_fleet_fates(
        lifetimes, UpgradePolicy.run_to_failure(), timeline
    )
    return sweep, run_to_failure


def test_e12_upgrade_horizon(benchmark, rng):
    sweep, run_to_failure = benchmark.pedantic(
        compute_sweep, rounds=1, iterations=1, args=(rng,)
    )
    two_year = sweep[0][1]
    seven_year = sweep[3][1]
    holds = (
        two_year.utilization < 0.35
        and seven_year.utilization < 0.75
        and run_to_failure.utilization == 1.0
    )
    rows = [
        PaperComparison(
            experiment="E12",
            claim="2-7-year upgrade horizons discard most hardware value",
            paper_value="operators predict 2-7 years until system upgrade",
            measured_value=(
                f"hardware utilization {two_year.utilization:.0%} (2-yr refresh) "
                f"to {seven_year.utilization:.0%} (7-yr); run-to-failure = 100%"
            ),
            holds=holds,
        ),
    ]
    for refresh, fates in sweep:
        technical = fates.split.fraction(ObsolescenceKind.TECHNICAL)
        rows.append(
            f"refresh {refresh:4.0f} yr: utilization {fates.utilization:.0%}, "
            f"technical obsolescence {technical:.0%}, "
            f"{fates.wasted_service_years:.1f} working years wasted/device"
        )
    emit(rows)
    assert holds
    # Utilization rises monotonically with the refresh horizon.
    utils = [fates.utilization for __, fates in sweep]
    assert utils == sorted(utils)
