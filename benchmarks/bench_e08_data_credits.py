"""E8 — §4.4: prepaid data-credit arithmetic.

"For one device to send one (up to 24-byte) packet every one hour for 50
years will cost 438,000 data credits.  We can provision a dedicated
wallet today with a conservative 500,000 data credits for just $5 USD."

Reproduces the numbers exactly, then validates the wallet end-to-end: a
simulated device spending from a 500k wallet for 50 years never runs
dry, while a 100k wallet dies around year 11.
"""

from repro.analysis.report import PaperComparison
from repro.core import units
from repro.econ import cost_per_device_per_year, fleet_prepay_usd, paper_prepay_quote
from repro.net import DataCreditWallet

from conftest import emit


def fast_forward_wallet(credits: int, years: float = 50.0) -> float:
    """Debit one credit per hour until dry; return years of runway."""
    wallet = DataCreditWallet()
    wallet.provision(credits)
    hours = int(years * 365 * 24)
    for hour in range(hours):
        if not wallet.debit(1):
            return hour / (365.0 * 24.0)
    return years


def compute_credits():
    quote = paper_prepay_quote()
    runway_paper = fast_forward_wallet(500_000)
    runway_small = fast_forward_wallet(100_000)
    per_year = cost_per_device_per_year()
    fleet = fleet_prepay_usd(10_000)
    return quote, runway_paper, runway_small, per_year, fleet


def test_e08_data_credits(benchmark):
    quote, runway_paper, runway_small, per_year, fleet = benchmark.pedantic(
        compute_credits, rounds=1, iterations=1
    )
    holds = (
        quote.credits_needed == 438_000
        and quote.credits_provisioned == 500_000
        and abs(quote.cost_usd - 5.0) < 0.01
        and runway_paper == 50.0
    )
    emit([
        PaperComparison(
            experiment="E8",
            claim="prepaid transport: hourly 24-byte packets for 50 years",
            paper_value="438,000 credits needed; 500,000 provisioned for $5",
            measured_value=(
                f"{quote.credits_needed:,} needed; {quote.credits_provisioned:,} "
                f"provisioned for ${quote.cost_usd:.2f}; simulated runway "
                f"{runway_paper:.0f} yr"
            ),
            holds=holds,
        ),
        f"underfunded wallet (100k credits) dies at year {runway_small:.1f}",
        f"steady-state transport: ${per_year:.3f}/device-year; "
        f"prepaying a 10,000-device fleet for 50 yr: ${fleet:,.0f}",
    ])
    assert holds
    assert 11.0 < runway_small < 12.0
