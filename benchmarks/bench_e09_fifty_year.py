"""E9 — §4: the 50-year experiment, end to end.

Runs the paper's experiment as designed (owned-802.15.4 arm + Helium
LoRa arm, maintained gateways, prepaid wallet, weekly-uptime metric at
the public endpoint) over the full 50-year horizon, plus the scenarios
the design hedges against.  The paper has no result yet — it *commences*
the experiment — so the artifact here is the projected outcome and
maintenance bill under our substrate models.
"""

from repro.analysis.report import PaperComparison
from repro.core import units
from repro.runtime import MonteCarloRunner, ScenarioTask

from conftest import emit

# Daily reporting keeps the event count tractable; the weekly metric
# cannot tell daily from hourly cadence.
TASK = ScenarioTask(
    scenario="as-designed",
    horizon=units.years(50.0),
    report_interval=units.days(1.0),
    overrides=(
        ("seed", 2021),
        ("n_154_devices", 5),
        ("n_lora_devices", 5),
        ("n_owned_gateways", 3),
        ("initial_hotspots", 30),
        ("wallet_credits", 500_000 * 5),
        ("renewal_miss_probability", 0.1),
    ),
    keep_result=True,
)


def run_full_experiment():
    study = MonteCarloRunner(TASK, runs=1, base_seed=2021).run()
    return study


def test_e09_fifty_year_experiment(benchmark):
    study = benchmark.pedantic(run_full_experiment, rounds=1, iterations=1)
    run = study.runs[0]
    result = run.detail
    owned = result.arms["owned-802.15.4"]
    helium = result.arms["helium-lora"]
    holds = (
        result.overall.uptime > 0.95
        and result.device_touches == 0
        and result.maintenance.total_hours() > 0.0
    )
    emit([
        PaperComparison(
            experiment="E9",
            claim="50-year end-to-end weekly uptime with untouched devices",
            paper_value="goal: some data every week at centurysensors.com",
            measured_value=(
                f"overall uptime {result.overall.uptime:.3f} "
                f"(longest gap {result.overall.longest_gap_weeks} wk); "
                f"device touches: {result.device_touches}"
            ),
            holds=holds,
            note="projection under our substrate models, not a paper result",
        ),
        f"owned arm:  uptime {owned.weekly_uptime:.3f}, "
        f"{owned.devices_alive_at_end}/{len(owned.device_names)} devices alive, "
        f"delivery {owned.delivery_rate:.2f}",
        f"helium arm: uptime {helium.weekly_uptime:.3f}, "
        f"{helium.devices_alive_at_end}/{len(helium.device_names)} devices alive, "
        f"delivery {helium.delivery_rate:.2f}",
        f"maintenance over 50 yr: {result.maintenance.total_hours():.0f} "
        f"person-hours, ${result.maintenance.total_cost():,.0f}, "
        f"{result.gateway_replacements} gateway replacements",
        f"wallet: {result.wallet.spent:,} credits spent, "
        f"{result.wallet.refusals} refusals",
        f"runtime: {run.events_executed:,} events in {run.wall_clock_s:.1f} s, "
        f"peak pending queue {run.peak_pending_events:,}",
    ])
    assert holds
    # The §4 constraint: devices are never touched.
    assert result.device_touches == 0
    # Both arms must have produced data for decades.
    assert owned.delivered > 10_000
    assert helium.delivered > 10_000
