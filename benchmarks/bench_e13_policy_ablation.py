"""E13 — ablation of the §3 takeaways.

Each takeaway is toggled independently against the same 15-year
deployment with failing gateways:

* attachment (rely on properties vs instances of infrastructure),
* maintenance (replace gateways vs set-and-forget),
* third-party network health (steady vs collapsing Helium).

The measured quantity is each arm's delivery rate and weekly uptime —
the policy gap is the paper's argument in numbers.
"""

from dataclasses import replace

from repro.analysis.report import PaperComparison
from repro.core import units
from repro.core.policy import AttachmentPolicy
from repro.experiment import FiftyYearConfig, FiftyYearExperiment

from conftest import emit

HORIZON = units.years(15.0)


def base_config(seed=2021, **overrides):
    config = FiftyYearConfig(
        seed=seed,
        horizon=HORIZON,
        report_interval=units.days(1.0),
        n_154_devices=4,
        n_lora_devices=4,
        n_owned_gateways=2,
        initial_hotspots=25,
        wallet_credits=500_000 * 4,
        renewal_miss_probability=0.0,
    )
    return replace(config, **overrides)


def run_ablation():
    arms = {}
    arms["compliant (all takeaways)"] = FiftyYearExperiment(base_config()).run()
    arms["instance-bound devices"] = FiftyYearExperiment(
        base_config(attachment=AttachmentPolicy.INSTANCE_BOUND)
    ).run()
    arms["unmaintained gateways"] = FiftyYearExperiment(
        base_config(maintain_gateways=False)
    ).run()
    arms["collapsing third-party net"] = FiftyYearExperiment(
        base_config(network_halflife_years=4.0,
                    hotspot_median_tenure_years=2.0)
    ).run()
    return arms


def test_e13_policy_ablation(benchmark):
    arms = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    compliant = arms["compliant (all takeaways)"]
    bound = arms["instance-bound devices"]
    unmaintained = arms["unmaintained gateways"]
    collapse = arms["collapsing third-party net"]

    owned_gap = (
        compliant.arms["owned-802.15.4"].delivery_rate
        - bound.arms["owned-802.15.4"].delivery_rate
    )
    helium_gap = (
        compliant.arms["helium-lora"].weekly_uptime
        - collapse.arms["helium-lora"].weekly_uptime
    )
    holds = compliant.overall.uptime > 0.95 and owned_gap >= 0.0
    rows = [
        PaperComparison(
            experiment="E13",
            claim="takeaway-compliant policies dominate each ablated variant",
            paper_value="qualitative (the §3 takeaways)",
            measured_value=(
                f"compliant uptime {compliant.overall.uptime:.3f}; "
                f"instance-binding costs {owned_gap:+.2f} owned-arm delivery; "
                f"network collapse costs {helium_gap:+.3f} helium uptime"
            ),
            holds=holds,
        ),
    ]
    for label, result in arms.items():
        owned = result.arms["owned-802.15.4"]
        helium = result.arms["helium-lora"]
        rows.append(
            f"{label:<28} overall {result.overall.uptime:.3f} | "
            f"owned delivery {owned.delivery_rate:.2f} | "
            f"helium uptime {helium.weekly_uptime:.3f} | "
            f"maintenance {result.maintenance.total_hours():.0f} h"
        )
    emit(rows)
    assert holds
    # Maintenance matters: the unmaintained arm spends nothing and
    # (given Pi-class MTBF over 15 yr) cannot beat the maintained one.
    assert unmaintained.maintenance.total_hours() == 0.0
    assert (
        unmaintained.arms["owned-802.15.4"].weekly_uptime
        <= compliant.arms["owned-802.15.4"].weekly_uptime
    )
