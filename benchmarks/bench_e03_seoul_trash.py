"""E3 — §2: Seoul's smart bins cut overflow 66% and collection cost 83%.

Rebuilds the mechanism (heterogeneous bin fill + fixed-schedule baseline
vs sensor-dispatched compacting bins) and checks both reductions land in
the paper's neighbourhood.
"""

from repro.analysis.report import PaperComparison
from repro.city import BinFleetConfig, compare_policies

from conftest import emit


def compute_seoul():
    return compare_policies(
        BinFleetConfig(n_bins=400), seed=2021, horizon_days=90.0
    )


def test_e03_seoul_trash(benchmark):
    comparison = benchmark.pedantic(compute_seoul, rounds=1, iterations=1)
    holds = comparison.shape_holds(tolerance=0.25)
    emit([
        PaperComparison(
            experiment="E3",
            claim="sensor-driven waste collection vs fixed schedule (Seoul)",
            paper_value="overflow -66%, collection cost -83%",
            measured_value=(
                f"overflow -{comparison.overflow_reduction:.0%}, "
                f"cost -{comparison.cost_reduction:.0%}"
            ),
            holds=holds,
            note="sensor dispatch at 85% of 3x-compacted capacity, 24h response",
        ),
    ])
    assert holds
    assert comparison.overflow_reduction > 0.4
    assert comparison.cost_reduction > 0.6
