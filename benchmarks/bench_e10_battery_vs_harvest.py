"""E10 — §1/§3.1: battery-bound vs energy-harvesting device survival.

"Conventional wisdom holds that components such as batteries,
electrolytic capacitors, or even PCB substrates will hold the mean
lifetime of a device to around 10-15 years.  Energy-harvesting devices
require no batteries, however, and the same manufacturing processes and
circuit design points that make systems low-power also make them more
robust to long-term failures."

Monte-Carlo fleets of both archetypes through a 50-year study window,
summarized by Kaplan-Meier survival and the dominant failure causes.
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.core import units
from repro.reliability import (
    battery_powered_device,
    dominant_risk,
    energy_harvesting_device,
    kaplan_meier,
    mean_lifetime_years,
    restricted_mean_survival,
)

from conftest import emit

BATTERY_RISKS = ["battery", "electrolytic", "pcb", "solder", "flash", "radio"]
HARVEST_RISKS = ["harvester", "ceramic", "pcb", "solder", "flash", "radio", "enclosure"]


def compute_survival(rng):
    window = units.years(50.0)
    rows = {}
    for label, model, risk_names in (
        ("battery", battery_powered_device(), BATTERY_RISKS),
        ("harvesting", energy_harvesting_device(), HARVEST_RISKS),
    ):
        lifetimes = model.sample(rng, 6000)
        observed = lifetimes <= window
        curve = kaplan_meier(lifetimes.clip(max=window), observed)
        ranked = dominant_risk(model, rng, n=4000)
        rows[label] = {
            "mean_years": mean_lifetime_years(model),
            "alive_at_15": curve.at(units.years(15.0)),
            "alive_at_50": curve.at(window),
            "rms_years": units.as_years(restricted_mean_survival(curve, window)),
            "top_cause": risk_names[ranked[0][0]],
            "top_cause_share": ranked[0][1],
        }
    return rows


def test_e10_battery_vs_harvest(benchmark, rng):
    rows = benchmark.pedantic(compute_survival, rounds=1, iterations=1, args=(rng,))
    battery = rows["battery"]
    harvest = rows["harvesting"]
    holds = (
        8.0 <= battery["mean_years"] <= 16.0
        and harvest["mean_years"] > 2.0 * battery["mean_years"]
        and harvest["alive_at_50"] > 10.0 * max(battery["alive_at_50"], 0.001)
    )
    emit([
        PaperComparison(
            experiment="E10",
            claim="batteries/electrolytics/PCBs bound device life to 10-15 yr; "
                  "harvesting design points are more robust",
            paper_value="10-15 yr mean (conventional wisdom)",
            measured_value=(
                f"battery fleet mean {battery['mean_years']:.1f} yr vs "
                f"harvesting {harvest['mean_years']:.1f} yr"
            ),
            holds=holds,
        ),
        f"alive at 15 yr: battery {battery['alive_at_15']:.0%} vs "
        f"harvesting {harvest['alive_at_15']:.0%}",
        f"alive at 50 yr: battery {battery['alive_at_50']:.1%} vs "
        f"harvesting {harvest['alive_at_50']:.0%}",
        f"dominant failure: battery fleet -> {battery['top_cause']} "
        f"({battery['top_cause_share']:.0%}); harvesting fleet -> "
        f"{harvest['top_cause']} ({harvest['top_cause_share']:.0%})",
    ])
    assert holds
    # The battery is the battery fleet's binding constraint.
    assert battery["top_cause"] == "battery"
