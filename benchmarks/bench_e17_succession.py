"""E17 — §4.5: "those who start it will most likely be retired by the
time it is complete."

Experimenter succession over 50 years: how many custodian handoffs the
experiment must survive, and how knowledge decay at handoffs converts
the one *certain* obligation (the 10-year domain lease) into outage
risk.  Documentation quality (handoff retention) is the lever — the
quantitative case for the paper's "living, public experimental diary".
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.core import units
from repro.experiment import SuccessionConfig, SuccessionModel, expected_handoffs

from conftest import emit

RENEWALS = [units.years(y) for y in (10.0, 20.0, 30.0, 40.0, 50.0)]


def lease_survival(retention: float, runs: int, base_seed: int) -> float:
    """Fraction of runs in which every domain renewal lands."""
    survived = 0
    for index in range(runs):
        rng = np.random.default_rng(base_seed + index)
        model = SuccessionModel(
            config=SuccessionConfig(handoff_retention=retention)
        )
        model.generate(units.years(50.0), rng)
        ok = all(
            rng.random() >= model.miss_probability_at(t) for t in RENEWALS
        )
        survived += ok
    return survived / runs


def compute_succession():
    rng = np.random.default_rng(4)
    model = SuccessionModel()
    custodians = model.generate(units.years(50.0), rng)
    survival_by_retention = {
        retention: lease_survival(retention, runs=400, base_seed=77)
        for retention in (1.0, 0.9, 0.75, 0.5)
    }
    return custodians, survival_by_retention


def test_e17_succession(benchmark):
    custodians, survival = benchmark.pedantic(
        compute_succession, rounds=1, iterations=1
    )
    handoffs = len(custodians) - 1
    holds = handoffs >= 3 and survival[1.0] > survival[0.5]
    rows = [
        PaperComparison(
            experiment="E17",
            claim="a 50-year experiment outlives its founders",
            paper_value="founders 'will most likely be retired' by completion",
            measured_value=(
                f"{len(custodians)} custodians / {handoffs} handoffs in one "
                f"50-yr draw (expected ~{expected_handoffs(50.0):.0f})"
            ),
            holds=holds,
        ),
        "P(all five 10-yr domain renewals land) by handoff documentation quality:",
    ]
    for retention, p in survival.items():
        rows.append(f"  retention {retention:.0%}: {p:.0%} of runs fully renewed")
    emit(rows)
    assert holds
    values = [survival[k] for k in sorted(survival, reverse=True)]
    assert values == sorted(values, reverse=True)
