"""E23 — city-scale fleet throughput: the cohort engine at 1k/10k/100k.

The perf-regression harness for the spatial-grid + cohort-batching work:
builds the city scenario at each fleet size with the cohort engine and
measures build time, run wall clock, and sustained event/report
throughput over a 28-day horizon.

Every run rewrites the ``latest`` block of ``BENCH_city.json``
(preserving ``baseline``); CI uploads the file as an artifact.  The
regression gate compares the 10k-device events/sec against the pinned
baseline and fails on a >1.3x slowdown — armed only when this host
matches the baseline's host, because cross-machine wall-clock ratios
are weather, not signal.  On a fresh machine (no baseline yet) the
first capture becomes the baseline.

Fleet sizes are env-overridable for CI::

    CITY_BENCH_SIZES=1000,10000 PYTHONPATH=src \
        python -m pytest benchmarks/bench_city_fleet.py --benchmark-only -s
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.city.scenario import CityScaleConfig, CityScenario
from repro.core import units

from conftest import emit

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_city.json"

DEFAULT_SIZES = (1_000, 10_000, 100_000)

#: The size whose events/sec the regression gate judges (10k: large
#: enough to be index/batch-dominated, small enough for CI minutes).
GATE_SIZE = 10_000

#: Same-host bar: latest 10k events/sec may be at most 1.3x slower than
#: the pinned baseline's.
MAX_REGRESSION = 1.3

HORIZON = units.days(28.0)


def fleet_sizes() -> list:
    raw = os.environ.get("CITY_BENCH_SIZES")
    if not raw:
        return list(DEFAULT_SIZES)
    return [int(token) for token in raw.split(",") if token.strip()]


def host_facts() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
    }


def measure_size(device_count: int) -> dict:
    config = CityScaleConfig(
        seed=2021,
        device_count=device_count,
        horizon=HORIZON,
        engine="cohort",
    )
    started = time.perf_counter()
    city = CityScenario(config)
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    summary = city.run()
    run_s = time.perf_counter() - started
    executed = city.sim.executed_events
    return {
        "device_count": device_count,
        "build_s": round(build_s, 3),
        "run_s": round(run_s, 3),
        "executed_events": executed,
        "events_per_s": round(executed / run_s, 1) if run_s else 0.0,
        "attempts": summary["attempts"],
        "reports_per_s": round(summary["attempts"] / run_s, 1) if run_s else 0.0,
        "delivered": summary["delivered"],
        "devices_alive_at_end": summary["devices_alive_at_end"],
    }


def load_document() -> dict:
    if BENCH_JSON.exists():
        return json.loads(BENCH_JSON.read_text())
    return {"version": 1, "baseline": None, "latest": None}


def test_city_fleet_scaling(benchmark):
    document = load_document()
    sizes = fleet_sizes()
    results = benchmark.pedantic(
        lambda: [measure_size(size) for size in sizes], rounds=1, iterations=1
    )
    by_size = {str(r["device_count"]): r for r in results}
    document["latest"] = {
        "captured_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "engine": "cohort",
        "horizon_days": HORIZON / units.DAY,
        "host": host_facts(),
        "sizes": by_size,
    }
    if document.get("baseline") is None:
        document["baseline"] = document["latest"]
    BENCH_JSON.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    rows = [
        f"{r['device_count']:>7,} devices: build {r['build_s']:6.2f} s, "
        f"run {r['run_s']:6.2f} s — {r['events_per_s']:>9,.0f} events/s, "
        f"{r['reports_per_s']:>9,.0f} reports/s "
        f"({r['devices_alive_at_end']:,} alive at end)"
        for r in results
    ]

    baseline = document["baseline"]
    gate_key = str(GATE_SIZE)
    ratio = None
    same_host = False
    if baseline is not None and gate_key in baseline["sizes"] and gate_key in by_size:
        base_eps = baseline["sizes"][gate_key]["events_per_s"]
        latest_eps = by_size[gate_key]["events_per_s"]
        ratio = base_eps / latest_eps if latest_eps else float("inf")
        same_host = baseline["host"]["hostname"] == platform.node()
        rows.append(
            f"10k gate       : baseline {base_eps:,.0f} events/s → "
            f"latest {latest_eps:,.0f} events/s ({ratio:.2f}x slowdown"
            f"{', same host' if same_host else ', DIFFERENT host — informational'})"
        )
    rows.append(f"wrote latest → {BENCH_JSON.name}")
    emit(rows)

    # Throughput must not collapse with scale.  Raw events/sec falls by
    # design (one cohort event services a whole batch, so bigger fleets
    # mean fewer, heavier events); the scale-invariant measure is member
    # duty cycles per second, which an O(devices × gateways) scan would
    # crater at the large sizes.
    if len(results) > 1:
        rps = [r["reports_per_s"] for r in results if r["reports_per_s"]]
        assert max(rps) <= min(rps) * 4.0, (
            f"reports/sec collapses with fleet size: {rps} "
            f"(worst/best spread exceeds 4x)"
        )

    # Same-host regression bar on the 10k size.
    if ratio is not None and same_host:
        assert ratio <= MAX_REGRESSION, (
            f"10k events/sec regressed {ratio:.2f}x vs baseline "
            f"(> allowed {MAX_REGRESSION}x)"
        )
