"""E4 — Figure 1: the deployment hierarchy's fan-out and lifetime
variability.

"Gateways may support thousands of devices ... backhaul infrastructure
may support thousands of gateways.  The further up the hierarchy one
travels, the more devices there are that are reliant on the stability
and reliability of the provided interface."

We build a city-scale synthetic hierarchy at Figure 1's fan-outs and
measure (a) the blast radius of a failure at each tier and (b) the
spread of effective device lifetimes induced by upstream churn.
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.core import Entity, Hierarchy, Simulation, units, wire_by_fanout

from conftest import emit


class Dev(Entity):
    TIER = "device"


class Gw(Entity):
    TIER = "gateway"


class Bh(Entity):
    TIER = "backhaul"


class Cl(Entity):
    TIER = "cloud"


def build_figure1(n_devices=4000, devices_per_gateway=500, gateways_per_backhaul=4):
    sim = Simulation(seed=1)
    cloud = Cl(sim)
    n_gateways = n_devices // devices_per_gateway
    n_backhauls = max(1, n_gateways // gateways_per_backhaul)
    backhauls = [Bh(sim) for _ in range(n_backhauls)]
    for backhaul in backhauls:
        backhaul.add_dependency(cloud)
    gateways = [Gw(sim) for _ in range(n_gateways)]
    for index, gateway in enumerate(gateways):
        gateway.add_dependency(backhauls[index % n_backhauls])
    devices = [Dev(sim) for _ in range(n_devices)]
    wire_by_fanout(devices, gateways, redundancy=1)
    hierarchy = Hierarchy()
    hierarchy.extend([cloud, *backhauls, *gateways, *devices])
    for entity in hierarchy.entities:
        entity.deploy()
    return sim, hierarchy, cloud, backhauls, gateways, devices


def compute_hierarchy():
    sim, hierarchy, cloud, backhauls, gateways, devices = build_figure1()
    device_radius = len(hierarchy.blast_radius(devices[0]))
    gateway_radius = len(hierarchy.blast_radius(gateways[0]))
    backhaul_radius = len(hierarchy.blast_radius(backhauls[0]))
    cloud_radius = len(hierarchy.blast_radius(cloud))
    stats = hierarchy.all_stats()
    return (device_radius, gateway_radius, backhaul_radius, cloud_radius), stats


def test_e04_hierarchy_fanout(benchmark):
    radii, stats = benchmark.pedantic(compute_hierarchy, rounds=1, iterations=1)
    device_r, gateway_r, backhaul_r, cloud_r = radii
    holds = device_r <= 1 < gateway_r < backhaul_r <= cloud_r
    emit([
        PaperComparison(
            experiment="E4",
            claim="Figure 1: reliance grows monotonically up the hierarchy",
            paper_value="devices << gateways << backhaul << cloud",
            measured_value=(
                f"blast radius: device={device_r}, gateway={gateway_r}, "
                f"backhaul={backhaul_r}, cloud={cloud_r} devices"
            ),
            holds=holds,
        ),
        f"fan-out: {stats['gateway'].mean_dependents:.0f} devices/gateway, "
        f"{stats['backhaul'].mean_dependents:.0f} gateways/backhaul",
    ])
    assert holds
    # Figure 1's arrow: each tier up multiplies the blast radius.
    assert gateway_r >= 100
    assert backhaul_r >= 4 * gateway_r
