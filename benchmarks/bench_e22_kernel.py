"""E22 — the kernel fast path: make a 50-year run cheap.

The perf-regression harness for PR 3's kernel work.  Two measurements,
both taken on the machine running the bench:

1. **Micro** — race the optimized ``EventQueue`` against the frozen
   pre-PR-3 kernel (``legacy_kernel``) on identical workloads.  Because
   both sides run here and now, the speedup is hardware-independent and
   is asserted: ≥2x on pure push/pop throughput.
2. **E2e** — re-time the 1-seed 50-year ``as-designed`` scenario and
   compare against the pinned pre-PR baseline in ``BENCH_kernel.json``.
   Cross-machine wall-clock ratios are weather, not signal, so the
   ≥1.3x assertion only arms when this host matches the baseline's
   host; elsewhere the number is recorded for trajectory.

Every run rewrites the ``latest`` block of ``BENCH_kernel.json``
(preserving ``baseline``); CI uploads the file as an artifact.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core.events import EventQueue
from repro.runtime import ScenarioTask, derive_seeds

from conftest import emit
from kernel_workloads import (
    N_EVENTS,
    event_times,
    time_workload,
    workload_churn,
    workload_push_pop,
)
from legacy_kernel import LegacyEventQueue

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

E2E_SCENARIO = "as-designed"
E2E_BASE_SEED = 2021

#: Same-machine micro bar: tuple-keyed heap entries must at least halve
#: the dataclass-``__lt__`` kernel's push/pop time.
MIN_MICRO_SPEEDUP = 2.0

#: E2e bar vs the pinned baseline — asserted only on the baseline host.
MIN_E2E_SPEEDUP = 1.3


def host_facts() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
    }


def measure_micro() -> dict:
    times = event_times()
    results = {"n_events": N_EVENTS}
    for name, workload in (
        ("push_pop", workload_push_pop),
        ("churn", workload_churn),
    ):
        legacy_s = time_workload(workload, LegacyEventQueue, times)
        current_s = time_workload(workload, EventQueue, times)
        results[f"{name}_s"] = current_s
        results[f"{name}_legacy_s"] = legacy_s
        results[f"{name}_speedup"] = legacy_s / current_s if current_s else 0.0
    return results


def measure_e2e() -> dict:
    task = ScenarioTask(scenario=E2E_SCENARIO)
    seed = derive_seeds(E2E_BASE_SEED, 1)[0]
    started = time.perf_counter()
    result = task(0, seed)
    wall = time.perf_counter() - started
    return {
        "scenario": E2E_SCENARIO,
        "horizon_years": 50.0,
        "base_seed": E2E_BASE_SEED,
        "wall_clock_s": wall,
        "events_executed": result.events_executed,
        "peak_pending_events": result.peak_pending_events,
        "uptime": result.sample,
    }


def load_document() -> dict:
    if BENCH_JSON.exists():
        return json.loads(BENCH_JSON.read_text())
    return {"version": 1, "baseline": None, "latest": None}


def write_latest(document: dict, micro: dict, e2e: dict) -> None:
    document["latest"] = {
        "captured_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "kernel": "PR-3 tuple-keyed slots kernel",
        "host": host_facts(),
        "micro": micro,
        "e2e": e2e,
    }
    BENCH_JSON.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def test_e22_kernel_fast_path(benchmark):
    document = load_document()
    micro, e2e = benchmark.pedantic(
        lambda: (measure_micro(), measure_e2e()), rounds=1, iterations=1
    )
    write_latest(document, micro, e2e)

    baseline = document.get("baseline")
    rows = [
        f"micro push/pop : legacy {micro['push_pop_legacy_s']:.3f} s → "
        f"current {micro['push_pop_s']:.3f} s "
        f"({micro['push_pop_speedup']:.2f}x) for {N_EVENTS:,} events",
        f"micro churn    : legacy {micro['churn_legacy_s']:.3f} s → "
        f"current {micro['churn_s']:.3f} s "
        f"({micro['churn_speedup']:.2f}x)",
        f"e2e 50-year    : {e2e['wall_clock_s']:.2f} s, "
        f"{e2e['events_executed']:,} events "
        f"(uptime {e2e['uptime']:.4f})",
    ]
    e2e_speedup = None
    same_host = False
    if baseline is not None:
        base_e2e = baseline["e2e"]
        e2e_speedup = base_e2e["wall_clock_s"] / e2e["wall_clock_s"]
        same_host = baseline["host"]["hostname"] == platform.node()
        rows.append(
            f"e2e vs baseline: {base_e2e['wall_clock_s']:.2f} s → "
            f"{e2e['wall_clock_s']:.2f} s ({e2e_speedup:.2f}x"
            f"{', same host' if same_host else ', DIFFERENT host — informational'})"
        )
    rows.append(f"wrote latest → {BENCH_JSON.name}")
    emit(rows)

    # Correctness first: both kernels drained identical workloads (the
    # workloads themselves return pop counts checked inside), and the
    # e2e run executed the same event volume the baseline did — a
    # "speedup" from doing less work would be a bug, not a win.
    if baseline is not None:
        assert e2e["events_executed"] == baseline["e2e"]["events_executed"]
        assert e2e["uptime"] == baseline["e2e"]["uptime"]

    # Same-machine micro bar, always armed.
    assert micro["push_pop_speedup"] >= MIN_MICRO_SPEEDUP, (
        f"push/pop speedup {micro['push_pop_speedup']:.2f}x "
        f"< required {MIN_MICRO_SPEEDUP}x"
    )

    # E2e bar, armed only where the baseline numbers were taken.
    if e2e_speedup is not None and same_host:
        assert e2e_speedup >= MIN_E2E_SPEEDUP, (
            f"e2e speedup {e2e_speedup:.2f}x < required {MIN_E2E_SPEEDUP}x"
        )
