"""E22 — the kernel fast path: make a 50-year run cheap.

The perf-regression harness for PR 3's kernel work.  Two measurements,
both taken on the machine running the bench:

1. **Micro** — race the optimized ``EventQueue`` against the frozen
   pre-PR-3 kernel (``legacy_kernel``) on identical workloads.  Because
   both sides run here and now, the speedup is hardware-independent and
   is asserted: ≥2x on pure push/pop throughput.
2. **E2e** — re-time the 1-seed 50-year ``as-designed`` scenario and
   compare against the pinned pre-PR baseline in ``BENCH_kernel.json``.
   Cross-machine wall-clock ratios are weather, not signal, so the
   ≥1.3x assertion only arms when this host matches the baseline's
   host; elsewhere the number is recorded for trajectory.

Every run rewrites the ``latest`` block of ``BENCH_kernel.json``
(preserving ``baseline``); CI uploads the file as an artifact.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core.events import EventQueue
from repro.runtime import ScenarioTask, derive_seeds

from conftest import emit
from kernel_workloads import (
    N_EVENTS,
    event_times,
    time_workload,
    workload_churn,
    workload_push_pop,
)
from legacy_kernel import LegacyEventQueue

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

E2E_SCENARIO = "as-designed"
E2E_BASE_SEED = 2021

#: Same-machine micro bar: tuple-keyed heap entries must at least halve
#: the dataclass-``__lt__`` kernel's push/pop time.
MIN_MICRO_SPEEDUP = 2.0

#: E2e bar vs the pinned baseline — asserted only on the baseline host.
MIN_E2E_SPEEDUP = 1.3

#: Obs-overhead bar vs the frozen pre-obs kernel (``pr3_reference``):
#: threading the telemetry registry through the hot path may cost at
#: most 5% of e2e wall clock.  Same-host only, like the e2e bar — and
#: additionally same *machine state*: the legacy-kernel micro is frozen
#: code, so its timing is a pure machine-speed probe.  When the probe
#: deviates from the reference capture's probe by more than
#: ``MAX_PROBE_DRIFT``, the host is measurably in a different state
#: (noisy neighbours, thermal) and the ratio is weather, not signal:
#: it is reported but not asserted.
MAX_OBS_OVERHEAD = 1.05
MAX_PROBE_DRIFT = 0.10

#: If the e2e reps of the current run spread wider than this, the
#: measurement window itself was turbulent and the obs gate disarms.
MAX_E2E_REP_SPREAD = 1.15


def host_facts() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
    }


def measure_micro() -> dict:
    times = event_times()
    results = {"n_events": N_EVENTS}
    for name, workload in (
        ("push_pop", workload_push_pop),
        ("churn", workload_churn),
    ):
        legacy_s = time_workload(workload, LegacyEventQueue, times)
        current_s = time_workload(workload, EventQueue, times)
        results[f"{name}_s"] = current_s
        results[f"{name}_legacy_s"] = legacy_s
        results[f"{name}_speedup"] = legacy_s / current_s if current_s else 0.0
    return results


def measure_e2e(reps: int = 5) -> dict:
    """Best-of-``reps`` wall clock for the 50-year run.

    Single-shot timings on shared hardware swing by more than the 5%
    obs-overhead budget, so the gate would be judging scheduler noise.
    The minimum over a few identical runs is the standard robust
    estimator for "how fast can this code go on this machine".
    """
    task = ScenarioTask(scenario=E2E_SCENARIO)
    seed = derive_seeds(E2E_BASE_SEED, 1)[0]
    walls = []
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = task(0, seed)
        walls.append(time.perf_counter() - started)
    return {
        "scenario": E2E_SCENARIO,
        "horizon_years": 50.0,
        "base_seed": E2E_BASE_SEED,
        "wall_clock_s": min(walls),
        "wall_clock_reps": [round(w, 3) for w in walls],
        "events_executed": result.events_executed,
        "peak_pending_events": result.peak_pending_events,
        "uptime": result.sample,
    }


def load_document() -> dict:
    if BENCH_JSON.exists():
        return json.loads(BENCH_JSON.read_text())
    return {"version": 1, "baseline": None, "latest": None}


def write_latest(document: dict, micro: dict, e2e: dict) -> None:
    document["latest"] = {
        "captured_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "kernel": "PR-3 tuple-keyed slots kernel",
        "host": host_facts(),
        "micro": micro,
        "e2e": e2e,
    }
    BENCH_JSON.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def test_e22_kernel_fast_path(benchmark):
    document = load_document()
    # E2e first: it runs in a fresh process state, before the micro
    # workloads churn the allocator with 200k-event lists.
    e2e, micro = benchmark.pedantic(
        lambda: (measure_e2e(), measure_micro()), rounds=1, iterations=1
    )
    write_latest(document, micro, e2e)

    baseline = document.get("baseline")
    rows = [
        f"micro push/pop : legacy {micro['push_pop_legacy_s']:.3f} s → "
        f"current {micro['push_pop_s']:.3f} s "
        f"({micro['push_pop_speedup']:.2f}x) for {N_EVENTS:,} events",
        f"micro churn    : legacy {micro['churn_legacy_s']:.3f} s → "
        f"current {micro['churn_s']:.3f} s "
        f"({micro['churn_speedup']:.2f}x)",
        f"e2e 50-year    : {e2e['wall_clock_s']:.2f} s, "
        f"{e2e['events_executed']:,} events "
        f"(uptime {e2e['uptime']:.4f})",
    ]
    e2e_speedup = None
    same_host = False
    if baseline is not None:
        base_e2e = baseline["e2e"]
        e2e_speedup = base_e2e["wall_clock_s"] / e2e["wall_clock_s"]
        same_host = baseline["host"]["hostname"] == platform.node()
        rows.append(
            f"e2e vs baseline: {base_e2e['wall_clock_s']:.2f} s → "
            f"{e2e['wall_clock_s']:.2f} s ({e2e_speedup:.2f}x"
            f"{', same host' if same_host else ', DIFFERENT host — informational'})"
        )
    reference = document.get("pr3_reference")
    obs_ratio = None
    obs_gate_armed = False
    if reference is not None:
        ref_e2e = reference["e2e"]
        ref_micro = reference["micro"]
        obs_ratio = e2e["wall_clock_s"] / ref_e2e["wall_clock_s"]
        probe_ratio = (micro["push_pop_legacy_s"] + micro["churn_legacy_s"]) / (
            ref_micro["push_pop_legacy_s"] + ref_micro["churn_legacy_s"]
        )
        same_state = abs(probe_ratio - 1.0) <= MAX_PROBE_DRIFT
        reps = e2e.get("wall_clock_reps") or [e2e["wall_clock_s"]]
        spread = max(reps) / min(reps)
        calm = spread <= MAX_E2E_REP_SPREAD
        obs_gate_armed = (
            reference["host"]["hostname"] == platform.node()
            and same_state
            and calm
        )
        if obs_gate_armed:
            condition = "same host & machine state"
        elif reference["host"]["hostname"] != platform.node():
            condition = "DIFFERENT host — informational"
        elif not same_state:
            condition = (
                f"machine state drifted {probe_ratio:.2f}x on the frozen "
                f"legacy probe — informational"
            )
        else:
            condition = (
                f"turbulent window (rep spread {spread:.2f}x) — informational"
            )
        rows.append(
            f"obs overhead   : {ref_e2e['wall_clock_s']:.2f} s → "
            f"{e2e['wall_clock_s']:.2f} s ({obs_ratio:.3f}x of pre-obs, "
            f"{condition})"
        )
    rows.append(f"wrote latest → {BENCH_JSON.name}")
    emit(rows)

    # Correctness first: both kernels drained identical workloads (the
    # workloads themselves return pop counts checked inside), and the
    # e2e run executed the same event volume the baseline did — a
    # "speedup" from doing less work would be a bug, not a win.
    if baseline is not None:
        assert e2e["events_executed"] == baseline["e2e"]["events_executed"]
        assert e2e["uptime"] == baseline["e2e"]["uptime"]

    # Same-machine micro bar, always armed.
    assert micro["push_pop_speedup"] >= MIN_MICRO_SPEEDUP, (
        f"push/pop speedup {micro['push_pop_speedup']:.2f}x "
        f"< required {MIN_MICRO_SPEEDUP}x"
    )

    # E2e bar, armed only where the baseline numbers were taken.
    if e2e_speedup is not None and same_host:
        assert e2e_speedup >= MIN_E2E_SPEEDUP, (
            f"e2e speedup {e2e_speedup:.2f}x < required {MIN_E2E_SPEEDUP}x"
        )

    # Obs-overhead bar vs the frozen pre-obs kernel: armed only on the
    # reference host while the frozen-code probe confirms comparable
    # machine state (see MAX_PROBE_DRIFT above).
    if obs_ratio is not None and obs_gate_armed:
        assert obs_ratio <= MAX_OBS_OVERHEAD, (
            f"e2e wall clock is {obs_ratio:.3f}x the pre-obs reference "
            f"(> allowed {MAX_OBS_OVERHEAD}x): the telemetry layer "
            f"regressed the hot path"
        )
