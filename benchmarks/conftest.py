"""Shared helpers for the benchmark harness.

Each ``bench_eNN_*.py`` regenerates one of the paper's quantitative
claims (see DESIGN.md's per-experiment index).  Benchmarks print their
paper-vs-measured rows via :func:`emit` so ``pytest benchmarks/
--benchmark-only -s`` produces the EXPERIMENTS.md tables, and each
asserts its shape criterion so regressions fail loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import PaperComparison


def emit(rows) -> None:
    """Print paper-vs-measured rows beneath the benchmark output."""
    print()
    for row in rows:
        if isinstance(row, PaperComparison):
            print(f"  [{row.experiment}] {row.claim}")
            print(f"      paper:    {row.paper_value}")
            print(f"      measured: {row.measured_value}"
                  f"  ({'HOLDS' if row.holds else 'DIFFERS'})")
            if row.note:
                print(f"      note: {row.note}")
        else:
            print(f"  {row}")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for benchmark sampling."""
    return np.random.default_rng(2021)
