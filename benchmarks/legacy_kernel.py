"""The pre-PR-3 event-queue implementation, frozen for benchmarking.

This is the seed tree's ``repro/core/events.py`` kernel: a
``@dataclass(order=True)`` Event whose generated ``__lt__`` runs on
every heap sift, and a peek-then-pop engine loop.  ``bench_e22_kernel``
races it against the optimized kernel on the same machine so the
recorded speedup is hardware-independent.

Do not "fix" this module — its slowness is the baseline being measured.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

LegacyEventCallback = Callable[[], None]


@dataclass(order=True)
class LegacyEvent:
    """The seed kernel's Event: ordering via generated ``__lt__``."""

    time: float
    priority: int
    sequence: int
    callback: LegacyEventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    popped: bool = field(compare=False, default=False)
    _queue: Optional["LegacyEventQueue"] = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        self._queue = None
        if queue is not None and not self.popped:
            queue._discard_live()


class LegacyEventQueue:
    """The seed kernel's EventQueue: object-ordered heap, lazy deletion,
    and no dead-weight compaction."""

    def __init__(self) -> None:
        self._heap: List[LegacyEvent] = []
        self._counter = itertools.count()
        self._live = 0
        self._peak = 0

    def push(
        self,
        time: float,
        callback: LegacyEventCallback,
        priority: int = 0,
        label: str = "",
    ) -> LegacyEvent:
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        event = LegacyEvent(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        if self._live > self._peak:
            self._peak = self._live
        return event

    def pop(self) -> LegacyEvent:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.popped = True
            event._queue = None
            self._live -= 1
            return event
        raise IndexError("pop from empty LegacyEventQueue")

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: LegacyEvent) -> None:
        event.cancel()

    def empty(self) -> bool:
        return self.peek_time() is None

    def __len__(self) -> int:
        return self._live

    @property
    def peak_live(self) -> int:
        return self._peak

    def _discard_live(self) -> None:
        self._live -= 1
