"""E21 — the deterministic parallel Monte-Carlo runtime.

E20's projection is a many-seed study; the ROADMAP's north star wants it
to run "as fast as the hardware allows".  This bench runs the same
10-seed as-designed study three ways — the old-style explicit serial
loop, ``MonteCarloRunner(workers=1)``, and ``MonteCarloRunner`` with a
worker pool — and checks the two properties the runtime promises:

1. **Bit-identical statistics** at any worker count (seeds are fixed via
   the fork lineage before any work is dispatched).
2. **Speedup** on multi-core hardware: ≥2x over the serial loop with 4
   workers.  The speedup assertion only arms when the machine actually
   has ≥4 CPUs; the determinism assertions always run.
"""

import dataclasses
import os
import time
from dataclasses import replace

from repro.core import units
from repro.experiment import SCENARIOS, FiftyYearExperiment
from repro.runtime import MonteCarloRunner, ScenarioTask, derive_seeds

from conftest import emit

RUNS = 10
HORIZON = units.years(10.0)
CADENCE = units.days(2.0)
SCENARIO = "as-designed"
BASE_SEED = 100
POOL_WORKERS = min(4, os.cpu_count() or 1)


def serial_loop_samples():
    """The pre-runtime idiom: a bare Python loop over seeds."""
    samples = []
    for seed in derive_seeds(BASE_SEED, RUNS):
        config = SCENARIOS[SCENARIO](seed)
        config = replace(config, horizon=HORIZON, report_interval=CADENCE)
        samples.append(FiftyYearExperiment(config).run().overall.uptime)
    return samples


def compute_all():
    task = ScenarioTask(
        scenario=SCENARIO, horizon=HORIZON, report_interval=CADENCE
    )

    started = time.perf_counter()
    loop_samples = serial_loop_samples()
    loop_s = time.perf_counter() - started

    serial_study = MonteCarloRunner(
        task, runs=RUNS, base_seed=BASE_SEED, workers=1
    ).run()
    pooled_study = MonteCarloRunner(
        task, runs=RUNS, base_seed=BASE_SEED, workers=POOL_WORKERS
    ).run()
    return loop_samples, loop_s, serial_study, pooled_study


def test_e21_parallel_monte_carlo(benchmark):
    loop_samples, loop_s, serial, pooled = benchmark.pedantic(
        compute_all, rounds=1, iterations=1
    )
    speedup = loop_s / pooled.wall_clock_s if pooled.wall_clock_s > 0 else 0.0
    emit([
        f"serial loop          : {loop_s:7.2f} s for {RUNS} seeds",
        f"runner, 1 worker     : {serial.wall_clock_s:7.2f} s",
        f"runner, {pooled.workers} worker(s)  : {pooled.wall_clock_s:7.2f} s "
        f"({speedup:.2f}x vs serial loop)",
        f"aggregate uptime     : mean {pooled.uptime.mean:.4f}, "
        f"worst {pooled.uptime.worst:.4f} — identical at every worker count",
        f"study volume         : {pooled.total_events:,} events, "
        f"peak pending queue {pooled.peak_pending_events:,}",
    ])

    # Determinism: the runner reproduces the serial loop bit for bit,
    # and the worker pool reproduces the single-worker runner bit for
    # bit — same seeds, same samples, same aggregate.
    assert [r.sample for r in serial.runs] == loop_samples
    assert [r.sample for r in pooled.runs] == loop_samples
    assert dataclasses.asdict(serial.uptime) == dataclasses.asdict(pooled.uptime)

    # Throughput: on a multi-core machine the pool must at least halve
    # the serial wall-clock.  (Single-core machines can only verify
    # determinism — there is no parallel hardware to demonstrate on.)
    if POOL_WORKERS >= 4 and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >=2x speedup, got {speedup:.2f}x"
