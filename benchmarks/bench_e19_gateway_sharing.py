"""E19 — §3.2: vendor-siloed gateways are redundant; open gateways
multiply coverage.

"Connectivity from gateway deployment can be increased, if gateways
provide coverage to all devices regardless of the manufacturer."

Boolean-coverage model over a 50 km² city at 300 m gateway radius: the
hardware saving of one open layer vs per-vendor silos, and the dual —
what the silos' combined hardware would cover if opened up.
"""

from repro.analysis.report import PaperComparison
from repro.econ import compare_sharing, coverage_fraction

from conftest import emit


def compute_sharing():
    rows = [compare_sharing(vendors=v) for v in (1, 2, 4, 8)]
    # The dual: fixed total hardware (the 4-vendor silo build), opened.
    four = rows[2]
    pooled = coverage_fraction(four.gateways_siloed, 50.0, 300.0)
    siloed_per_vendor = four.target_coverage
    return rows, pooled, siloed_per_vendor


def test_e19_gateway_sharing(benchmark):
    rows, pooled, siloed = benchmark(compute_sharing)
    four = rows[2]
    holds = four.hardware_saving >= 0.7 and pooled > siloed
    out = [
        PaperComparison(
            experiment="E19",
            claim="open gateways beat vendor-siloed redundant deployments",
            paper_value="qualitative (§3.2 takeaway)",
            measured_value=(
                f"4 vendors: sharing saves {four.hardware_saving:.0%} of "
                f"gateways (${(four.capex_siloed_usd - four.capex_shared_usd)/1e6:.1f} M); "
                f"pooling the siloed hardware lifts per-device coverage "
                f"{siloed:.0%} -> {pooled:.2%}"
            ),
            holds=holds,
        ),
    ]
    for row in rows:
        out.append(
            f"{row.vendors} vendor(s): siloed {row.gateways_siloed:>5,} gw "
            f"(${row.capex_siloed_usd/1e6:5.1f} M) vs shared "
            f"{row.gateways_shared:>4,} gw (${row.capex_shared_usd/1e6:4.1f} M) "
            f"-> save {row.hardware_saving:.0%}"
        )
    emit(out)
    assert holds
    savings = [row.hardware_saving for row in rows]
    assert savings == sorted(savings)
