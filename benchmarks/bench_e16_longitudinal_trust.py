"""E16 — §4.1: "limited longitudinal trust, as their security and
signing techniques can never be modified."

A fleet of immutable transmit-only devices ages against cryptoperiods,
scheme breaks, and slow key leakage.  The measured quantity is the
*trust lifetime* — how long the backend can fully trust a majority of
the fleet — set against the E10 hardware lifetimes: for harvesting
devices, trust, not hardware, becomes the binding constraint.
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.core import units
from repro.net import SCHEMES, TrustPolicy, TrustRegistry, trust_horizon
from repro.reliability import energy_harvesting_device, mean_lifetime_years

from conftest import emit


def compute_trust(rng):
    fleet = 400
    horizons = {}
    census_rows = {}
    for scheme_name in sorted(SCHEMES):
        registry = TrustRegistry(
            policy=TrustPolicy(key_leak_rate_per_year=0.002),
            rng=np.random.default_rng(11),
        )
        for index in range(fleet):
            registry.commission(f"{scheme_name}-{index}", scheme_name, at=0.0)
        horizons[scheme_name] = units.as_years(
            trust_horizon(registry, horizon=units.years(60.0))
        )
        census = registry.census(units.years(50.0))
        census_rows[scheme_name] = {
            level.value: count / fleet for level, count in census.items()
        }
    hardware_years = mean_lifetime_years(energy_harvesting_device())
    return horizons, census_rows, hardware_years


def test_e16_longitudinal_trust(benchmark, rng):
    horizons, census_rows, hardware_years = benchmark.pedantic(
        compute_trust, rounds=1, iterations=1, args=(rng,)
    )
    # Shape: every immutable scheme's trust horizon falls short of the
    # harvesting hardware's mean lifetime.
    holds = all(h < hardware_years for h in horizons.values())
    rows = [
        PaperComparison(
            experiment="E16",
            claim="immutable signing limits longitudinal trust below hardware life",
            paper_value="qualitative (§4.1)",
            measured_value=(
                f"trust horizons {min(horizons.values()):.0f}-"
                f"{max(horizons.values()):.0f} yr vs {hardware_years:.0f}-yr "
                f"harvesting hardware mean"
            ),
            holds=holds,
        ),
    ]
    for scheme_name, horizon in sorted(horizons.items()):
        at_50 = census_rows[scheme_name]
        rows.append(
            f"{scheme_name:<14} trust horizon {horizon:4.0f} yr; at year 50: "
            f"{at_50['trusted']:.0%} trusted / {at_50['degraded']:.0%} degraded "
            f"/ {at_50['untrusted']:.0%} untrusted"
        )
    emit(rows)
    assert holds
    # Cryptoperiod drives the horizon: schemes' horizons track their
    # configured cryptoperiods.
    for scheme_name, horizon in horizons.items():
        assert horizon <= SCHEMES[scheme_name].cryptoperiod_years + 2.0
