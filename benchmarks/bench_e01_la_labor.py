"""E1 — §1: replacing LA's deployment takes ~200,000 person-hours.

Regenerates the paper's arithmetic over its published asset counts
(320,000 utility poles + 61,315 intersections + 210,000 streetlights at
a "very generous" 20 minutes per device), then extends it: the dollar
cost of the same fleet replacement, and the staffing implied by a
10-year replacement campaign.
"""

from repro.analysis.report import PaperComparison
from repro.city import los_angeles
from repro.econ import CostParameters
from repro.reliability import fleet_replacement_hours

from conftest import emit


def compute_la_labor():
    city = los_angeles()
    hours = city.replacement_person_hours(minutes_per_device=20.0)
    costs = CostParameters()
    dollars = costs.fleet_replacement_usd(city.total_sensors())
    # A 10-year rolling replacement campaign at 1,800 h/tech-year:
    techs_for_decade = hours / (10 * 1800.0)
    return hours, dollars, techs_for_decade, city.total_sensors()


def test_e01_la_replacement_labor(benchmark):
    hours, dollars, techs, assets = benchmark(compute_la_labor)
    holds = 190_000 < hours < 200_000
    emit([
        PaperComparison(
            experiment="E1",
            claim="LA fleet replacement labor (poles+intersections+lights @ 20 min)",
            paper_value="nearly 200,000 person-hours",
            measured_value=f"{hours:,.0f} person-hours over {assets:,} assets",
            holds=holds,
        ),
        f"extension: all-in replacement cost ${dollars/1e6:,.1f} M; "
        f"a 10-year campaign needs ~{techs:.0f} full-time technicians",
    ])
    assert holds
    assert fleet_replacement_hours(assets) == hours
