"""E2 — Abstract/§1: devices are replaced every ~50 months; bridges
every ~50 years.

We simulate a consumer-grade wireless fleet under today's operator
practice (scheduled refresh + technology sunsets + style churn) and
measure the realized replacement cadence, then contrast with the
physical-infrastructure cadence embedded in the city asset model.
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.city import los_angeles
from repro.core import units
from repro.obsolescence import (
    UpgradePolicy,
    historical_cellular_timeline,
    simulate_fleet_fates,
)
from repro.reliability import battery_powered_device

from conftest import emit


def compute_cadence(rng):
    model = battery_powered_device()
    lifetimes = model.sample(rng, 8000)
    # Today's practice: ~4-year refresh plans plus sunset-following plus
    # a little style churn — the consumer-electronics regime.
    policy = UpgradePolicy(
        refresh_years=4.0, follow_sunsets=True, style_refresh_probability=0.05
    )
    fates = simulate_fleet_fates(
        lifetimes,
        policy,
        historical_cellular_timeline(),
        deploy_t=units.years(20.0),
        rng=rng,
    )
    device_months = fates.mean_realized_years * 12.0
    bridge_years = 50.0  # NBI median service life, embedded in city model
    la = los_angeles()
    infra_years = np.mean([a.service_life_years for a in la.assets])
    return device_months, bridge_years, infra_years, fates


def test_e02_replacement_cadence(benchmark, rng):
    device_months, bridge_years, infra_years, fates = benchmark(
        compute_cadence, rng
    )
    # Shape: device cadence in tens of months, a >=10x gap to bridges.
    gap = (bridge_years * 12.0) / device_months
    holds = 25.0 < device_months < 75.0 and gap > 8.0
    emit([
        PaperComparison(
            experiment="E2",
            claim="wireless devices replaced every ~50 months vs 50-year bridges",
            paper_value="50 months vs 50 years (12x)",
            measured_value=(
                f"{device_months:.0f} months vs {bridge_years:.0f} years "
                f"({gap:.1f}x gap)"
            ),
            holds=holds,
        ),
        f"mean hosting-infrastructure service life (LA mix): {infra_years:.0f} yr",
        f"hardware utilization under today's practice: {fates.utilization:.0%} "
        f"({fates.wasted_service_years:.1f} working years discarded per device)",
    ])
    assert holds
