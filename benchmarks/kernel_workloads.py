"""Shared event-queue workloads for the kernel benchmarks (E22).

Each workload takes an ``EventQueue``-compatible class so the same code
measures the current kernel and :mod:`legacy_kernel` (the pre-PR-3
dataclass-Event implementation) on the same machine — speedup claims
never compare timings taken on different hardware.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, List

import numpy as np

#: One deterministic schedule of event times shared by all measurements.
N_EVENTS = 200_000


def event_times(n: int = N_EVENTS) -> List[float]:
    """A fixed pseudo-random schedule (seconds over ~50 simulated years)."""
    rng = np.random.default_rng(2021)
    return [float(t) for t in rng.uniform(0.0, 1.6e9, size=n)]


def _noop() -> None:
    return None


def workload_push_pop(queue_cls, times: List[float]) -> int:
    """Heap throughput: push every event, then drain in time order."""
    queue = queue_cls()
    for t in times:
        queue.push(t, _noop)
    popped = 0
    while not queue.empty():
        queue.pop()
        popped += 1
    return popped


def workload_churn(queue_cls, times: List[float]) -> int:
    """Cancel-heavy mix: every step arms two events and cancels one.

    This is the PeriodicTask-stop / device-death pattern that leaves
    dead weight in a lazy-deletion heap over a 50-year horizon.
    """
    queue = queue_cls()
    popped = 0
    for index, t in enumerate(times):
        keep = queue.push(t, _noop)
        doomed = queue.push(t + 0.5, _noop)
        queue.cancel(doomed)
        if index % 2:
            queue.pop()
            popped += 1
        del keep
    while not queue.empty():
        queue.pop()
        popped += 1
    return popped


def time_workload(workload: Callable, queue_cls, times: List[float],
                  repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds for one workload.

    The collector is paused around each timed run: when the whole bench
    suite runs in one process, ambient garbage from earlier benches
    would otherwise trigger gen-2 collections mid-measurement and add
    noise to what is meant to be a pure kernel comparison.
    """
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            workload(queue_cls, times)
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best = elapsed
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return best
