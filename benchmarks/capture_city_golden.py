"""Capture the golden small-fleet fixture for city engine equivalence.

Runs the city-scale scenario at a small fleet size with the *per-entity*
engine — the reference path every earlier golden trace pins — records
the executed ``(time, priority, sequence, label)`` stream as a SHA-256
digest (same methodology as ``capture_golden.py``), and stores the
engine-independent ``fleet_summary``.  The paired test
(``tests/experiment/test_city_equivalence.py``) replays both engines:
the per-entity replay must reproduce the pinned trace bit for bit, and
the cohort replay must land the identical fleet summary — the proof
that cohort batching is a pure execution-strategy change.

Both captures run under a strict
:class:`~repro.faults.InvariantAuditor`; a fixture cannot be produced
from a run that violates a runtime invariant.

Usage::

    PYTHONPATH=src python benchmarks/capture_city_golden.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.city.scenario import CityScaleConfig, CityScenario
from repro.core import units
from repro.faults import InvariantAuditor

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "experiment" / "golden"

STEM = "city-small_seed7"


def small_city_config(engine: str) -> CityScaleConfig:
    """The pinned small-fleet case: must match the test exactly."""
    return CityScaleConfig(
        seed=7,
        device_count=48,
        horizon=units.days(28.0),
        batches=6,
        engine=engine,
    )


def trace_line(event) -> bytes:
    """Canonical encoding of one executed event (same as capture_golden)."""
    return f"{event.time!r}|{event.priority}|{event.sequence}|{event.label}\n".encode()


class TraceDigest:
    """Incremental SHA-256 over the executed-event stream."""

    def __init__(self) -> None:
        self.sha = hashlib.sha256()
        self.count = 0
        self.head = []
        self.tail = []

    def add(self, event) -> None:
        line = trace_line(event)
        self.sha.update(line)
        self.count += 1
        text = line.decode().rstrip("\n")
        if len(self.head) < 5:
            self.head.append(text)
        self.tail.append(text)
        if len(self.tail) > 5:
            self.tail.pop(0)


def run_reference() -> tuple:
    """Run the per-entity reference engine traced; returns (digest, summary)."""
    digest = TraceDigest()
    city = CityScenario(small_city_config("per-entity"))
    city.sim.trace_executed = digest.add
    auditor = InvariantAuditor(city.sim, strict=True).install()
    summary = city.run()
    auditor.check_now()
    return digest, summary


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    digest, summary = run_reference()
    fixture = {
        "version": 1,
        "scenario": "city-small",
        "seed": 7,
        "trace_sha256": digest.sha.hexdigest(),
        "trace_events": digest.count,
        "trace_head": digest.head,
        "trace_tail": digest.tail,
        "fleet_summary": summary,
    }
    path = GOLDEN_DIR / f"{STEM}.json"
    path.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(
        f"{path.name}: {fixture['trace_events']} events, "
        f"sha256 {fixture['trace_sha256'][:16]}…"
    )


if __name__ == "__main__":
    main()
