"""E5 — §3.3: fiber vs cellular backhaul economics over 50 years.

The paper: cellular is "easier to implement" (no new infrastructure) but
"in the long term the operational costs of subscription from service
providers becomes expensive" — San Diego is moving from 3G/4G to fiber.
We sweep the cumulative-TCO curves, locate the crossover, and show how
§3.3.1's trench-sharing amortization moves it.
"""

from repro.analysis.metrics import first_crossing
from repro.analysis.report import PaperComparison
from repro.econ import CellularCosts, FiberCosts, crossover_year, tco_series

from conftest import emit


def compute_tco():
    gateways = 100
    points = tco_series(gateways, horizon_years=50.0)
    years = [p.years for p in points]
    fiber = [p.fiber_usd for p in points]
    cellular = [p.cellular_usd for p in points]
    crossing = first_crossing(years, fiber, cellular)
    sweeps = {
        "coordinated digs (default)": crossover_year(gateways),
        "full greenfield trench": crossover_year(
            gateways, fiber=FiberCosts(km_per_gateway=0.8, trench_share=1.0)
        ),
        "aggressive sharing (25%)": crossover_year(
            gateways, fiber=FiberCosts(trench_share=0.25)
        ),
        "cheap cellular ($20/mo)": crossover_year(
            gateways,
            cellular=CellularCosts(subscription_usd_per_gateway_year=240.0),
        ),
    }
    fifty = points[-1]
    return crossing, sweeps, fifty


def test_e05_backhaul_tco(benchmark):
    crossing, sweeps, fifty = benchmark(compute_tco)
    holds = crossing is not None and 5.0 < crossing < 35.0 and fifty.fiber_wins
    rows = [
        PaperComparison(
            experiment="E5",
            claim="fiber TCO beats cellular subscriptions inside a 50-yr horizon",
            paper_value="cellular 'becomes expensive' long-term; SD moving to fiber",
            measured_value=(
                f"crossover at year {crossing:.1f}; at year 50 fiber costs "
                f"{fifty.fiber_usd / fifty.cellular_usd:.2f}x cellular"
            ),
            holds=holds,
        ),
    ]
    for label, year in sweeps.items():
        rendered = "never" if year == float("inf") else f"year {year:.1f}"
        rows.append(f"sensitivity [{label}]: crossover {rendered}")
    emit(rows)
    assert holds
    # §3.3.1's amortization lever is decisive: greenfield never crosses.
    assert sweeps["full greenfield trench"] == float("inf")
    assert sweeps["aggressive sharing (25%)"] < sweeps["coordinated digs (default)"]
