"""Record the pre-optimization kernel baseline into BENCH_kernel.json.

Run once against the seed tree (before the PR-3 kernel work) to pin the
numbers every later ``bench_e22_kernel`` run reports its speedup
against.  Re-run only to re-baseline after an intentional perf change::

    PYTHONPATH=src python benchmarks/capture_perf_baseline.py
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
from pathlib import Path

from repro.core.events import EventQueue
from repro.runtime import ScenarioTask, derive_seeds

from kernel_workloads import (
    N_EVENTS,
    event_times,
    time_workload,
    workload_churn,
    workload_push_pop,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

E2E_SCENARIO = "as-designed"
E2E_BASE_SEED = 2021


def host_facts() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
    }


def measure_micro(queue_cls) -> dict:
    times = event_times()
    return {
        "n_events": N_EVENTS,
        "push_pop_s": time_workload(workload_push_pop, queue_cls, times),
        "churn_s": time_workload(workload_churn, queue_cls, times),
    }


def measure_e2e() -> dict:
    task = ScenarioTask(scenario=E2E_SCENARIO)
    seed = derive_seeds(E2E_BASE_SEED, 1)[0]
    result = task(0, seed)
    return {
        "scenario": E2E_SCENARIO,
        "horizon_years": 50.0,
        "base_seed": E2E_BASE_SEED,
        "wall_clock_s": result.wall_clock_s,
        "events_executed": result.events_executed,
        "peak_pending_events": result.peak_pending_events,
        "uptime": result.sample,
    }


def main() -> None:
    baseline = {
        "captured_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "kernel": "pre-PR3 dataclass-Event seed kernel",
        "host": host_facts(),
        "micro": measure_micro(EventQueue),
        "e2e": measure_e2e(),
    }
    document = {"version": 1, "baseline": baseline, "latest": None}
    BENCH_JSON.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    micro = baseline["micro"]
    e2e = baseline["e2e"]
    print(f"baseline micro: push/pop {micro['push_pop_s']:.3f} s, "
          f"churn {micro['churn_s']:.3f} s for {micro['n_events']} events")
    print(f"baseline e2e:   {e2e['wall_clock_s']:.2f} s for 1-seed 50-year "
          f"{e2e['scenario']} ({e2e['events_executed']:,} events)")
    print(f"wrote {BENCH_JSON}")


if __name__ == "__main__":
    main()
