"""Serving-layer throughput: the perfect cache under closed-loop load.

The paper's §4.4 data-endpoint framing makes the serving layer a
first-class artifact, so it gets the same perf-regression treatment as
the kernel and the scheduler (``BENCH_serve.json``, baseline pinned on
first capture, ``latest`` rewritten every run, same-host gating):

1. **Cache-hit throughput over HTTP** — closed-loop clients on
   keep-alive connections hammering one already-cached request
   through the full asyncio front end.  This is the acceptance
   number: thousands of requests per second served without touching
   the worker pool (floor configurable via ``SERVE_BENCH_HIT_FLOOR``
   for slower CI hosts; default 1000 req/s).
2. **Service-level hit throughput** — the same hit path without HTTP
   framing, isolating codec cost from cache cost.
3. **Cold-run latency vs workers** — distinct (seed-varied) requests
   through a real process pool at 1 and 2 workers: the pooled
   execution path the misses take.
"""

from __future__ import annotations

import asyncio
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.serve import (
    HttpServer,
    ResponseCache,
    ScenarioService,
    parse_request,
)

from conftest import emit

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

SCENARIO = "owned-only"
YEARS = 0.1
#: Closed-loop load shape: connections x requests-per-connection.
CONNECTIONS = 4
REQUESTS_PER_CONNECTION = 500
#: Cold-path shape: distinct seeds, so every request is a true miss.
COLD_RUNS = 8
WORKER_GRID = (1, 2)

#: The acceptance floor on cache-hit throughput.  Local runs must show
#: thousands of requests per second; CI hosts override the floor down
#: via the environment (they are slow and shared, and the property
#: under test is "hits bypass the pool", not this host's syscall rate).
HIT_FLOOR_RPS = float(os.environ.get("SERVE_BENCH_HIT_FLOOR", "1000"))

#: Same-host regression bar vs the pinned baseline capture.
MAX_REGRESSION = 1.30


def host_facts() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
    }


def _request(seed: int = 2021):
    return parse_request(
        {"scenario": SCENARIO, "seed": seed, "years": YEARS}, "run"
    )


def _request_bytes(seed: int = 2021) -> bytes:
    body = _request(seed).to_json().encode("utf-8")
    return (
        f"POST /v1/run HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1") + body


async def _read_response(reader: asyncio.StreamReader) -> bytes:
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.decode("latin-1").split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    return await reader.readexactly(length)


async def _client_loop(port: int, wire: bytes, requests: int) -> int:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    served = 0
    for _ in range(requests):
        writer.write(wire)
        await writer.drain()
        body = await _read_response(reader)
        served += len(body) > 0
    writer.close()
    return served


async def measure_http_hits() -> dict:
    """Closed-loop keep-alive load against one cached request."""
    service = ScenarioService(workers=1, cache=ResponseCache())
    server = HttpServer(service, port=0)
    await server.start()
    try:
        # Prewarm: the one miss this benchmark ever takes.
        warm = await service.handle(_request())
        assert warm.status == 200 and warm.cache == "miss"

        wire = _request_bytes()
        started = time.perf_counter()
        served = await asyncio.gather(
            *(
                _client_loop(server.port, wire, REQUESTS_PER_CONNECTION)
                for _ in range(CONNECTIONS)
            )
        )
        wall_s = time.perf_counter() - started
        total = sum(served)
        assert total == CONNECTIONS * REQUESTS_PER_CONNECTION

        # The hit/miss ratio is on the metrics page, as the issue asks.
        text = service.metrics_text()
        assert f"serve_cache_hits_total {total}" in text
        assert "serve_cache_misses_total 1" in text
        # Hits never touched the pool: exactly the prewarm execution.
        assert "serve_executions_total 1" in text
    finally:
        await server.stop()
    return {
        "connections": CONNECTIONS,
        "requests": total,
        "wall_s": wall_s,
        "rps": total / wall_s,
        "body_bytes": len(warm.body),
    }


async def measure_service_hits() -> dict:
    """The hit path without HTTP framing: digest + cache probe only."""
    service = ScenarioService(workers=1, cache=ResponseCache())
    request = _request()
    warm = await service.handle(request)
    assert warm.cache == "miss"
    count = CONNECTIONS * REQUESTS_PER_CONNECTION
    started = time.perf_counter()
    for _ in range(count):
        response = await service.handle(request)
        assert response.cache == "hit"
    wall_s = time.perf_counter() - started
    service.close()
    return {"requests": count, "wall_s": wall_s, "rps": count / wall_s}


async def measure_cold_runs(workers: int) -> dict:
    """Distinct-seed misses through a real process pool."""
    service = ScenarioService(
        workers=workers, queue_limit=COLD_RUNS, cache=ResponseCache()
    )
    requests = [_request(seed=1000 + index) for index in range(COLD_RUNS)]
    started = time.perf_counter()
    responses = await asyncio.gather(
        *(service.handle(request) for request in requests)
    )
    wall_s = time.perf_counter() - started
    assert all(r.status == 200 and r.cache == "miss" for r in responses)
    service.close()
    return {
        "runs": COLD_RUNS,
        "wall_s": wall_s,
        "runs_per_s": COLD_RUNS / wall_s,
    }


def load_document() -> dict:
    if BENCH_JSON.exists():
        return json.loads(BENCH_JSON.read_text())
    return {"version": 1, "baseline": None, "latest": None}


def capture() -> dict:
    async def measure() -> dict:
        http_hits = await measure_http_hits()
        service_hits = await measure_service_hits()
        cold = {}
        for workers in WORKER_GRID:
            cold[str(workers)] = await measure_cold_runs(workers)
        return {
            "http_hits": http_hits,
            "service_hits": service_hits,
            "cold_runs": cold,
        }

    measured = asyncio.run(measure())
    return {
        "captured_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": host_facts(),
        "request": {"scenario": SCENARIO, "years": YEARS},
        **measured,
    }


def test_serve_throughput(benchmark):
    document = load_document()
    latest = benchmark.pedantic(capture, rounds=1, iterations=1)

    if document.get("baseline") is None:
        document["baseline"] = latest
    document["latest"] = latest
    BENCH_JSON.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    baseline = document["baseline"]
    http_rps = latest["http_hits"]["rps"]
    service_rps = latest["service_hits"]["rps"]
    cold = latest["cold_runs"]
    rows = [
        f"cache hits (HTTP)    : {http_rps:,.0f} req/s over "
        f"{latest['http_hits']['connections']} keep-alive connections "
        f"({latest['http_hits']['body_bytes']:,} B bodies)",
        f"cache hits (service) : {service_rps:,.0f} req/s without framing",
        "cold runs            : "
        + ", ".join(
            f"{w}w {cold[str(w)]['runs_per_s']:.1f} runs/s"
            for w in WORKER_GRID
        ),
    ]
    same_host = baseline["host"]["hostname"] == platform.node()
    regression = baseline["http_hits"]["rps"] / http_rps
    rows.append(
        f"vs baseline          : {baseline['http_hits']['rps']:,.0f} → "
        f"{http_rps:,.0f} req/s ({regression:.2f}x"
        f"{', same host' if same_host else ', DIFFERENT host — informational'})"
    )
    rows.append(f"wrote latest → {BENCH_JSON.name}")
    emit(rows)

    # The acceptance floor: cache hits are served at four digits per
    # second locally (floor lowered via SERVE_BENCH_HIT_FLOOR on CI).
    assert http_rps >= HIT_FLOOR_RPS, (
        f"cache-hit throughput {http_rps:,.0f} req/s is below the "
        f"{HIT_FLOOR_RPS:,.0f} req/s floor"
    )

    if same_host:
        assert regression <= MAX_REGRESSION, (
            f"cache-hit throughput fell to 1/{regression:.2f} of the "
            f"pinned baseline (> allowed {MAX_REGRESSION}x)"
        )
