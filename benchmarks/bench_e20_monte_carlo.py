"""E20 — robustness of the E9 projection across seeds.

One 50-year run is an anecdote.  This bench repeats the as-designed
experiment and its riskiest hedge (network collapse) across independent
seeds and reports the weekly-uptime distribution — the projection the
paper's §4.5 "expected outcomes" would actually want to publish.

Runs execute on ``repro.runtime``: seeds come from the hash-chained
fork lineage and the study fans across worker processes when the
machine has them (the result is bit-identical either way).
"""

import os

from repro.analysis.report import PaperComparison
from repro.core import units
from repro.experiment import monte_carlo_uptime

from conftest import emit

RUNS = 5
HORIZON = units.years(25.0)
CADENCE = units.days(2.0)  # the weekly metric is cadence-blind
WORKERS = min(RUNS, os.cpu_count() or 1)


def compute_monte_carlo():
    designed = monte_carlo_uptime(
        "as-designed", runs=RUNS, horizon=HORIZON, report_interval=CADENCE,
        workers=WORKERS,
    )
    collapse = monte_carlo_uptime(
        "network-collapse", runs=RUNS, horizon=HORIZON, report_interval=CADENCE,
        workers=WORKERS,
    )
    return designed, collapse


def test_e20_monte_carlo_robustness(benchmark):
    designed, collapse = benchmark.pedantic(
        compute_monte_carlo, rounds=1, iterations=1
    )
    holds = designed.p50 > 0.95 and designed.worst > 0.8
    emit([
        PaperComparison(
            experiment="E20",
            claim="the weekly-uptime projection is robust across seeds",
            paper_value="goal: weekly data, sustained",
            measured_value=(
                f"as-designed over {designed.runs} seeds x "
                f"{units.as_years(HORIZON):.0f} yr: median "
                f"{designed.p50:.3f}, worst {designed.worst:.3f}"
            ),
            holds=holds,
            note="25-yr windows; cadence-coarsened for tractability",
        ),
        f"as-designed      : mean {designed.mean:.3f} ± {designed.std:.3f}, "
        f"p5 {designed.p5:.3f}, worst {designed.worst:.3f}",
        f"network-collapse : mean {collapse.mean:.3f} ± {collapse.std:.3f}, "
        f"p5 {collapse.p5:.3f}, worst {collapse.worst:.3f}",
        f"executed on {WORKERS} worker(s) via repro.runtime",
    ])
    assert holds
    # Even the collapse hedge holds service while *any* hotspots remain
    # plus the owned arm; its floor must still beat a coin flip.
    assert collapse.worst > 0.5
