"""E14 — §2: "Air pollution is highly localized, and requires
measurement at city-block granularity."

A spatially-correlated pollution field (300 m correlation length, road
line sources) reconstructed from sensor grids at block through
kilometre spacing: block-scale sensing resolves the field; the sparse
deployments today's 500-5,000-node cities can afford do not.
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.city import PollutionFieldConfig, density_study

from conftest import emit


def compute_density_study(rng):
    config = PollutionFieldConfig(extent_m=8_000.0, correlation_length_m=300.0)
    spacings = [100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0]
    return config, density_study(config, spacings, rng)


def test_e14_air_quality_granularity(benchmark, rng):
    config, results = benchmark.pedantic(
        compute_density_study, rounds=1, iterations=1, args=(rng,)
    )
    block = results[1]      # 200 m — city-block granularity
    sparse = results[-1]    # 3.2 km — a handful of monitoring stations
    holds = (
        block.normalized_rmse < 0.5
        and sparse.normalized_rmse > 2.0 * block.normalized_rmse
    )
    rows = [
        PaperComparison(
            experiment="E14",
            claim="air pollution requires city-block measurement granularity",
            paper_value="qualitative (Marshall et al. within-urban variability)",
            measured_value=(
                f"block spacing ({block.spacing_m:.0f} m) error "
                f"{block.normalized_rmse:.0%} of field variability vs "
                f"{sparse.normalized_rmse:.0%} at {sparse.spacing_m/1000:.1f} km"
            ),
            holds=holds,
        ),
    ]
    for r in results:
        rows.append(
            f"spacing {r.spacing_m:>6.0f} m: {r.n_sensors:>5} sensors, "
            f"RMSE {r.rmse:5.2f} ({r.normalized_rmse:.0%} of sigma), "
            f"max error {r.max_error:5.1f}"
        )
    emit(rows)
    assert holds
    rmses = [r.rmse for r in results]
    assert rmses == sorted(rmses)  # denser is monotonically better
