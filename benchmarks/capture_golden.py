"""Capture golden event-order traces for the kernel equivalence test.

Runs named fifty-year scenarios at fixed seeds, records the executed
(time, priority, sequence, label) stream as a SHA-256 digest plus the
result summary, and writes one JSON fixture per (scenario, seed) into
``tests/experiment/golden/``.  The digests pin the exact execution
order of the kernel: any optimization that reorders events, changes RNG
draw order, or perturbs a single timestamp flips the hash.

Works against either kernel generation:

* the engine's ``trace_executed`` hook when present (current kernel);
* otherwise by wrapping ``EventQueue.pop`` (the pre-optimization kernel
  popped exactly once per executed event), which is how the committed
  baselines were produced from the seed tree.

Every capture runs with the :class:`~repro.faults.InvariantAuditor`
strict — a fixture cannot be produced from a run that violates a
runtime invariant.  The auditor is read-only, so enabling it does not
perturb a trace.

Usage::

    PYTHONPATH=src python benchmarks/capture_golden.py            # 4 base cases
    PYTHONPATH=src python benchmarks/capture_golden.py --faults   # + chaos case
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

from repro.core.engine import Simulation
from repro.core.events import EventQueue
from repro.experiment.fifty_year import FiftyYearExperiment
from repro.experiment.scenarios import SCENARIOS
from repro.faults import InvariantAuditor
from repro.faults.plans import pinned_chaos_plan

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "experiment" / "golden"

#: (scenario, seed) pairs pinned by the golden suite.  ``as-designed`` is
#: the default FiftyYearConfig; ``owned-only`` exercises the owned arm
#: (gateway replacement, commissioning) without the Helium population.
CASES = [
    ("owned-only", 2021),
    ("owned-only", 4242),
    ("as-designed", 2021),
    ("as-designed", 4242),
]

#: The chaos case (``--faults``): as-designed wounded by the pinned
#: ten-fault plan.  The fixture stem carries a ``-faults`` marker so it
#: cannot collide with an unwounded capture of the same scenario.
FAULT_SEED = 2021
FAULT_STEM = "as-designed-faults"


def trace_line(event) -> bytes:
    """Canonical encoding of one executed event for the digest."""
    return f"{event.time!r}|{event.priority}|{event.sequence}|{event.label}\n".encode()


class TraceDigest:
    """Incremental SHA-256 over the executed-event stream."""

    def __init__(self) -> None:
        self.sha = hashlib.sha256()
        self.count = 0
        self.head = []
        self.tail = []

    def add(self, event) -> None:
        line = trace_line(event)
        self.sha.update(line)
        self.count += 1
        text = line.decode().rstrip("\n")
        if len(self.head) < 5:
            self.head.append(text)
        self.tail.append(text)
        if len(self.tail) > 5:
            self.tail.pop(0)


def run_traced(scenario: str, seed: int, faults=None):
    """Run one scenario with execution tracing; returns (digest, result, sim)."""
    digest = TraceDigest()
    config = SCENARIOS[scenario](seed)
    experiment = FiftyYearExperiment(config)
    if faults is not None:
        experiment.sim.install_faults(faults)
    if hasattr(experiment.sim, "trace_executed"):
        experiment.sim.trace_executed = digest.add
        auditor = InvariantAuditor(experiment.sim, strict=True).install()
        result = experiment.run()
        auditor.check_now()
    else:  # pre-optimization kernel: one pop per executed event
        original_pop = EventQueue.pop

        def recording_pop(queue):
            event = original_pop(queue)
            digest.add(event)
            return event

        EventQueue.pop = recording_pop
        try:
            result = experiment.run()
        finally:
            EventQueue.pop = original_pop
    return digest, result, experiment.sim


def summarize(result, sim: Simulation) -> dict:
    """The FiftyYearResult facts the golden test compares exactly."""
    arms = {}
    for key, arm in result.arms.items():
        arms[key] = {
            "weekly_uptime": arm.weekly_uptime,
            "longest_gap_weeks": arm.longest_gap_weeks,
            "devices_alive_at_end": arm.devices_alive_at_end,
            "delivered": arm.delivered,
            "attempts": arm.attempts,
        }
    return {
        "overall_uptime": result.overall.uptime,
        "longest_gap_weeks": result.overall.longest_gap_weeks,
        "arms": arms,
        "gateway_replacements": result.gateway_replacements,
        "device_touches": result.device_touches,
        "wallet_spent": result.wallet.spent,
        "wallet_balance": result.wallet.balance,
        "wallet_refusals": result.wallet.refusals,
        "maintenance_hours": result.maintenance.total_hours(),
        "executed_events": sim.executed_events,
        "log_records": len(sim.log),
    }


def capture(scenario: str, seed: int, faults=None) -> dict:
    digest, result, sim = run_traced(scenario, seed, faults=faults)
    fixture = {
        "version": 1,
        "scenario": scenario,
        "seed": seed,
        "trace_sha256": digest.sha.hexdigest(),
        "trace_events": digest.count,
        "trace_head": digest.head,
        "trace_tail": digest.tail,
        "summary": summarize(result, sim),
    }
    if faults is not None:
        controller = sim.fault_controller
        fixture["faults"] = {
            "plan": faults.name,
            "specs": len(faults),
            "injected": controller.injected,
            "fired": controller.fired,
        }
    return fixture


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    with_faults = "--faults" in argv
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    jobs = [(scenario, seed, None, f"{scenario}_seed{seed}") for scenario, seed in CASES]
    if with_faults:
        jobs.append(
            (
                "as-designed",
                FAULT_SEED,
                pinned_chaos_plan(),
                f"{FAULT_STEM}_seed{FAULT_SEED}",
            )
        )
    for scenario, seed, plan, stem in jobs:
        fixture = capture(scenario, seed, faults=plan)
        path = GOLDEN_DIR / f"{stem}.json"
        path.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
        print(
            f"{path.name}: {fixture['trace_events']} events, "
            f"sha256 {fixture['trace_sha256'][:16]}…"
        )


if __name__ == "__main__":
    main()
