"""E6 — §3.4: the vertical-integration tipping point.

"As the number of deployed devices grows, so does the cost of replacing
them ... there will always be a tipping point where the cost of
deploying vertically owned and managed infrastructure is lower than the
cost of replacing devices."

We sweep fleet sizes, find the tipping point under the takeaway-
compliant policy, and show that the worst-practice policy forecloses the
option entirely (the cost of owning becomes infinite: devices cannot
re-home).
"""

import numpy as np

from repro.analysis.report import PaperComparison
from repro.core.policy import DeploymentPolicy
from repro.econ import TippingPointAnalysis

from conftest import emit


def compute_tipping():
    analysis = TippingPointAnalysis()
    good = DeploymentPolicy.takeaway_compliant()
    bad = DeploymentPolicy.worst_practice()
    tipping_good = analysis.tipping_point(good)
    tipping_bad = analysis.tipping_point(bad, max_fleet=2_000_000)
    sweep = []
    for fleet in (100, 1_000, 10_000, 100_000, 1_000_000):
        decision = analysis.decision(fleet, good)
        sweep.append((fleet, decision.replace_usd, decision.own_usd, decision.should_own))
    return tipping_good, tipping_bad, sweep


def test_e06_tipping_point(benchmark):
    tipping_good, tipping_bad, sweep = benchmark(compute_tipping)
    holds = 10 < tipping_good < 100_000 and tipping_bad > 2_000_000
    rows = [
        PaperComparison(
            experiment="E6",
            claim="a tipping point always exists where owning beats replacing",
            paper_value="qualitative: tipping point exists, enabled by swappable infra",
            measured_value=(
                f"tipping at {tipping_good:,} devices (takeaway-compliant); "
                f"never within 2M devices under vendor lock-in"
            ),
            holds=holds,
        ),
    ]
    for fleet, replace, own, should_own in sweep:
        rows.append(
            f"fleet {fleet:>9,}: replace ${replace/1e6:8.2f}M vs own "
            f"${own/1e6:8.2f}M -> {'OWN' if should_own else 'replace'}"
        )
    emit(rows)
    assert holds
    # Monotone: beyond the tipping point owning keeps winning.
    owns = [s[3] for s in sweep]
    first_own = owns.index(True)
    assert all(owns[first_own:])
