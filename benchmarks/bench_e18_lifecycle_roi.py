"""E18 — §1: functional obsolescence "maximizes device utility and
return on investment over time."

Lifecycle cost per sensing point over a 50-year horizon: cheap battery
devices replaced on failure vs harvesting devices at a unit-price
premium.  The breakeven premium — how much *more* a planner can pay per
harvesting unit and still come out ahead — is the ROI argument in one
number, and it grows with the horizon.
"""

from repro.analysis.report import PaperComparison
from repro.econ import DeviceStrategy, breakeven_premium, strategy_cost
from repro.reliability import (
    battery_powered_device,
    energy_harvesting_device,
    mean_lifetime_years,
)

from conftest import emit


def compute_roi():
    battery_years = mean_lifetime_years(battery_powered_device())
    harvest_years = mean_lifetime_years(energy_harvesting_device())
    battery = DeviceStrategy("battery", unit_cost_usd=150.0,
                             mean_lifetime_years=battery_years)
    harvesting_2x = DeviceStrategy("harvesting@2x", unit_cost_usd=300.0,
                                   mean_lifetime_years=harvest_years)
    rows = []
    for horizon in (10.0, 25.0, 50.0):
        rows.append(
            (
                horizon,
                strategy_cost(battery, horizon),
                strategy_cost(harvesting_2x, horizon),
                breakeven_premium(battery, harvest_years, horizon),
            )
        )
    return battery_years, harvest_years, rows


def test_e18_lifecycle_roi(benchmark):
    battery_years, harvest_years, rows = benchmark(compute_roi)
    fifty = rows[-1]
    holds = fifty[2].total_usd < fifty[1].total_usd and fifty[3] > 2.0
    out = [
        PaperComparison(
            experiment="E18",
            claim="long-lived devices maximize utility and ROI over time",
            paper_value="qualitative (§1 functional-obsolescence argument)",
            measured_value=(
                f"at 50 yr, 2x-priced harvesting costs "
                f"${fifty[2].usd_per_sensing_year:.0f}/yr vs battery "
                f"${fifty[1].usd_per_sensing_year:.0f}/yr; breakeven premium "
                f"{fifty[3]:.1f}x"
            ),
            holds=holds,
        ),
        f"hardware lifetimes: battery {battery_years:.1f} yr, "
        f"harvesting {harvest_years:.1f} yr",
    ]
    for horizon, battery_cost, harvest_cost, premium in rows:
        out.append(
            f"horizon {horizon:4.0f} yr: battery "
            f"${battery_cost.usd_per_sensing_year:6.1f}/yr "
            f"({battery_cost.expected_replacements:.1f} swaps) vs harvesting@2x "
            f"${harvest_cost.usd_per_sensing_year:6.1f}/yr "
            f"({harvest_cost.expected_replacements:.1f} swaps); "
            f"breakeven premium {premium:.1f}x"
        )
    emit(out)
    assert holds
    premiums = [r[3] for r in rows]
    assert premiums == sorted(premiums)  # ROI case strengthens with time
