#!/usr/bin/env python3
"""Backhaul economics: fiber vs cellular, tipping points, and prepaid data.

Reproduces the paper's §3.3/§3.4/§4.4 economic arguments as three
tables: the 50-year TCO race (with the trench-sharing lever), the
vertical-integration tipping point under compliant vs locked-in
policies, and the data-credit arithmetic for prepaid transport.

Run:  python examples/backhaul_economics.py
"""

from repro.core.policy import DeploymentPolicy
from repro.econ import (
    CellularCosts,
    FiberCosts,
    TippingPointAnalysis,
    cost_per_device_per_year,
    crossover_year,
    fleet_prepay_usd,
    paper_prepay_quote,
    tco_series,
)


def tco_table() -> None:
    gateways = 100
    print(f"cumulative backhaul TCO for {gateways} gateways ($M)")
    print(f"{'year':>6} {'fiber':>8} {'cellular':>9}  leader")
    for point in tco_series(gateways, horizon_years=50.0, step_years=10.0):
        leader = "fiber" if point.fiber_wins else "cellular"
        print(f"{point.years:>6.0f} {point.fiber_usd/1e6:>8.2f} "
              f"{point.cellular_usd/1e6:>9.2f}  {leader}")
    print()
    scenarios = {
        "coordinated digs (default)": FiberCosts(),
        "full greenfield trench": FiberCosts(km_per_gateway=0.8, trench_share=1.0),
        "aggressive sharing (25%)": FiberCosts(trench_share=0.25),
    }
    for label, fiber in scenarios.items():
        year = crossover_year(gateways, fiber=fiber)
        rendered = "never" if year == float("inf") else f"year {year:.1f}"
        print(f"  crossover [{label}]: {rendered}")


def tipping_table() -> None:
    print()
    print("the §3.4 tipping point: replace the fleet vs own the infrastructure")
    analysis = TippingPointAnalysis()
    policies = {
        "takeaway-compliant": DeploymentPolicy.takeaway_compliant(),
        "vendor-locked": DeploymentPolicy.worst_practice(),
    }
    for label, policy in policies.items():
        tipping = analysis.tipping_point(policy)
        if tipping > 2_000_000:
            print(f"  {label:<20} owning never wins (devices cannot re-home)")
        else:
            print(f"  {label:<20} owning wins from {tipping:,} devices")
    print()
    print(f"{'fleet':>10} {'replace $M':>11} {'own $M':>8}  decision")
    policy = DeploymentPolicy.takeaway_compliant()
    for fleet in (1_000, 10_000, 100_000, 1_000_000):
        decision = analysis.decision(fleet, policy)
        print(f"{fleet:>10,} {decision.replace_usd/1e6:>11.2f} "
              f"{decision.own_usd/1e6:>8.2f}  "
              f"{'OWN' if decision.should_own else 'replace'}")


def credits_table() -> None:
    print()
    print("prepaid transport (§4.4)")
    quote = paper_prepay_quote()
    print(f"  one device, hourly 24-byte packets, 50 years: "
          f"{quote.credits_needed:,} credits needed")
    print(f"  provisioned: {quote.credits_provisioned:,} credits "
          f"= ${quote.cost_usd:.2f} (margin {quote.margin_fraction:.0%})")
    print(f"  steady state: ${cost_per_device_per_year():.3f} per device-year")
    for fleet in (100, 10_000, 1_000_000):
        print(f"  prepay a {fleet:>9,}-device fleet for 50 years: "
              f"${fleet_prepay_usd(fleet):>12,.0f}")


def main() -> None:
    tco_table()
    tipping_table()
    credits_table()


if __name__ == "__main__":
    main()
