#!/usr/bin/env python3
"""City-scale rollout planning: instrumenting Los Angeles.

Takes the paper's §1 asset inventory (320k poles, 61,315 intersections,
210k streetlights), builds geographic-batch rollout plans riding each
asset's own maintenance cycle, and contrasts the Ship-of-Theseus
pipelined fleet against a one-shot en-masse deployment over a century.

Run:  python examples/city_scale_rollout.py
"""

import numpy as np

from repro.city import city_rollout, los_angeles
from repro.core import en_masse_fleet, summarize, units
from repro.econ import CostParameters
from repro.reliability import battery_powered_device, energy_harvesting_device


def main() -> None:
    city = los_angeles()
    print(f"{city.name}: {city.total_assets():,} instrumentable assets")
    print(f"one-shot fleet replacement: "
          f"{city.replacement_person_hours():,.0f} person-hours "
          f"(the paper's ~200,000-hour figure)")
    print()

    rng = np.random.default_rng(7)
    costs = CostParameters()
    horizon = units.years(100.0)
    model = energy_harvesting_device()
    sampler = lambda n: model.sample(rng, n)

    print(f"{'asset class':<16} {'fleet':>9} {'cycle':>6} {'touch/yr':>9} "
          f"{'annual $M':>10} {'100-yr system'}")
    for plan in city_rollout(city, instrumented_fraction=0.05, batches=24):
        # 5 % instrumentation keeps the demo fast; scale linearly.
        timeline = plan.timeline(sampler, horizon)
        row = summarize(plan.asset.name, timeline, horizon, step=units.years(1.0))
        survives = "outlives study" if row.system_lifetime_years >= 100.0 else (
            f"dies at {row.system_lifetime_years:.0f} yr"
        )
        print(
            f"{plan.asset.name:<16} {plan.fleet_size:>9,} "
            f"{plan.project_cycle_years:>5.0f}y {plan.annual_touch_rate():>9,.0f} "
            f"{plan.annual_cost_usd(costs)/1e6:>10.2f} {survives} "
            f"(coverage {row.mean_coverage:.0%})"
        )

    print()
    print("counterfactual: deploy the same sensors once and walk away")
    for label, model in (
        ("battery devices", battery_powered_device()),
        ("harvesting devices", energy_harvesting_device()),
    ):
        sampler = lambda n, m=model: m.sample(rng, n)
        fleet = en_masse_fleet(3000, sampler)
        row = summarize(label, fleet, horizon, step=units.years(1.0))
        print(f"  en-masse {label:<20} system dies at "
              f"{row.system_lifetime_years:5.1f} yr")


if __name__ == "__main__":
    main()
