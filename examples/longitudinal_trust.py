#!/usr/bin/env python3
"""Longitudinal trust: how long can you believe an immutable device?

§4.1's transmit-only devices can never rotate keys or upgrade signing
schemes.  This example commissions a fleet under each factory scheme,
ages it 50 years against cryptoperiods / scheme breaks / key leakage,
prints the backend's trust census per decade, and compares each trust
horizon with the hardware survival from the reliability models.

Run:  python examples/longitudinal_trust.py
"""

import numpy as np

from repro.core import units
from repro.net import SCHEMES, TrustLevel, TrustPolicy, TrustRegistry, trust_horizon
from repro.reliability import energy_harvesting_device, mean_lifetime_years


def main() -> None:
    fleet = 300
    policy = TrustPolicy(
        degraded_acceptance_years=15.0, key_leak_rate_per_year=0.002
    )
    hardware_years = mean_lifetime_years(energy_harvesting_device())

    print(f"fleet of {fleet} immutable transmit-only devices per scheme;")
    print(f"harvesting hardware mean lifetime: {hardware_years:.0f} years")
    print()

    for scheme_name in sorted(SCHEMES):
        registry = TrustRegistry(policy=policy, rng=np.random.default_rng(5))
        for index in range(fleet):
            registry.commission(f"{scheme_name}-{index}", scheme_name)
        horizon = trust_horizon(registry, horizon=units.years(60.0))
        print(f"{scheme_name} (cryptoperiod "
              f"{SCHEMES[scheme_name].cryptoperiod_years:.0f} yr):")
        print(f"  majority-trust horizon: {units.as_years(horizon):.0f} years")
        for decade in range(0, 6):
            t = units.years(10.0 * decade)
            census = registry.census(t)
            blocked = len(registry.blocklist_at(t))
            print(
                f"  year {10 * decade:>2}: "
                f"trusted {census[TrustLevel.TRUSTED]:>4} / "
                f"degraded {census[TrustLevel.DEGRADED]:>4} / "
                f"untrusted {census[TrustLevel.UNTRUSTED]:>4}"
                f"   (gateway blocklist: {blocked})"
            )
        print()

    print("takeaway: for batteryless hardware the *trust* lifetime, not the")
    print("hardware lifetime, is the binding constraint — the §4.1 trade-off.")


if __name__ == "__main__":
    main()
