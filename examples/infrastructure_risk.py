#!/usr/bin/env python3
"""Structural risk audit of a running deployment.

Builds a two-arm deployment (owned 802.15.4 + Helium LoRa), runs it
three years, then audits the live topology the way a municipal operator
should: single points of failure per tier, device redundancy histogram,
and the correlated-failure exposure of the third-party backhaul's AS
concentration (§4.3's "future work" analysis).

Run:  python examples/infrastructure_risk.py
"""

from repro.analysis import (
    redundancy_histogram,
    single_points_of_failure,
    worst_domains,
)
from repro.core import Simulation, units
from repro.core.hierarchy import Hierarchy
from repro.experiment import FiftyYearConfig, FiftyYearExperiment


def main() -> None:
    config = FiftyYearConfig(
        seed=11,
        horizon=units.years(3.0),
        report_interval=units.days(1.0),
        n_154_devices=6,
        n_lora_devices=8,
        n_owned_gateways=2,
        initial_hotspots=30,
    )
    experiment = FiftyYearExperiment(config)
    experiment.build()
    experiment.sim.run_until(config.horizon)

    hierarchy = Hierarchy()
    hierarchy.add(experiment.endpoint)
    hierarchy.add(experiment.campus)
    hierarchy.extend(experiment.helium.backhauls.values())
    hierarchy.extend(experiment.owned_gateways)
    hierarchy.extend(experiment.helium.hotspots)
    hierarchy.extend(experiment.devices_154)
    hierarchy.extend(experiment.devices_lora)

    print("deployment state after 3 years:")
    print(hierarchy.describe())
    print()

    print("single points of failure (largest blast radius first):")
    for spof in single_points_of_failure(hierarchy)[:8]:
        print(f"  {spof.tier:<9} {spof.name:<22} strands "
              f"{spof.stranded_devices} device(s)")
    print()

    print("device redundancy (live upstream gateways per device):")
    for paths, count in sorted(redundancy_histogram(hierarchy).items()):
        note = "  <- violates the instance-independence takeaway" if paths <= 1 else ""
        print(f"  {paths} live path(s): {count} devices{note}")
    print()

    print("correlated-failure exposure by backhaul AS (top 5):")
    for result in worst_domains(hierarchy, "asn", top=5):
        print(f"  {result.domain:<14} {result.members:>3} gateways; outage "
              f"loses {result.devices_lost} devices "
              f"({result.loss_fraction:.0%} of reachable)")


if __name__ == "__main__":
    main()
