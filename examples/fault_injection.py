#!/usr/bin/env python3
"""Declarative chaos: fault plans, deterministic wounding, auditing.

Walks the full `repro.faults` surface on the as-designed fifty-year
scenario, compressed to a ten-year horizon:

1. build a fault plan in code (kill, degrade, flap, drain, no-show);
2. run the wounded scenario with the invariant auditor attached;
3. show the executed fault stream (what actually fired, when, to whom);
4. prove the determinism contract: the same plan + seed reproduces the
   identical fault stream, and installing the plan as two disjoint
   halves in either order changes nothing;
5. round-trip the plan through the version-1 JSON format — the same
   file `python -m repro mc as-designed --faults plan.json` accepts.

Run:  python examples/fault_injection.py
"""

import json
from dataclasses import replace

from repro.core import units
from repro.experiment import SCENARIOS, FiftyYearExperiment
from repro.faults import (
    DegradeFault,
    FaultPlan,
    FlapFault,
    InvariantAuditor,
    KillFault,
    MaintenanceNoShow,
    Selector,
    WalletDrain,
)

HORIZON_YEARS = 10.0


def chaos_decade() -> FaultPlan:
    """A decade of bad luck for the as-designed deployment."""
    return FaultPlan(
        name="chaos-decade",
        specs=(
            # Year 1: the campus backhaul goes dark for a month.
            DegradeFault(
                at=units.years(1.0),
                select=Selector.by_name("campus-net"),
                duration=units.days(30.0),
            ),
            # Year 2: lightning takes one random 802.15.4 gateway.
            KillFault(
                at=units.years(2.0),
                select=Selector.k_random(
                    1, tier="gateway", where=(("technology", "802.15.4"),)
                ),
                reason="lightning-strike",
            ),
            # Year 4: the prepaid wallet loses half its balance.
            WalletDrain(at=units.years(4.0), fraction=0.5),
            # Year 5: flaky cloud peering — 3 days down, 25 up, 4 times.
            FlapFault(
                at=units.years(5.0),
                select=Selector.by_tier("cloud"),
                down=units.days(3.0),
                up=units.days(25.0),
                cycles=4,
            ),
            # Year 7: nobody answers the maintenance pager for 6 months.
            MaintenanceNoShow(
                at=units.years(7.0), duration=units.days(182.0)
            ),
        ),
    )


def run_wounded(seed, plans):
    """Run as-designed under the given plans; return (result, controller,
    auditor)."""
    config = SCENARIOS["as-designed"](seed)
    config = replace(
        config,
        horizon=units.years(HORIZON_YEARS),
        report_interval=units.days(2.0),
    )
    experiment = FiftyYearExperiment(config)
    for plan in plans:
        experiment.sim.install_faults(plan)
    auditor = InvariantAuditor(experiment.sim, strict=True).install()
    result = experiment.run()
    auditor.check_now()
    return result, experiment.sim.fault_controller, auditor


def main() -> None:
    plan = chaos_decade()

    print(f"=== plan {plan.name!r}: {len(plan)} specs ===")
    for spec in plan.specs:
        print(f"  {spec.key()}")

    result, controller, auditor = run_wounded(2021, [plan])
    print()
    print(f"=== executed fault stream ({controller.fired} actions) ===")
    for when, key, action, targets in controller.events:
        names = ", ".join(targets) if targets else "-"
        print(f"  y{units.as_years(when):5.2f}  {action:<14} {names}")

    print()
    print("=== wounded run ===")
    print(f"overall weekly uptime : {result.overall.uptime:.4f}")
    print(f"longest gap (weeks)   : {result.overall.longest_gap_weeks}")
    print(f"invariant audits      : {auditor.audits_run}, "
          f"violations: {len(auditor.violations)}")

    # Determinism: same plan + seed => identical executed fault stream.
    _, again, _ = run_wounded(2021, [plan])
    assert again.stream_tuple() == controller.stream_tuple()
    print("replay               : fault stream bit-identical ✓")

    # Commutativity: two disjoint halves, either order, same stream.
    first = FaultPlan(name="first", specs=plan.specs[:2])
    second = FaultPlan(name="second", specs=plan.specs[2:])
    _, ab, _ = run_wounded(2021, [first, second])
    _, ba, _ = run_wounded(2021, [second, first])
    assert sorted(ab.stream_tuple()) == sorted(ba.stream_tuple())
    print("composition          : install order irrelevant ✓")

    # The JSON round trip the CLI consumes (--faults plan.json).
    reloaded = FaultPlan.from_dict(json.loads(plan.to_json()))
    assert reloaded == plan
    print("json round-trip      : exact ✓")
    print()
    print("same plan, from the shell:")
    print("  python -m repro mc as-designed --runs 4 --years 10 "
          "--faults examples/plans/ten_fault_chaos.json --audit --per-run")


if __name__ == "__main__":
    main()
