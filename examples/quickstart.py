#!/usr/bin/env python3
"""Quickstart: a city block of energy-harvesting sensors, end to end.

Builds the smallest interesting deployment — one cloud endpoint, one
campus backhaul, two owned 802.15.4 gateways, and a dozen transmit-only
sensors powered by cathodic-protection harvesters — runs five simulated
years, and prints the paper's weekly-uptime metric plus the Figure 1
hierarchy view.

Run:  python examples/quickstart.py
"""

from repro.core import Simulation, units
from repro.energy import Capacitor, CathodicProtectionSource, HarvestingSystem
from repro.net import (
    CampusBackhaul,
    CloudEndpoint,
    EdgeDevice,
    Network,
    OwnedGateway,
    Position,
    associate_by_coverage,
    grid_positions,
)
from repro.radio import ieee802154


def main() -> None:
    sim = Simulation(seed=42)

    # The hierarchy, top-down: cloud <- backhaul <- gateways <- devices.
    cloud = CloudEndpoint(sim, name="centurysensors.com")
    campus = CampusBackhaul(sim, name="campus-net")
    campus.add_dependency(cloud)

    gateways = []
    for position in (Position(30.0, 30.0), Position(100.0, 100.0)):
        gateway = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(tx_power_dbm=4.0),
            path_loss=ieee802154.urban_path_loss(),
            position=position,
        )
        gateway.add_dependency(campus)
        gateways.append(gateway)

    devices = []
    for position in grid_positions(12, spacing_m=40.0):
        device = EdgeDevice(
            sim,
            technology="802.15.4",
            spec=ieee802154.default_spec(),
            airtime_s=ieee802154.airtime_s(24),
            report_interval=units.hours(6.0),
            position=position,
            power=HarvestingSystem(
                source=CathodicProtectionSource(),
                storage=Capacitor(capacity_j=3.0, stored_j=1.5),
            ),
        )
        devices.append(device)

    attached = associate_by_coverage(devices, gateways, max_gateways_per_device=2)
    network = Network(
        sim=sim, endpoint=cloud, backhauls=[campus], gateways=gateways, devices=devices
    )
    network.deploy_all()

    horizon = units.years(5.0)
    print(f"running {units.format_duration(horizon)} of simulated time...")
    sim.run_until(horizon)

    report = cloud.weekly_uptime(0.0, horizon)
    summary = network.delivery_summary()
    print()
    print(f"weekly uptime        : {report.uptime:.4f} over {report.weeks} weeks")
    print(f"longest silent gap   : {report.longest_gap_weeks} weeks")
    print(f"packets delivered    : {summary.delivered:,} / {summary.attempts:,} "
          f"({summary.delivery_rate:.1%})")
    print(f"loss breakdown       : radio={summary.radio_lost:,} "
          f"no-gateway={summary.no_gateway:,} energy={summary.energy_denied:,} "
          f"gateway-drop={summary.dropped_at_gateway:,}")
    uncovered = sum(1 for count in attached.values() if count == 0)
    print(f"coverage             : {len(devices) - uncovered}/{len(devices)} "
          f"devices in gateway range")
    print()
    print("deployment hierarchy (Figure 1):")
    print(network.hierarchy.describe())


if __name__ == "__main__":
    main()
