#!/usr/bin/env python3
"""Energy viability: which harvesters sustain which reporting schedules?

For each ambient source (cathodic-protection "ambient battery", solar,
vibration, thermal) and each radio (802.15.4, LoRa SF7/SF10/SF12),
computes the energy budget: mean harvest vs demand at hourly reporting,
the fastest sustainable interval, and the storage needed to ride out a
three-day harvest outage.  This is the §4.1 design-point exploration.

Run:  python examples/energy_viability.py
"""

from repro.core import units
from repro.energy import (
    TaskProfile,
    budget_report,
    source_by_name,
    storage_for_outage,
)
from repro.radio import LoRaParameters, ieee802154

RADIOS = {
    "802.15.4": ieee802154.airtime_s(24),
    "lora-sf7": LoRaParameters(spreading_factor=7).airtime_s(24),
    "lora-sf10": LoRaParameters(spreading_factor=10).airtime_s(24),
    "lora-sf12": LoRaParameters(spreading_factor=12).airtime_s(24),
}

SOURCES = ("cathodic", "solar", "vibration", "thermal")


def main() -> None:
    profile = TaskProfile()
    print(f"{'source':<10} {'radio':<10} {'harvest µW':>11} {'demand µW':>10} "
          f"{'min interval':>13} {'3-day store':>12}  hourly?")
    for source_name in SOURCES:
        source = source_by_name(source_name)
        for radio_name, airtime in RADIOS.items():
            report = budget_report(source_name, source, profile, airtime)
            interval = report.sustainable_interval_s
            rendered = (
                "infeasible" if interval == float("inf")
                else units.format_duration(interval)
            )
            storage = storage_for_outage(profile, units.HOUR, airtime)
            print(
                f"{source_name:<10} {radio_name:<10} {report.harvest_uw:>11.1f} "
                f"{report.demand_uw:>10.2f} {rendered:>13} {storage:>10.2f} J"
                f"  {'yes' if report.neutral_at_hourly else 'NO'}"
            )
        print()

    print("takeaway: every source sustains the paper's hourly schedule with")
    print("margin; the binding constraints are radio airtime (SF12 costs")
    print("~100x an 802.15.4 frame) and storage sizing for harvest gaps.")


if __name__ == "__main__":
    main()
