#!/usr/bin/env python3
"""The paper's §4 experiment: owned 802.15.4 arm + third-party Helium arm.

Runs the experiment as designed — energy-harvesting transmit-only
devices that are never touched, maintained owned gateways on a campus
backhaul, a churning third-party LoRa hotspot population paid from a
prepaid data-credit wallet, and a public endpoint evaluated on the
weekly-uptime metric — then prints the §4.5 "living diary".

With ``runs > 1`` the single run becomes a Monte-Carlo study on
``repro.runtime``: independent seeds derived through the RNG fork
lineage, fanned across worker processes, aggregated into the uptime
distribution.  The statistics are identical at any worker count.

Run:  python examples/fifty_year_experiment.py [horizon-years] [runs] [workers]
"""

import os
import sys

from repro.core import units
from repro.experiment import FiftyYearConfig, FiftyYearExperiment
from repro.runtime import MonteCarloRunner, ScenarioTask


def single_run(horizon_years: float) -> None:
    config = FiftyYearConfig(
        seed=2021,
        horizon=units.years(horizon_years),
        report_interval=units.days(1.0),  # weekly metric is cadence-blind
        renewal_miss_probability=0.1,
    )
    print(f"commencing the experiment ({horizon_years:.0f} simulated years)...")
    experiment = FiftyYearExperiment(config)
    result = experiment.run()

    print()
    print("=" * 64)
    print("EXPECTED OUTCOMES (§4.5)")
    print("=" * 64)
    for line in result.summary_lines():
        print("  " + line)

    wallet = result.wallet
    print()
    print(f"  wallet runway at daily cadence: "
          f"{wallet.years_remaining(config.report_interval):,.0f} more years")

    print()
    print(result.diary.render())


def monte_carlo_study(horizon_years: float, runs: int, workers: int) -> None:
    print(
        f"Monte-Carlo study: {runs} seeds x {horizon_years:.0f} years "
        f"on {workers} worker(s)..."
    )
    task = ScenarioTask(
        scenario="as-designed",
        horizon=units.years(horizon_years),
        report_interval=units.days(1.0),
    )
    study = MonteCarloRunner(
        task, runs=runs, base_seed=2021, workers=workers
    ).run()

    print()
    print("=" * 64)
    print("UPTIME DISTRIBUTION ACROSS SEEDS")
    print("=" * 64)
    for line in study.summary_lines():
        print("  " + line)
    print()
    print(f"  {'run':>4} {'uptime':>8} {'events':>10} {'peak-q':>7} {'secs':>7}")
    for run in study.runs:
        print(
            f"  {run.index:>4} {run.sample:>8.4f} {run.events_executed:>10,} "
            f"{run.peak_pending_events:>7,} {run.wall_clock_s:>7.2f}"
        )


def main() -> None:
    horizon_years = float(sys.argv[1]) if len(sys.argv) > 1 else 25.0
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else (os.cpu_count() or 1)
    if runs > 1:
        monte_carlo_study(horizon_years, runs, workers)
    else:
        single_run(horizon_years)


if __name__ == "__main__":
    main()
