#!/usr/bin/env python3
"""The paper's §4 experiment: owned 802.15.4 arm + third-party Helium arm.

Runs the experiment as designed — energy-harvesting transmit-only
devices that are never touched, maintained owned gateways on a campus
backhaul, a churning third-party LoRa hotspot population paid from a
prepaid data-credit wallet, and a public endpoint evaluated on the
weekly-uptime metric — then prints the §4.5 "living diary".

Run:  python examples/fifty_year_experiment.py [horizon-years]
"""

import sys
from dataclasses import replace

from repro.core import units
from repro.experiment import FiftyYearConfig, FiftyYearExperiment


def main() -> None:
    horizon_years = float(sys.argv[1]) if len(sys.argv) > 1 else 25.0
    config = FiftyYearConfig(
        seed=2021,
        horizon=units.years(horizon_years),
        report_interval=units.days(1.0),  # weekly metric is cadence-blind
        renewal_miss_probability=0.1,
    )
    print(f"commencing the experiment ({horizon_years:.0f} simulated years)...")
    experiment = FiftyYearExperiment(config)
    result = experiment.run()

    print()
    print("=" * 64)
    print("EXPECTED OUTCOMES (§4.5)")
    print("=" * 64)
    for line in result.summary_lines():
        print("  " + line)

    wallet = result.wallet
    print()
    print(f"  wallet runway at daily cadence: "
          f"{wallet.years_remaining(config.report_interval):,.0f} more years")

    print()
    print(result.diary.render())


if __name__ == "__main__":
    main()
