"""IEEE 802.15.4 (2.4 GHz O-QPSK) PHY/MAC model.

The paper's "owned infrastructure" radio.  Provides frame-airtime
arithmetic from the standard's PPDU structure, a default
:class:`~repro.radio.link.RadioSpec`, and typical urban coverage
parameters.  250 kbps, 127-byte maximum PSDU.
"""

from __future__ import annotations

from dataclasses import dataclass

from .link import PathLossModel, RadioSpec

#: PHY constants for 2.4 GHz O-QPSK (IEEE 802.15.4-2015).
BITRATE_BPS: float = 250_000.0
PREAMBLE_BYTES: int = 4
SFD_BYTES: int = 1
PHR_BYTES: int = 1
MAX_PSDU_BYTES: int = 127
MAC_OVERHEAD_BYTES: int = 11  # FCF + seq + short addressing
FCS_BYTES: int = 2


def frame_bytes(payload_bytes: int) -> int:
    """Total over-the-air bytes for a data frame carrying ``payload_bytes``.

    Raises if the MAC payload would exceed the 127-byte PSDU.
    """
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
    psdu = MAC_OVERHEAD_BYTES + payload_bytes + FCS_BYTES
    if psdu > MAX_PSDU_BYTES:
        raise ValueError(
            f"payload of {payload_bytes} B exceeds 802.15.4 PSDU "
            f"({psdu} > {MAX_PSDU_BYTES})"
        )
    return PREAMBLE_BYTES + SFD_BYTES + PHR_BYTES + psdu


def airtime_s(payload_bytes: int) -> float:
    """Transmission time for one frame.

    >>> round(airtime_s(24) * 1e3, 3)   # 24-byte payload
    1.376
    """
    return frame_bytes(payload_bytes) * 8.0 / BITRATE_BPS


def default_spec(tx_power_dbm: float = 0.0) -> RadioSpec:
    """A typical 802.15.4 SoC: 0 dBm out, -100 dBm sensitivity."""
    return RadioSpec(
        name="802.15.4",
        frequency_hz=2.45e9,
        tx_power_dbm=tx_power_dbm,
        sensitivity_dbm=-100.0,
        bitrate_bps=BITRATE_BPS,
        per_slope_db=1.2,
        max_payload_bytes=MAX_PSDU_BYTES - MAC_OVERHEAD_BYTES - FCS_BYTES,
    )


def urban_path_loss(embedded: bool = False) -> PathLossModel:
    """Urban propagation at 2.4 GHz; embedding in concrete costs ~12 dB."""
    return PathLossModel(
        exponent=3.1,
        shadowing_sigma_db=7.0,
        penetration_db=12.0 if embedded else 0.0,
    )


@dataclass(frozen=True)
class CsmaParameters:
    """Unslotted CSMA-CA backoff parameters (transmit-only nodes still
    clear-channel assess before blurting)."""

    min_be: int = 3
    max_be: int = 5
    max_backoffs: int = 4
    unit_backoff_s: float = 20.0 * 16.0 / 1e6  # 20 symbols @ 16 µs

    def mean_backoff_s(self) -> float:
        """Expected total backoff before first transmission attempt."""
        # Mean of uniform(0, 2^BE - 1) unit backoffs at the initial BE.
        return (2 ** self.min_be - 1) / 2.0 * self.unit_backoff_s
