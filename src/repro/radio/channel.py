"""Shared-channel contention for transmit-only fleets.

Figure 1 says a gateway "may support thousands of devices" — but
transmit-only sensors cannot listen-before-talk their way around each
other at scale, so the shared channel itself caps the fan-out.  We model
the classic unslotted-ALOHA regime: a frame survives if no other frame
starts within its ±airtime vulnerability window.

This gives the library a principled answer to "how many devices per
gateway?" as a function of airtime and reporting rate — the capacity
side of the deployment-hierarchy argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core import units


@dataclass(frozen=True)
class ChannelLoad:
    """Aggregate offered load on one radio channel."""

    devices: int
    airtime_s: float
    interval_s: float

    def __post_init__(self) -> None:
        if self.devices < 0:
            raise ValueError("devices must be non-negative")
        if self.airtime_s <= 0.0:
            raise ValueError("airtime_s must be positive")
        if self.interval_s <= 0.0:
            raise ValueError("interval_s must be positive")

    @property
    def offered_erlangs(self) -> float:
        """Normalized offered traffic G (frame-times per frame-time)."""
        return self.devices * self.airtime_s / self.interval_s

    def delivery_probability(self) -> float:
        """Per-frame survival under unslotted ALOHA: ``exp(-2G)``.

        Uncoordinated transmit-only senders are a Poisson arrival
        process at scale; a frame collides if any other frame starts in
        its 2x-airtime vulnerability window.

        >>> ChannelLoad(1, 0.001, 3600.0).delivery_probability() > 0.999
        True
        """
        return math.exp(-2.0 * self.offered_erlangs)

    def throughput_erlangs(self) -> float:
        """Successful traffic S = G exp(-2G); peaks at 1/(2e) ~ 18.4 %."""
        g = self.offered_erlangs
        return g * math.exp(-2.0 * g)


def max_devices_for_reliability(
    airtime_s: float,
    interval_s: float,
    min_delivery: float = 0.9,
) -> int:
    """Largest fleet one channel carries at ``min_delivery`` per-frame.

    Inverts ``exp(-2G) >= min_delivery``:  G <= -ln(p)/2.

    >>> max_devices_for_reliability(0.0014, 3600.0) > 100_000
    True
    """
    if not 0.0 < min_delivery < 1.0:
        raise ValueError("min_delivery must be in (0, 1)")
    if airtime_s <= 0.0 or interval_s <= 0.0:
        raise ValueError("airtime_s and interval_s must be positive")
    max_g = -math.log(min_delivery) / 2.0
    return int(max_g * interval_s / airtime_s)


def capacity_table(
    airtimes: dict,
    interval_s: float = units.HOUR,
    min_delivery: float = 0.9,
) -> dict:
    """``{radio_name: max_devices}`` for a reporting schedule.

    The fan-out reality check behind Figure 1: slow PHYs (LoRa SF12)
    carry orders of magnitude fewer hourly reporters than 802.15.4.
    """
    return {
        name: max_devices_for_reliability(airtime, interval_s, min_delivery)
        for name, airtime in airtimes.items()
    }


@dataclass(frozen=True)
class CongestionPoint:
    """One row of a density sweep."""

    devices: int
    offered_erlangs: float
    delivery_probability: float
    effective_reports_per_hour: float


def density_sweep(
    airtime_s: float,
    interval_s: float,
    device_counts,
) -> list:
    """Delivery vs density — where the shared channel saturates."""
    rows = []
    for devices in device_counts:
        load = ChannelLoad(devices, airtime_s, interval_s)
        p = load.delivery_probability()
        per_hour = devices * (units.HOUR / interval_s) * p
        rows.append(
            CongestionPoint(
                devices=devices,
                offered_erlangs=load.offered_erlangs,
                delivery_probability=p,
                effective_reports_per_hour=per_hour,
            )
        )
    return rows
