"""Wireless link model: path loss, shadowing, and packet error rate.

A log-distance path-loss model with log-normal shadowing feeds an SNR
estimate; packet success is a sigmoid around the PHY's sensitivity — the
standard abstraction for network-scale studies where bit-level fidelity
adds nothing.  Radios plug in via :class:`RadioSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RadioSpec:
    """PHY parameters needed by the link model.

    ``sensitivity_dbm`` is the receive power at which PER is 50 %;
    ``per_slope_db`` controls how fast success saturates around it.
    """

    name: str
    frequency_hz: float
    tx_power_dbm: float
    sensitivity_dbm: float
    bitrate_bps: float
    per_slope_db: float = 1.5
    max_payload_bytes: int = 127

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ValueError("frequency_hz must be positive")
        if self.bitrate_bps <= 0.0:
            raise ValueError("bitrate_bps must be positive")
        if self.per_slope_db <= 0.0:
            raise ValueError("per_slope_db must be positive")


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with log-normal shadowing.

    ``exponent`` 2.0 is free space; urban street canyons run 2.7–3.5;
    through-concrete embedments add ``penetration_db``.
    """

    exponent: float = 3.0
    reference_distance_m: float = 1.0
    shadowing_sigma_db: float = 6.0
    penetration_db: float = 0.0

    def __post_init__(self) -> None:
        if self.exponent < 1.0:
            raise ValueError(f"exponent must be >= 1, got {self.exponent}")
        if self.reference_distance_m <= 0.0:
            raise ValueError("reference_distance_m must be positive")
        if self.shadowing_sigma_db < 0.0:
            raise ValueError("shadowing_sigma_db must be non-negative")

    def reference_loss_db(self, frequency_hz: float) -> float:
        """Free-space loss at the reference distance (Friis)."""
        wavelength = 299_792_458.0 / frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * self.reference_distance_m / wavelength)

    def mean_loss_db(self, distance_m: float, frequency_hz: float) -> float:
        """Deterministic component of the path loss at ``distance_m``."""
        if distance_m <= 0.0:
            raise ValueError(f"distance_m must be positive, got {distance_m}")
        distance_m = max(distance_m, self.reference_distance_m)
        return (
            self.reference_loss_db(frequency_hz)
            + 10.0 * self.exponent * math.log10(distance_m / self.reference_distance_m)
            + self.penetration_db
        )

    def sample_loss_db(
        self, distance_m: float, frequency_hz: float, rng: np.random.Generator
    ) -> float:
        """Path loss including a shadowing draw."""
        shadow = self.shadowing_sigma_db * rng.standard_normal()
        return self.mean_loss_db(distance_m, frequency_hz) + shadow


def received_power_dbm(
    spec: RadioSpec, loss_db: float
) -> float:
    """Receive power for a transmission through ``loss_db`` of path."""
    return spec.tx_power_dbm - loss_db


def packet_success_probability(
    spec: RadioSpec, rx_power_dbm: float
) -> float:
    """PER model: logistic in dB around the radio's sensitivity point.

    >>> spec = RadioSpec("x", 915e6, 14.0, -120.0, 1000.0)
    >>> packet_success_probability(spec, -120.0)
    0.5
    """
    margin = rx_power_dbm - spec.sensitivity_dbm
    return 1.0 / (1.0 + math.exp(-margin / spec.per_slope_db))


@dataclass(frozen=True)
class LinkBudget:
    """Summary of one transmitter→receiver link."""

    distance_m: float
    mean_loss_db: float
    rx_power_dbm: float
    margin_db: float
    mean_success: float


def link_budget(
    spec: RadioSpec, model: PathLossModel, distance_m: float
) -> LinkBudget:
    """Deterministic (no-shadowing) link summary for planning."""
    loss = model.mean_loss_db(distance_m, spec.frequency_hz)
    rx = received_power_dbm(spec, loss)
    return LinkBudget(
        distance_m=distance_m,
        mean_loss_db=loss,
        rx_power_dbm=rx,
        margin_db=rx - spec.sensitivity_dbm,
        mean_success=packet_success_probability(spec, rx),
    )


def max_range_m(
    spec: RadioSpec,
    model: PathLossModel,
    required_success: float = 0.9,
    upper_bound_m: float = 100_000.0,
) -> float:
    """Largest distance at which mean packet success >= ``required_success``.

    Bisection on the monotone mean-success-vs-distance curve.
    """
    if not 0.0 < required_success < 1.0:
        raise ValueError("required_success must be in (0, 1)")
    lo, hi = model.reference_distance_m, upper_bound_m
    if link_budget(spec, model, lo).mean_success < required_success:
        return 0.0
    if link_budget(spec, model, hi).mean_success >= required_success:
        return hi
    for _ in range(64):
        mid = math.sqrt(lo * hi)  # geometric mid: loss is log-distance
        if link_budget(spec, model, mid).mean_success >= required_success:
            lo = mid
        else:
            hi = mid
    return lo


def coverage_radius_m(
    spec: RadioSpec, model: PathLossModel, min_success: float
) -> float:
    """Largest distance with mean (no-shadowing) success >= ``min_success``.

    The closed-form inverse of :func:`link_budget`:

        success >= p  <=>  margin >= slope * ln(p / (1 - p))
                      <=>  mean loss <= tx - sensitivity - slope * ln(p/(1-p))

    and the log-distance loss curve inverts exactly.  Returns 0.0 when
    even the reference distance fails.  Unlike :func:`max_range_m`
    (bisection converging from below), this never underestimates, so
    spatial-index range queries can use it as a superset radius and
    re-apply the exact ``link_budget`` threshold to each candidate.
    """
    if not 0.0 < min_success < 1.0:
        raise ValueError("min_success must be in (0, 1)")
    margin_db = spec.per_slope_db * math.log(min_success / (1.0 - min_success))
    max_loss_db = spec.tx_power_dbm - spec.sensitivity_dbm - margin_db
    excess_db = (
        max_loss_db
        - model.reference_loss_db(spec.frequency_hz)
        - model.penetration_db
    )
    if excess_db < 0.0:
        return 0.0
    return model.reference_distance_m * 10.0 ** (excess_db / (10.0 * model.exponent))


def attempt_delivery(
    spec: RadioSpec,
    model: PathLossModel,
    distance_m: float,
    rng: np.random.Generator,
) -> bool:
    """One stochastic packet trial over the link."""
    loss = model.sample_loss_db(distance_m, spec.frequency_hz, rng)
    rx = received_power_dbm(spec, loss)
    return rng.random() < packet_success_probability(spec, rx)
