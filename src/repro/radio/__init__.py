"""Radio substrate: link model, 802.15.4 and LoRa PHYs, packets."""

from . import channel, ieee802154, lora
from .channel import (
    ChannelLoad,
    CongestionPoint,
    capacity_table,
    density_sweep,
    max_devices_for_reliability,
)
from .link import (
    LinkBudget,
    PathLossModel,
    RadioSpec,
    attempt_delivery,
    coverage_radius_m,
    link_budget,
    max_range_m,
    packet_success_probability,
    received_power_dbm,
)
from .lora import EU868, US915, LoRaParameters, RegionalLimits
from .packets import CREDIT_UNIT_BYTES, DeliveryRecord, Packet, Reading

__all__ = [
    "channel",
    "ChannelLoad",
    "CongestionPoint",
    "capacity_table",
    "density_sweep",
    "max_devices_for_reliability",
    "ieee802154",
    "lora",
    "LinkBudget",
    "PathLossModel",
    "RadioSpec",
    "attempt_delivery",
    "coverage_radius_m",
    "link_budget",
    "max_range_m",
    "packet_success_probability",
    "received_power_dbm",
    "EU868",
    "US915",
    "LoRaParameters",
    "RegionalLimits",
    "CREDIT_UNIT_BYTES",
    "DeliveryRecord",
    "Packet",
    "Reading",
]
