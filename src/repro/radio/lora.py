"""LoRa PHY model: airtime, sensitivity, and regional duty-cycle limits.

The paper's "third-party infrastructure" radio (via Helium).  Airtime
follows the Semtech LoRa modem designer formula (SX1276 datasheet);
sensitivity comes from the spreading-factor table at 125 kHz.  US915
has no duty-cycle cap but dwell-time limits; EU868 caps duty cycle at
1 % — both matter for how fast a transmit-only node may report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .link import PathLossModel, RadioSpec

#: Receiver sensitivity (dBm) at BW=125 kHz per spreading factor.
SENSITIVITY_DBM = {
    7: -123.0,
    8: -126.0,
    9: -129.0,
    10: -132.0,
    11: -134.5,
    12: -137.0,
}


@dataclass(frozen=True)
class LoRaParameters:
    """One LoRa PHY configuration."""

    spreading_factor: int = 10
    bandwidth_hz: float = 125_000.0
    coding_rate: int = 1          # CR index: 1 => 4/5 ... 4 => 4/8
    preamble_symbols: int = 8
    explicit_header: bool = True
    low_datarate_optimize: bool = False

    def __post_init__(self) -> None:
        if self.spreading_factor not in SENSITIVITY_DBM:
            raise ValueError(
                f"spreading_factor must be 7..12, got {self.spreading_factor}"
            )
        if self.bandwidth_hz <= 0.0:
            raise ValueError("bandwidth_hz must be positive")
        if not 1 <= self.coding_rate <= 4:
            raise ValueError(f"coding_rate index must be 1..4, got {self.coding_rate}")

    @property
    def symbol_time_s(self) -> float:
        """Duration of one LoRa symbol."""
        return (2 ** self.spreading_factor) / self.bandwidth_hz

    def payload_symbols(self, payload_bytes: int) -> int:
        """Payload symbol count per the SX1276 airtime formula."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        de = 1 if self.low_datarate_optimize else 0
        ih = 0 if self.explicit_header else 1
        sf = self.spreading_factor
        numerator = 8 * payload_bytes - 4 * sf + 28 + 16 - 20 * ih
        denominator = 4 * (sf - 2 * de)
        blocks = max(math.ceil(numerator / denominator), 0)
        return 8 + blocks * (self.coding_rate + 4)

    def airtime_s(self, payload_bytes: int) -> float:
        """Time on air for one uplink frame carrying ``payload_bytes``.

        >>> p = LoRaParameters(spreading_factor=10)
        >>> 0.2 < p.airtime_s(24) < 0.5
        True
        """
        preamble = (self.preamble_symbols + 4.25) * self.symbol_time_s
        payload = self.payload_symbols(payload_bytes) * self.symbol_time_s
        return preamble + payload

    def bitrate_bps(self) -> float:
        """Effective PHY bitrate for this configuration."""
        sf = self.spreading_factor
        cr = 4.0 / (4.0 + self.coding_rate)
        return sf * cr * self.bandwidth_hz / (2 ** sf)

    def spec(self, tx_power_dbm: float = 14.0, frequency_hz: float = 915e6) -> RadioSpec:
        """Materialize a :class:`RadioSpec` for the link model."""
        return RadioSpec(
            name=f"lora-sf{self.spreading_factor}",
            frequency_hz=frequency_hz,
            tx_power_dbm=tx_power_dbm,
            sensitivity_dbm=SENSITIVITY_DBM[self.spreading_factor],
            bitrate_bps=self.bitrate_bps(),
            per_slope_db=1.8,
            max_payload_bytes=51 if self.spreading_factor >= 10 else 222,
        )


@dataclass(frozen=True)
class RegionalLimits:
    """Regulatory constraints on uplink cadence."""

    name: str
    duty_cycle: float        # max fraction of time on air (0 = unlimited)
    dwell_time_s: float      # max single-transmission dwell (0 = unlimited)

    def min_interval_s(self, airtime_s: float) -> float:
        """Minimum packet interval the regulation allows."""
        if self.duty_cycle <= 0.0:
            return 0.0
        return airtime_s / self.duty_cycle

    def permits(self, airtime_s: float, interval_s: float) -> bool:
        """True if transmitting ``airtime_s`` every ``interval_s`` is legal."""
        if self.dwell_time_s > 0.0 and airtime_s > self.dwell_time_s:
            return False
        if self.duty_cycle > 0.0 and interval_s < self.min_interval_s(airtime_s):
            return False
        return True


US915 = RegionalLimits(name="US915", duty_cycle=0.0, dwell_time_s=0.4)
EU868 = RegionalLimits(name="EU868", duty_cycle=0.01, dwell_time_s=0.0)


def suburban_path_loss(embedded: bool = False) -> PathLossModel:
    """Sub-GHz propagation; concrete penetration costs ~8 dB at 915 MHz."""
    return PathLossModel(
        exponent=2.9,
        shadowing_sigma_db=8.0,
        penetration_db=8.0 if embedded else 0.0,
    )
