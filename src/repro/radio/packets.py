"""Packet and reading primitives shared across the network layer.

The paper's initial devices are transmit-only monitoring sensors: up to
24-byte payloads (the Helium data-credit accounting unit), a reading,
and a signature the device can never rotate — which is why §4.1 calls
their longitudinal trust "limited".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Helium charges one data credit per 24-byte message (§4.4).
CREDIT_UNIT_BYTES: int = 24

_sequence = itertools.count(1)


@dataclass(frozen=True)
class Reading:
    """One sensor observation."""

    kind: str          # e.g. "concrete-health", "strain", "temperature"
    value: float
    unit: str = ""


@dataclass(frozen=True)
class Packet:
    """An uplink frame from a transmit-only device.

    ``signed_with`` names the immutable factory key; verification policy
    is the backend's problem (devices cannot be re-keyed, per §4.1).
    """

    source: str
    created_at: float
    payload_bytes: int
    reading: Optional[Reading] = None
    signed_with: str = ""
    sequence: int = field(default_factory=lambda: next(_sequence))

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {self.payload_bytes}")

    @property
    def credit_units(self) -> int:
        """Data credits this packet costs on a Helium-style network.

        One credit per started 24-byte unit; a zero-byte heartbeat still
        costs one credit.
        """
        if self.payload_bytes == 0:
            return 1
        return -(-self.payload_bytes // CREDIT_UNIT_BYTES)  # ceil div


@dataclass(frozen=True)
class DeliveryRecord:
    """A packet's arrival at the backend, as logged by the endpoint."""

    packet: Packet
    received_at: float
    via_gateway: str
    via_backhaul: str

    @property
    def latency_s(self) -> float:
        """Creation-to-arrival delay."""
        return self.received_at - self.packet.created_at
