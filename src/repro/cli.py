"""Command-line interface for centurysim.

Exposes the most-used entry points without writing Python::

    python -m repro scenarios                 # list canned scenarios
    python -m repro run as-designed --years 10 --seed 7
    python -m repro mc as-designed --runs 10 --workers 4
    python -m repro mc as-designed --faults plan.json --audit
    python -m repro mc as-designed --runs 4 --metrics out.jsonl
    python -m repro mc as-designed --runs 100 --shard 0/4 --out shard_0.mcr
    python -m repro mc-merge shard_*.mcr --metrics merged.jsonl
    python -m repro run as-designed --metrics run.prom --metrics-format prom
    python -m repro serve --port 8351 --workers 4
    python -m repro quote --years 50 --per-hour 1
    python -m repro tco --gateways 100 --horizon 50
    python -m repro la                        # the §1 labor arithmetic
    python -m repro capacity --interval-s 3600
    python -m repro lint --format json src    # simlint static analysis

Output is plain text, one artifact per subcommand, suitable for piping.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import units


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .experiment import SCENARIOS

    for name, factory in sorted(SCENARIOS.items()):
        config = factory(0)
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<20} {doc}")
        print(
            f"{'':<20}   devices: {config.n_154_devices}x802.15.4 + "
            f"{config.n_lora_devices}xLoRa; gateways: "
            f"{config.n_owned_gateways} owned + {config.initial_hotspots} hotspots"
        )
    return 0


def _load_fault_plan(path: Optional[str]):
    """Load ``--faults PATH``; exits with code 2 on a malformed plan."""
    if path is None:
        return None
    from .faults import FaultPlanError, load_plan

    try:
        return load_plan(path)
    except (OSError, FaultPlanError) as exc:
        print(f"cannot load fault plan: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _write_metrics_file(args: argparse.Namespace, per_run, merged=None) -> None:
    """Write ``--metrics PATH`` output in ``--metrics-format``."""
    from .obs import write_metrics

    lines = write_metrics(
        args.metrics, per_run, merged=merged, fmt=args.metrics_format
    )
    print(f"metrics: {lines} snapshot(s) -> {args.metrics}")


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiment import SCENARIOS, scenario_config

    if args.scenario not in SCENARIOS:
        print(
            f"unknown scenario {args.scenario!r}; options: {sorted(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    plan = _load_fault_plan(args.faults)
    config = scenario_config(
        args.scenario,
        args.seed,
        horizon=units.years(args.years),
        report_interval=units.days(args.report_days),
    )
    from .experiment import FiftyYearExperiment

    experiment = FiftyYearExperiment(config)
    controller = None
    if plan is not None:
        controller = experiment.sim.install_faults(plan)
    auditor = None
    if args.audit:
        from .faults import InvariantAuditor

        auditor = InvariantAuditor(experiment.sim, strict=False).install()
    result = experiment.run()
    for line in result.summary_lines():
        print(line)
    if controller is not None:
        summary = controller.summary()
        print(
            f"faults ({plan.name}): {summary['fired']} fired of "
            f"{summary['injected']} injected, {summary['specs']} specs"
        )
    if auditor is not None:
        auditor.check_now()
        # Record the verdict in the snapshot exactly like ScenarioTask
        # does, so an audited offline `run --metrics` file stays
        # byte-identical to the served `/v1/run` response.
        experiment.sim.metrics.gauge(
            "run_invariant_violations", agg="sum"
        ).set(len(auditor.violations))
        print(f"invariant violations: {len(auditor.violations)}")
        for violation in auditor.violations:
            print(f"  {violation}")
    if args.metrics:
        meta = {"scenario": args.scenario, "seed": args.seed}
        _write_metrics_file(
            args, [(meta, experiment.sim.metrics.snapshot())]
        )
    if args.diary:
        print()
        print(result.diary.render())
    return 0 if auditor is None or not auditor.violations else 1


def _parse_shard(spec: str):
    """Parse ``--shard I/N``; returns (shard, nshards) or raises ValueError."""
    parts = spec.split("/")
    if len(parts) != 2:
        raise ValueError(f"--shard must look like I/N, got {spec!r}")
    try:
        shard, nshards = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"--shard must look like I/N, got {spec!r}")
    if nshards < 1 or not 0 <= shard < nshards:
        raise ValueError(
            f"--shard needs 0 <= I < N with N >= 1, got {spec!r}"
        )
    return shard, nshards


def _print_study(args: argparse.Namespace, study, with_faults: bool) -> None:
    """Shared study rendering for ``mc`` and ``mc-merge``."""
    for line in study.summary_lines():
        print(line)
    if args.per_run:
        print(
            f"{'run':>4} {'uptime':>8} {'events':>10} {'peak-q':>7} {'secs':>7}"
            + (f" {'faults':>7} {'viols':>6}" if with_faults else "")
        )
        for run in study.runs:
            line = (
                f"{run.index:>4} {run.sample:>8.4f} {run.events_executed:>10,} "
                f"{run.peak_pending_events:>7,} {run.wall_clock_s:>7.2f}"
            )
            if with_faults:
                line += f" {run.faults_fired:>7} {run.invariant_violations:>6}"
            print(line)
    if args.metrics:
        from .runtime import study_metrics_entries

        per_run, merged = study_metrics_entries(study)
        _write_metrics_file(args, per_run, merged=merged)


def _cmd_mc(args: argparse.Namespace) -> int:
    from .experiment import SCENARIOS
    from .runtime import MonteCarloRunner, ScenarioTask, resolve_workers, run_shard

    if args.scenario not in SCENARIOS:
        print(
            f"unknown scenario {args.scenario!r}; options: {sorted(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    if args.runs < 1:
        print("--runs must be >= 1", file=sys.stderr)
        return 2
    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    plan = _load_fault_plan(args.faults)
    task = ScenarioTask(
        scenario=args.scenario,
        horizon=units.years(args.years),
        report_interval=units.days(args.report_days),
        faults=plan,
        audit=args.audit,
    )
    if args.shard is not None:
        try:
            shard, nshards = _parse_shard(args.shard)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not args.out:
            print("--shard requires --out SHARD.mcr", file=sys.stderr)
            return 2
        if args.metrics:
            print(
                "--metrics is not available with --shard; merge the shards "
                "with `mc-merge --metrics` instead",
                file=sys.stderr,
            )
            return 2
        report = run_shard(
            task,
            runs=args.runs,
            base_seed=args.base_seed,
            shard=shard,
            nshards=nshards,
            out_path=args.out,
            workers=workers,
        )
        for line in report.summary_lines():
            print(line)
        return 0 if report.failed == 0 else 1
    study = MonteCarloRunner(
        task, runs=args.runs, base_seed=args.base_seed, workers=workers
    ).run()
    _print_study(args, study, with_faults=plan is not None or args.audit)
    if args.audit and study.total_invariant_violations:
        return 1
    return 0 if not study.failures else 1


def _cmd_mc_merge(args: argparse.Namespace) -> int:
    from .runtime import ShardError, merge_shards

    try:
        study = merge_shards(args.shards)
    except (OSError, ShardError) as exc:
        print(f"cannot merge shards: {exc}", file=sys.stderr)
        return 2
    _print_study(args, study, with_faults=study.total_faults_injected > 0)
    return 0 if not study.failures else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .runtime import resolve_workers
    from .serve import ResponseCache, ScenarioService, serve_forever

    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    cache = ResponseCache(
        max_memory_bytes=int(args.cache_mem_mb * 1024 * 1024),
        disk_dir=args.cache_dir,
        max_disk_bytes=int(args.cache_disk_mb * 1024 * 1024),
    )
    service = ScenarioService(
        workers=workers,
        queue_limit=args.queue_limit,
        timeout_s=args.timeout_s,
        cache=cache,
    )
    try:
        asyncio.run(serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_quote(args: argparse.Namespace) -> int:
    from .econ.credits import cost_per_device_per_year, paper_prepay_quote

    quote = paper_prepay_quote(years=args.years, packets_per_hour=args.per_hour)
    print(f"credits needed     : {quote.credits_needed:,}")
    print(f"credits provisioned: {quote.credits_provisioned:,}")
    print(f"wallet cost        : ${quote.cost_usd:,.2f}")
    print(
        f"steady state       : "
        f"${cost_per_device_per_year(args.per_hour):.4f} per device-year"
    )
    return 0


def _cmd_tco(args: argparse.Namespace) -> int:
    from .econ import crossover_year, tco_series

    print(f"{'year':>6} {'fiber $':>12} {'cellular $':>12}  leader")
    for point in tco_series(
        args.gateways, horizon_years=args.horizon, step_years=args.step
    ):
        leader = "fiber" if point.fiber_wins else "cellular"
        print(
            f"{point.years:>6.0f} {point.fiber_usd:>12,.0f} "
            f"{point.cellular_usd:>12,.0f}  {leader}"
        )
    year = crossover_year(args.gateways, horizon_years=args.horizon)
    rendered = "never (within horizon)" if year == float("inf") else f"year {year:.1f}"
    print(f"crossover: {rendered}")
    return 0


def _cmd_la(args: argparse.Namespace) -> int:
    from .city import los_angeles

    city = los_angeles()
    for asset in city.assets:
        print(f"{asset.name:<14} {asset.count:>9,} "
              f"(service life {asset.service_life_years:.0f} yr)")
    print(f"{'total':<14} {city.total_assets():>9,}")
    hours = city.replacement_person_hours(minutes_per_device=args.minutes)
    print(f"replacement labor at {args.minutes:.0f} min/device: "
          f"{hours:,.0f} person-hours")
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from .radio import LoRaParameters, capacity_table, ieee802154

    airtimes = {
        "802.15.4": ieee802154.airtime_s(args.payload),
        "lora-sf7": LoRaParameters(spreading_factor=7).airtime_s(args.payload),
        "lora-sf10": LoRaParameters(spreading_factor=10).airtime_s(args.payload),
        "lora-sf12": LoRaParameters(spreading_factor=12).airtime_s(args.payload),
    }
    table = capacity_table(
        airtimes, interval_s=args.interval_s, min_delivery=args.min_delivery
    )
    print(f"devices per channel at {args.min_delivery:.0%} per-frame delivery, "
          f"{args.payload}-byte payload every {args.interval_s:.0f} s:")
    for name, capacity in table.items():
        print(f"  {name:<10} {capacity:>10,}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .analysis.export import export_all_figures

    written = export_all_figures(args.out, seed=args.seed)
    for path in written:
        print(path)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.simlint import run

    return run(
        args.paths,
        fmt=args.format,
        list_rules=args.list_rules,
        project=args.project,
        cache=args.cache,
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="centurysim: Century-Scale Smart Infrastructure, simulated",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list canned 50-year scenarios")

    run = sub.add_parser("run", help="run a 50-year-experiment scenario")
    run.add_argument("scenario")
    run.add_argument("--years", type=float, default=10.0)
    run.add_argument("--seed", type=int, default=2021)
    run.add_argument("--report-days", type=float, default=1.0,
                     help="device reporting cadence in days")
    run.add_argument("--diary", action="store_true", help="print the diary")
    run.add_argument("--faults", metavar="PLAN.json", default=None,
                     help="install a JSON fault plan before the run")
    run.add_argument("--audit", action="store_true",
                     help="run the invariant auditor (exit 1 on violations)")
    run.add_argument("--metrics", metavar="PATH", default=None,
                     help="write the run's metrics snapshot to PATH")
    run.add_argument("--metrics-format", choices=("jsonl", "prom"),
                     default="jsonl",
                     help="metrics file format (canonical JSONL or "
                          "Prometheus text; default jsonl)")

    mc = sub.add_parser(
        "mc", help="parallel Monte-Carlo uptime study over independent seeds"
    )
    mc.add_argument("scenario")
    mc.add_argument("--runs", type=int, default=10)
    mc.add_argument("--years", type=float, default=25.0)
    mc.add_argument("--base-seed", type=int, default=100)
    mc.add_argument("--workers", type=int, default=0,
                    help="worker processes; 0 = one per CPU (default)")
    mc.add_argument("--report-days", type=float, default=2.0,
                    help="device reporting cadence in days")
    mc.add_argument("--per-run", action="store_true",
                    help="print the per-run observability table")
    mc.add_argument("--faults", metavar="PLAN.json", default=None,
                    help="install a JSON fault plan in every run")
    mc.add_argument("--audit", action="store_true",
                    help="audit every run (exit 1 on any violation)")
    mc.add_argument("--metrics", metavar="PATH", default=None,
                    help="write per-run + merged metrics to PATH "
                         "(byte-identical at any --workers count)")
    mc.add_argument("--metrics-format", choices=("jsonl", "prom"),
                    default="jsonl",
                    help="metrics file format (canonical JSONL or "
                         "Prometheus text; default jsonl)")
    mc.add_argument("--shard", metavar="I/N", default=None,
                    help="run only the seed-schedule slice "
                         "{k : k = I (mod N)} and write a shard artifact "
                         "(requires --out; merge with mc-merge)")
    mc.add_argument("--out", metavar="SHARD.mcr", default=None,
                    help="shard artifact output path (with --shard)")

    merge = sub.add_parser(
        "mc-merge",
        help="merge mc --shard artifacts into the exact unsharded study",
    )
    merge.add_argument("shards", nargs="+", metavar="SHARD.mcr",
                       help="shard artifacts covering every run index")
    merge.add_argument("--per-run", action="store_true",
                       help="print the per-run observability table")
    merge.add_argument("--metrics", metavar="PATH", default=None,
                       help="write per-run + merged metrics to PATH "
                            "(byte-identical to the unsharded run's)")
    merge.add_argument("--metrics-format", choices=("jsonl", "prom"),
                       default="jsonl",
                       help="metrics file format (canonical JSONL or "
                            "Prometheus text; default jsonl)")

    serve = sub.add_parser(
        "serve",
        help="HTTP scenario service with an exact content-keyed cache",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8351,
                       help="listen port (0 = pick a free port)")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes; 0 = one per CPU (default)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="max queued+running executions before 429 "
                            "(default 4 x workers)")
    serve.add_argument("--timeout-s", type=float, default=300.0,
                       help="per-request execution timeout (504 beyond it)")
    serve.add_argument("--cache-dir", default=None,
                       help="directory for the sealed disk cache tier "
                            "(default: memory-only)")
    serve.add_argument("--cache-mem-mb", type=float, default=64.0,
                       help="memory cache budget in MiB")
    serve.add_argument("--cache-disk-mb", type=float, default=256.0,
                       help="disk cache budget in MiB (with --cache-dir)")

    quote = sub.add_parser("quote", help="prepaid data-credit quote (§4.4)")
    quote.add_argument("--years", type=float, default=50.0)
    quote.add_argument("--per-hour", type=float, default=1.0)

    tco = sub.add_parser("tco", help="fiber vs cellular TCO (§3.3)")
    tco.add_argument("--gateways", type=int, default=100)
    tco.add_argument("--horizon", type=float, default=50.0)
    tco.add_argument("--step", type=float, default=5.0)

    la = sub.add_parser("la", help="the §1 Los Angeles labor arithmetic")
    la.add_argument("--minutes", type=float, default=20.0)

    capacity = sub.add_parser("capacity", help="devices-per-channel capacity")
    capacity.add_argument("--interval-s", type=float, default=3600.0)
    capacity.add_argument("--payload", type=int, default=24)
    capacity.add_argument("--min-delivery", type=float, default=0.9)

    export = sub.add_parser(
        "export", help="write figure-grade CSV series for every figure"
    )
    export.add_argument("--out", default="figures")
    export.add_argument("--seed", type=int, default=2021)

    lint = sub.add_parser(
        "lint", help="simlint: determinism & unit-hygiene static analysis"
    )
    from .devtools.simlint import add_lint_arguments

    add_lint_arguments(lint)

    return parser


COMMANDS = {
    "scenarios": _cmd_scenarios,
    "run": _cmd_run,
    "mc": _cmd_mc,
    "mc-merge": _cmd_mc_merge,
    "serve": _cmd_serve,
    "quote": _cmd_quote,
    "tco": _cmd_tco,
    "la": _cmd_la,
    "capacity": _cmd_capacity,
    "export": _cmd_export,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
