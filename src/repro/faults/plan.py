"""Fault plans, the run-time controller, and the JSON plan format.

A :class:`FaultPlan` is a named, frozen bundle of
:class:`~repro.faults.spec.FaultSpec` instances.  Installing it against
a :class:`~repro.core.engine.Simulation` (via
:meth:`~repro.core.engine.Simulation.install_faults`) creates — or
extends — the run's single :class:`FaultController`, which:

* schedules every spec as ordinary engine events (labelled
  ``fault:<spec key>`` / ``restore:<spec key>``), so injected faults
  execute in the same deterministic ``(time, priority, sequence)``
  order as everything else;
* hands each spec its own named RNG stream (``faults:<spec key>``) for
  randomized targeting, so composition order and worker count cannot
  change a draw;
* keeps the executed *fault event stream* — an ordered record of every
  fault action that actually fired, with sim-time and target names —
  which the property suite compares across worker counts;
* tracks maintenance *no-show windows* that the repair paths
  (:mod:`repro.reliability.failure`, the fifty-year experiment's
  gateway replacement) consult through ``sim.fault_controller``.

JSON plan format (version 1)::

    {
      "version": 1,
      "name": "ten-fault-chaos",
      "faults": [
        {"kind": "kill", "at_years": 5, "select": {"by": "tier", "tier": "gateway"}},
        {"kind": "wallet-drain", "at_years": 12, "fraction": 0.5}
      ]
    }

Time fields take exactly one unit suffix (``_s``, ``_hours``, ``_days``,
``_years``); everything else mirrors each spec's ``to_dict`` output.
Malformed plans raise :class:`FaultPlanError` with the offending fault's
index in the message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Tuple

from .spec import SPEC_KINDS, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.engine import Simulation

#: The JSON plan format version this module reads and writes.
PLAN_FORMAT_VERSION = 1


class FaultPlanError(ValueError):
    """A fault plan is malformed (bad JSON shape, kind, field, or dup)."""


#: One executed fault action: (sim time, spec key, action, target names).
FaultRecord = Tuple[float, str, str, Tuple[str, ...]]


class FaultController:
    """The per-run fault machinery shared by every installed plan.

    Exactly one controller exists per simulation (``sim.fault_controller``);
    installing a second plan extends it.  All state that tests compare —
    the executed fault stream, the injected/fired counters — lives here.
    """

    #: Actions that undo an earlier injection rather than cause harm —
    #: counted separately as ``faults_restored_total``.
    RESTORE_ACTIONS = frozenset({"restore", "flap-up", "custodian-return"})

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        #: Spec key -> spec, across every installed plan.
        self.specs: Dict[str, FaultSpec] = {}
        #: Names of installed plans, in install order (diagnostics only).
        self.plan_names: List[str] = []
        #: Ordered record of every fault action that fired.
        self.events: List[FaultRecord] = []
        #: Half-open maintenance no-show windows, as (start, end).
        self.no_show_windows: List[Tuple[float, float]] = []

    # -- plumbing used by specs ----------------------------------------
    def schedule(
        self,
        spec: FaultSpec,
        when: float,
        callback: Callable[[], None],
        prefix: str = "fault",
    ) -> None:
        """Schedule one engine event for ``spec`` (clamped to now)."""
        self.sim.metrics.counter("faults_injected_total", spec=spec.key()).value += 1
        self.sim.call_at(
            max(when, self.sim.now), callback, label=f"{prefix}:{spec.key()}"
        )

    def stream_for(self, spec: FaultSpec):
        """The spec's private RNG stream, named by its content key."""
        return self.sim.rng(f"faults:{spec.key()}")

    def note(self, spec: FaultSpec, action: str, targets: List[str]) -> None:
        """Append one record to the executed fault stream.

        Also bumps the per-spec fired counter (and, for restore-family
        actions, the restored counter) in the run's metrics registry —
        fault scheduling is cold path, so the registry lookup per action
        is fine here, unlike the per-event hot path.
        """
        key = spec.key()
        self.events.append((self.sim.now, key, action, tuple(targets)))
        metrics = self.sim.metrics
        metrics.counter("faults_fired_total", spec=key).value += 1
        if action in self.RESTORE_ACTIONS:
            metrics.counter("faults_restored_total", spec=key).value += 1

    # -- maintenance no-show windows -----------------------------------
    def add_no_show_window(self, start: float, end: float) -> None:
        if end <= start:
            raise FaultPlanError(
                f"no-show window must have end > start, got [{start}, {end})"
            )
        self.no_show_windows.append((start, end))

    def maintenance_suppressed(self, now: float) -> bool:
        """True if a repair visit attempted at ``now`` finds nobody home."""
        return any(start <= now < end for start, end in self.no_show_windows)

    def suppression_ends(self, now: float) -> float:
        """When the currently-open no-show window(s) close.

        Only meaningful while :meth:`maintenance_suppressed` is True;
        returns ``now`` otherwise so a caller retrying at the returned
        time can never schedule into the past.
        """
        active = [end for start, end in self.no_show_windows if start <= now < end]
        return max(active) if active else now

    # -- reporting ------------------------------------------------------
    @property
    def injected(self) -> int:
        """Engine events scheduled on behalf of specs (registry-backed)."""
        return int(self.sim.metrics.total("faults_injected_total"))

    @property
    def fired(self) -> int:
        """Fault actions that actually executed.

        Reads the registry total, which equals ``len(self.events)`` by
        construction — :meth:`note` writes both in lockstep.
        """
        return int(self.sim.metrics.total("faults_fired_total"))

    def stream_tuple(self) -> Tuple[FaultRecord, ...]:
        """The executed fault stream as an immutable, picklable tuple."""
        return tuple(self.events)

    def summary(self) -> dict:
        """Counters for run summaries and the CLI."""
        return {
            "plans": list(self.plan_names),
            "specs": len(self.specs),
            "injected": self.injected,
            "fired": self.fired,
        }

    # -- installation ---------------------------------------------------
    def install(self, plan: "FaultPlan") -> None:
        for spec in plan.specs:
            key = spec.key()
            if key in self.specs:
                raise FaultPlanError(
                    f"duplicate fault spec {key!r}: already installed "
                    f"(identical specs would share one RNG stream)"
                )
            self.specs[key] = spec
            spec.schedule(self.sim, self)
        self.plan_names.append(plan.name)


@dataclass(frozen=True)
class FaultPlan:
    """A named, immutable bundle of fault specs.

    Plans are picklable (they cross process boundaries inside
    :class:`~repro.runtime.runner.ScenarioTask`) and composable:
    ``plan_a + plan_b`` concatenates the spec tuples, and installing two
    plans separately is equivalent to installing their sum — spec RNG
    streams are content-named, so order cannot matter.
    """

    name: str = "faults"
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.specs:
            key = spec.key()
            if key in seen:
                raise FaultPlanError(f"duplicate fault spec in plan: {key!r}")
            seen.add(key)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(
            name=f"{self.name}+{other.name}", specs=self.specs + other.specs
        )

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def delivery_gating(self) -> bool:
        """True if *every* spec only gates delivery (never shifts a draw
        in a shared RNG stream) — the precondition for the exact
        per-seed uptime-monotonicity property."""
        return all(spec.delivery_gating for spec in self.specs)

    def install(self, sim: "Simulation") -> FaultController:
        """Compile this plan into scheduled events on ``sim``."""
        controller = sim.fault_controller
        if controller is None:
            controller = FaultController(sim)
            sim.fault_controller = controller
        controller.install(self)
        return controller

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": PLAN_FORMAT_VERSION,
            "name": self.name,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"plan must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != PLAN_FORMAT_VERSION:
            raise FaultPlanError(
                f"unsupported plan version {version!r} "
                f"(this build reads version {PLAN_FORMAT_VERSION})"
            )
        raw_faults = payload.get("faults")
        if not isinstance(raw_faults, list):
            raise FaultPlanError("plan needs a 'faults' array")
        specs = []
        for index, raw in enumerate(raw_faults):
            if not isinstance(raw, dict):
                raise FaultPlanError(f"fault #{index} must be an object")
            kind = raw.get("kind")
            spec_cls = SPEC_KINDS.get(kind)
            if spec_cls is None:
                raise FaultPlanError(
                    f"fault #{index}: unknown kind {kind!r} "
                    f"(options: {sorted(SPEC_KINDS)})"
                )
            try:
                specs.append(spec_cls.from_dict(raw))
            except (KeyError, TypeError, ValueError) as exc:
                raise FaultPlanError(f"fault #{index} ({kind}): {exc}") from exc
        try:
            return cls(
                name=str(payload.get("name", "faults")), specs=tuple(specs)
            )
        except FaultPlanError as exc:
            raise FaultPlanError(str(exc)) from exc


def load_plan(path: str) -> FaultPlan:
    """Read a version-1 JSON fault plan from ``path``.

    Raises :class:`FaultPlanError` on malformed content (including
    invalid JSON), with enough context to find the offending fault.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"{path}: invalid JSON: {exc}") from exc
    return FaultPlan.from_dict(payload)


def fault_stream_to_json(stream: Iterable[FaultRecord]) -> list:
    """Project an executed fault stream into JSON-ready lists.

    Shard artifacts carry each run's fault stream across process and
    host boundaries; ``json`` round-trips floats via shortest-repr, so
    the reconstructed stream is bit-identical to the executed one.
    """
    return [
        [time_s, key, action, list(targets)]
        for time_s, key, action, targets in stream
    ]


def fault_stream_from_json(payload: Iterable) -> Tuple[FaultRecord, ...]:
    """Rebuild an executed fault stream from its JSON projection."""
    return tuple(
        (
            float(time_s),
            str(key),
            str(action),
            tuple(str(name) for name in targets),
        )
        for time_s, key, action, targets in payload
    )
