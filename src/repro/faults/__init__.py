"""Deterministic fault injection and always-on invariant auditing.

Two halves:

* **Injection** — declare a :class:`FaultPlan` of typed
  :class:`FaultSpec` entries (kills, degrades, flaps, churn bursts,
  wallet drains, maintenance no-shows, custodian lapses), target them
  with :class:`Selector`, and install against any simulation via
  ``sim.install_faults(plan)``.  All randomized targeting draws from
  content-named :class:`~repro.core.rng.RandomStreams`, so a plan plus
  a seed is bit-reproducible at any worker count and disjoint plans
  compose commutatively.
* **Auditing** — :class:`InvariantAuditor` re-checks queue accounting,
  energy bounds, per-link conservation, delivery reality, cache
  coherence, and monotonicity while the run executes, raising (or
  collecting) structured :class:`InvariantViolation`\\ s.

This package depends only on :mod:`repro.core` (specs act on entities
by tier/duck-type, never by importing the net layer), so any scenario —
including test-local topologies — can be wounded or audited.
"""

from .auditor import InvariantAuditor, InvariantViolation, InvariantViolationError
from .plan import (
    PLAN_FORMAT_VERSION,
    FaultController,
    FaultPlan,
    FaultPlanError,
    FaultRecord,
    fault_stream_from_json,
    fault_stream_to_json,
    load_plan,
)
from .plans import pinned_chaos_plan
from .spec import (
    CustodianLapse,
    DegradeFault,
    FaultSpec,
    FlapFault,
    HotspotChurnBurst,
    KillFault,
    MaintenanceNoShow,
    Selector,
    WalletDrain,
)

__all__ = [
    "CustodianLapse",
    "DegradeFault",
    "FaultController",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecord",
    "fault_stream_from_json",
    "fault_stream_to_json",
    "FaultSpec",
    "FlapFault",
    "HotspotChurnBurst",
    "InvariantAuditor",
    "InvariantViolation",
    "InvariantViolationError",
    "KillFault",
    "MaintenanceNoShow",
    "PLAN_FORMAT_VERSION",
    "Selector",
    "WalletDrain",
    "load_plan",
    "pinned_chaos_plan",
]
