"""Typed fault specifications and targeting selectors.

A :class:`FaultSpec` is a frozen, declarative description of one
injected fault: *what* happens (kill, degrade, flap, drain, …), *when*
(absolute simulation time), and *to whom* (a :class:`Selector`).  Specs
compile against a running :class:`~repro.core.engine.Simulation` through
the plan's controller (:mod:`repro.faults.plan`), which schedules plain
engine events — fault execution therefore rides the same deterministic
``(time, priority, sequence)`` order as everything else.

Determinism contract
--------------------
Randomized targeting (``k-random-of`` selection, churn bursts) draws
only from a stream named after the spec's *content key* (see
:meth:`FaultSpec.key`), never from a stream shared with the simulation
proper.  Two consequences:

* a plan + seed is bit-reproducible at any worker count (streams are
  derived in-process from the run seed, like every other stream);
* disjoint plans compose commutatively — the stream name depends on the
  spec, not on its position in a plan or the order plans were installed.

Selectors resolve *at fire time*, not at install time, so a fault aimed
at "two random live gateways" sees the population as it exists when the
fault strikes, including replacements and churn arrivals.

``delivery_gating`` marks specs that only gate packet delivery on the
backhaul/cloud path (forced degrades of those tiers, wallet drains,
custodian lapses).  Such faults change **no** RNG draw sequence — every
radio, sensing, energy, and churn draw happens upstream of the gate — so
adding them to a plan can only remove deliveries.  This is the exact
monotonicity the metamorphic property suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.engine import Simulation
    from .plan import FaultController

#: Tiers whose forced degradation gates delivery without touching any
#: shared RNG stream (see the module docstring).
DELIVERY_GATING_TIERS = frozenset({"backhaul", "cloud"})

_SELECTOR_MODES = ("name", "tier", "k-random", "blast-radius")


def _blast_size(entity: Any) -> int:
    """Transitive dependent count — the Figure-1 blast radius of ``entity``."""
    seen = set()
    frontier = list(getattr(entity, "dependents", ()))
    while frontier:
        node = frontier.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        frontier.extend(getattr(node, "dependents", ()))
    return len(seen)


@dataclass(frozen=True)
class Selector:
    """Which entities a fault strikes, resolved at fire time.

    ``by`` picks the mode:

    * ``"name"`` — the entities in ``names`` (those currently alive);
    * ``"tier"`` — every live entity of ``tier`` matching ``where``;
    * ``"k-random"`` — ``k`` drawn without replacement from the ``tier``/
      ``where`` pool, from the spec's own named stream;
    * ``"blast-radius"`` — the ``k`` live entities with the largest
      transitive dependent count (ties broken by name).

    ``where`` is a tuple of ``(attribute, value)`` equality filters; the
    attribute is looked up on the entity, falling back to its ``tags``,
    and compared as a string (e.g. ``("technology", "lora")``).
    """

    by: str = "tier"
    tier: Optional[str] = None
    names: Tuple[str, ...] = ()
    k: Optional[int] = None
    where: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.by not in _SELECTOR_MODES:
            raise ValueError(f"unknown selector mode {self.by!r}; options: {_SELECTOR_MODES}")
        if self.by == "name" and not self.names:
            raise ValueError("by='name' requires at least one name")
        if self.by in ("k-random", "blast-radius") and (self.k is None or self.k < 1):
            raise ValueError(f"by={self.by!r} requires k >= 1")

    # -- constructors ---------------------------------------------------
    @classmethod
    def by_name(cls, *names: str) -> "Selector":
        return cls(by="name", names=tuple(names))

    @classmethod
    def by_tier(cls, tier: str, where: Tuple[Tuple[str, str], ...] = ()) -> "Selector":
        return cls(by="tier", tier=tier, where=where)

    @classmethod
    def k_random(
        cls,
        k: int,
        tier: Optional[str] = None,
        where: Tuple[Tuple[str, str], ...] = (),
    ) -> "Selector":
        return cls(by="k-random", tier=tier, k=k, where=where)

    @classmethod
    def blast_radius(cls, k: int = 1, tier: Optional[str] = None) -> "Selector":
        return cls(by="blast-radius", tier=tier, k=k)

    # -- resolution -----------------------------------------------------
    @property
    def needs_rng(self) -> bool:
        """True if resolution consumes randomness (k-random only)."""
        return self.by == "k-random"

    def _matches(self, entity: Any) -> bool:
        if self.tier is not None and getattr(entity, "TIER", None) != self.tier:
            return False
        if self.names and entity.name not in self.names:
            return False
        for attribute, expected in self.where:
            actual = getattr(entity, attribute, None)
            if actual is None:
                actual = getattr(entity, "tags", {}).get(attribute)
            if actual is None or str(actual) != expected:
                return False
        return True

    def resolve(self, sim: "Simulation", rng: Optional[Any] = None) -> List[Any]:
        """The live entities this selector targets right now.

        The candidate pool is sorted by name before any sampling, so the
        resolution is independent of entity registration order.
        """
        pool = [
            e
            for e in sim.entities
            if getattr(e, "alive", False) and self._matches(e)
        ]
        pool.sort(key=lambda e: e.name)
        if self.by in ("name", "tier"):
            return pool
        if self.by == "k-random":
            count = min(self.k or 0, len(pool))
            if count == 0:
                return []
            if rng is None:
                raise ValueError("k-random selection requires an rng")
            chosen = rng.choice(len(pool), size=count, replace=False)
            return [pool[i] for i in sorted(int(i) for i in chosen)]
        # blast-radius: largest transitive dependent sets first.
        pool.sort(key=lambda e: (-_blast_size(e), e.name))
        return pool[: self.k or 1]

    # -- identity / serialization --------------------------------------
    def key(self) -> str:
        """Stable content key used in stream names and event labels."""
        parts = [self.by]
        if self.tier is not None:
            parts.append(f"tier={self.tier}")
        if self.names:
            parts.append("names=" + "+".join(self.names))
        if self.k is not None:
            parts.append(f"k={self.k}")
        for attribute, expected in self.where:
            parts.append(f"{attribute}={expected}")
        return ",".join(parts)

    def to_dict(self) -> dict:
        payload: dict = {"by": self.by}
        if self.tier is not None:
            payload["tier"] = self.tier
        if self.names:
            payload["names"] = list(self.names)
        if self.k is not None:
            payload["k"] = self.k
        if self.where:
            payload["where"] = {attribute: value for attribute, value in self.where}
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Selector":
        where = tuple(sorted(dict(payload.get("where", {})).items()))
        return cls(
            by=payload.get("by", "tier"),
            tier=payload.get("tier"),
            names=tuple(payload.get("names", ())),
            k=payload.get("k"),
            where=where,
        )


@dataclass(frozen=True)
class FaultSpec:
    """Base fault: ``at`` is the absolute injection time in seconds."""

    KIND: ClassVar[str] = ""

    at: float

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError(f"fault time must be non-negative, got {self.at}")

    @property
    def delivery_gating(self) -> bool:
        """True if this fault only gates delivery (see module docstring)."""
        return False

    def key(self) -> str:
        """Content-derived identity: names the spec's RNG stream and labels."""
        return f"{self.KIND}@{self.at:g}[{self._key_detail()}]"

    def _key_detail(self) -> str:
        return ""

    def schedule(self, sim: "Simulation", controller: "FaultController") -> None:
        """Compile this spec into engine events (default: one, at ``at``)."""
        controller.schedule(self, self.at, lambda: self.fire(sim, controller))

    def fire(self, sim: "Simulation", controller: "FaultController") -> None:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        raise NotImplementedError


@dataclass(frozen=True)
class KillFault(FaultSpec):
    """Permanently fail (or retire) the selected entities.

    Covers device, gateway, backhaul, and cloud kills: the tier comes
    from the selector.  Kills are final — the entity state machine does
    not un-fail; recovery is whatever the scenario's maintenance logic
    (or a test's redeploy) does about it.
    """

    KIND: ClassVar[str] = "kill"

    select: Selector = field(default_factory=Selector)
    reason: str = "fault-injected"
    mode: str = "fail"  # "fail" (breakage) or "retire" (deliberate removal)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in ("fail", "retire"):
            raise ValueError(f"mode must be 'fail' or 'retire', got {self.mode!r}")

    def _key_detail(self) -> str:
        detail = self.select.key()
        return detail if self.mode == "fail" else f"{detail},retire"

    def fire(self, sim: "Simulation", controller: "FaultController") -> None:
        rng = controller.stream_for(self) if self.select.needs_rng else None
        targets = self.select.resolve(sim, rng)
        for entity in targets:
            if self.mode == "retire":
                entity.retire(reason=self.reason)
            else:
                entity.fail(reason=self.reason)
        controller.note(self, "kill", [e.name for e in targets])

    def to_dict(self) -> dict:
        payload = {"kind": self.KIND, "at_s": self.at, "select": self.select.to_dict()}
        if self.reason != "fault-injected":
            payload["reason"] = self.reason
        if self.mode != "fail":
            payload["mode"] = self.mode
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "KillFault":
        return cls(
            at=_time_from(payload, "at"),
            select=Selector.from_dict(payload["select"]),
            reason=payload.get("reason", "fault-injected"),
            mode=payload.get("mode", "fail"),
        )


@dataclass(frozen=True)
class DegradeFault(FaultSpec):
    """Suspend the selected entities' service for ``duration`` seconds.

    Targets are resolved at the window's leading edge and restored — by
    identity — at the trailing edge, even if they died in between
    (restoring a dead entity is harmless).  Degrading a backhaul or the
    cloud endpoint is delivery-gating; degrading a gateway or device is
    not (it changes which radio links get tried, shifting shared-stream
    draws).
    """

    KIND: ClassVar[str] = "degrade"

    select: Selector = field(default_factory=Selector)
    duration: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    @property
    def delivery_gating(self) -> bool:
        return self.select.tier in DELIVERY_GATING_TIERS

    def _key_detail(self) -> str:
        return f"{self.select.key()},for={self.duration:g}"

    def fire(self, sim: "Simulation", controller: "FaultController") -> None:
        rng = controller.stream_for(self) if self.select.needs_rng else None
        targets = self.select.resolve(sim, rng)
        for entity in targets:
            entity.force_degrade(reason=self.key())
        controller.note(self, "degrade", [e.name for e in targets])

        def restore(_targets: tuple = tuple(targets)) -> None:
            for entity in _targets:
                entity.restore_degrade(reason=self.key())
            controller.note(self, "restore", [e.name for e in _targets])

        controller.schedule(self, sim.now + self.duration, restore, prefix="restore")

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "at_s": self.at,
            "duration_s": self.duration,
            "select": self.select.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DegradeFault":
        return cls(
            at=_time_from(payload, "at"),
            select=Selector.from_dict(payload["select"]),
            duration=_time_from(payload, "duration"),
        )


@dataclass(frozen=True)
class FlapFault(FaultSpec):
    """A flapping link: ``cycles`` repetitions of down ``down`` / up ``up``.

    Radio-link flap when aimed at gateways; backhaul flap when aimed at
    a backhaul (the latter is delivery-gating).  Each down edge resolves
    the selector afresh, so replacements flap too.
    """

    KIND: ClassVar[str] = "flap"

    select: Selector = field(default_factory=Selector)
    down: float = 0.0
    up: float = 0.0
    cycles: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down <= 0.0 or self.up <= 0.0:
            raise ValueError("down and up durations must be positive")
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")

    @property
    def delivery_gating(self) -> bool:
        return self.select.tier in DELIVERY_GATING_TIERS

    def _key_detail(self) -> str:
        return (
            f"{self.select.key()},down={self.down:g},up={self.up:g},"
            f"x{self.cycles}"
        )

    def schedule(self, sim: "Simulation", controller: "FaultController") -> None:
        period = self.down + self.up
        for cycle in range(self.cycles):
            controller.schedule(
                self,
                self.at + cycle * period,
                lambda: self._down_edge(sim, controller),
            )

    def _down_edge(self, sim: "Simulation", controller: "FaultController") -> None:
        rng = controller.stream_for(self) if self.select.needs_rng else None
        targets = self.select.resolve(sim, rng)
        for entity in targets:
            entity.force_degrade(reason=self.key())
        controller.note(self, "flap-down", [e.name for e in targets])

        def up_edge(_targets: tuple = tuple(targets)) -> None:
            for entity in _targets:
                entity.restore_degrade(reason=self.key())
            controller.note(self, "flap-up", [e.name for e in _targets])

        controller.schedule(self, sim.now + self.down, up_edge, prefix="restore")

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "at_s": self.at,
            "down_s": self.down,
            "up_s": self.up,
            "cycles": self.cycles,
            "select": self.select.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FlapFault":
        return cls(
            at=_time_from(payload, "at"),
            select=Selector.from_dict(payload["select"]),
            down=_time_from(payload, "down"),
            up=_time_from(payload, "up"),
            cycles=int(payload.get("cycles", 1)),
        )


@dataclass(frozen=True)
class HotspotChurnBurst(FaultSpec):
    """``k`` random live LoRa hotspots unplug at once (correlated churn).

    The Helium stress case: a token-price crash or firmware brick takes
    a slice of the third-party population out simultaneously instead of
    via independent owner churn.
    """

    KIND: ClassVar[str] = "churn-burst"

    k: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def _key_detail(self) -> str:
        return f"k={self.k}"

    def fire(self, sim: "Simulation", controller: "FaultController") -> None:
        select = Selector.k_random(
            self.k, tier="gateway", where=(("technology", "lora"),)
        )
        targets = select.resolve(sim, controller.stream_for(self))
        for hotspot in targets:
            hotspot.retire(reason="churn-burst")
        controller.note(self, "churn-burst", [h.name for h in targets])

    def to_dict(self) -> dict:
        return {"kind": self.KIND, "at_s": self.at, "k": self.k}

    @classmethod
    def from_dict(cls, payload: dict) -> "HotspotChurnBurst":
        return cls(at=_time_from(payload, "at"), k=int(payload["k"]))


@dataclass(frozen=True)
class WalletDrain(FaultSpec):
    """Remove credits from a registered wallet resource.

    Exactly one of ``fraction``/``credits``.  Delivery-gating: the debit
    path holds no randomness, so a drained wallet only converts later
    forwards into refusals.  A missing resource makes the fault a
    recorded no-op (the scenario has no wallet to drain).
    """

    KIND: ClassVar[str] = "wallet-drain"

    fraction: Optional[float] = None
    credits: Optional[int] = None
    resource: str = "wallet"

    def __post_init__(self) -> None:
        super().__post_init__()
        if (self.fraction is None) == (self.credits is None):
            raise ValueError("give exactly one of fraction= or credits=")
        if self.fraction is not None and not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.credits is not None and self.credits < 0:
            raise ValueError(f"credits must be non-negative, got {self.credits}")

    @property
    def delivery_gating(self) -> bool:
        return True

    def _key_detail(self) -> str:
        amount = (
            f"frac={self.fraction:g}" if self.fraction is not None
            else f"credits={self.credits}"
        )
        return f"{self.resource},{amount}"

    def fire(self, sim: "Simulation", controller: "FaultController") -> None:
        wallet = sim.resources.get(self.resource)
        if wallet is None:
            controller.note(self, "wallet-drain-skipped", [])
            return
        removed = wallet.drain(credits=self.credits, fraction=self.fraction)
        controller.note(self, f"wallet-drain({removed})", [self.resource])

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.KIND, "at_s": self.at}
        if self.fraction is not None:
            payload["fraction"] = self.fraction
        if self.credits is not None:
            payload["credits"] = self.credits
        if self.resource != "wallet":
            payload["resource"] = self.resource
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "WalletDrain":
        return cls(
            at=_time_from(payload, "at"),
            fraction=payload.get("fraction"),
            credits=payload.get("credits"),
            resource=payload.get("resource", "wallet"),
        )


@dataclass(frozen=True)
class MaintenanceNoShow(FaultSpec):
    """Nobody answers the pager for ``duration`` seconds.

    While the window is open, replacement visits (gateway swaps, renewal
    processes) are deferred to the window's end instead of executing —
    the §4.5 custodial-neglect case for *field* maintenance.  The window
    is registered at install time; the scheduled event at ``at`` only
    records the fault in the stream.
    """

    KIND: ClassVar[str] = "maintenance-no-show"

    duration: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def _key_detail(self) -> str:
        return f"for={self.duration:g}"

    def schedule(self, sim: "Simulation", controller: "FaultController") -> None:
        controller.add_no_show_window(self.at, self.at + self.duration)
        super().schedule(sim, controller)

    def fire(self, sim: "Simulation", controller: "FaultController") -> None:
        controller.note(self, "maintenance-no-show", [])

    def to_dict(self) -> dict:
        return {"kind": self.KIND, "at_s": self.at, "duration_s": self.duration}

    @classmethod
    def from_dict(cls, payload: dict) -> "MaintenanceNoShow":
        return cls(
            at=_time_from(payload, "at"), duration=_time_from(payload, "duration")
        )


@dataclass(frozen=True)
class CustodianLapse(FaultSpec):
    """The endpoint's custodian stops paying attention for ``duration``.

    Degrades every live cloud-tier entity (the public page goes dark,
    deliveries are refused) and restores at the window's end — §4.5's
    institutional-memory failure, as a fault.  Delivery-gating.
    """

    KIND: ClassVar[str] = "custodian-lapse"

    duration: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    @property
    def delivery_gating(self) -> bool:
        return True

    def _key_detail(self) -> str:
        return f"for={self.duration:g}"

    def fire(self, sim: "Simulation", controller: "FaultController") -> None:
        targets = Selector.by_tier("cloud").resolve(sim)
        for endpoint in targets:
            endpoint.force_degrade(reason=self.key())
        controller.note(self, "custodian-lapse", [e.name for e in targets])

        def restore(_targets: tuple = tuple(targets)) -> None:
            for endpoint in _targets:
                endpoint.restore_degrade(reason=self.key())
            controller.note(self, "custodian-return", [e.name for e in _targets])

        controller.schedule(self, sim.now + self.duration, restore, prefix="restore")

    def to_dict(self) -> dict:
        return {"kind": self.KIND, "at_s": self.at, "duration_s": self.duration}

    @classmethod
    def from_dict(cls, payload: dict) -> "CustodianLapse":
        return cls(
            at=_time_from(payload, "at"), duration=_time_from(payload, "duration")
        )


#: JSON ``kind`` -> spec class, in catalog order.
SPEC_KINDS = {
    cls.KIND: cls
    for cls in (
        KillFault,
        DegradeFault,
        FlapFault,
        HotspotChurnBurst,
        WalletDrain,
        MaintenanceNoShow,
        CustodianLapse,
    )
}

#: Accepted time-field suffixes in plan JSON, with seconds conversions.
_TIME_SUFFIXES: Tuple[Tuple[str, float], ...] = (
    ("_s", 1.0),
    ("_hours", 3600.0),
    ("_days", 86400.0),
    ("_years", 365.25 * 86400.0),
)


def _time_from(payload: dict, fieldname: str) -> float:
    """Read a duration field with an explicit unit suffix.

    Exactly one of ``<field>_s`` / ``<field>_hours`` / ``<field>_days`` /
    ``<field>_years`` must be present — bare unsuffixed numbers are
    rejected so plan files stay unit-unambiguous (the simlint SL-series
    hygiene, applied to data).
    """
    present = [
        (suffix, factor)
        for suffix, factor in _TIME_SUFFIXES
        if fieldname + suffix in payload
    ]
    if len(present) != 1:
        options = ", ".join(fieldname + suffix for suffix, _ in _TIME_SUFFIXES)
        raise ValueError(
            f"fault needs exactly one of {options} (got {sorted(payload)})"
        )
    suffix, factor = present[0]
    return float(payload[fieldname + suffix]) * factor
