"""Canonical fault plans shipped with the repo.

:func:`pinned_chaos_plan` is the ten-fault plan pinned by the fifth
golden fixture (``tests/experiment/golden/as-designed-faults_seed2021.json``)
and exercised by the CI chaos job.  Its content is part of the repo's
reproducibility surface: editing a spec here changes the fixture's
trace hash, so regenerate the fixture (``benchmarks/capture_golden.py
--faults``) in the same change.
"""

from __future__ import annotations

from ..core import units
from .plan import FaultPlan
from .spec import (
    CustodianLapse,
    DegradeFault,
    FlapFault,
    HotspotChurnBurst,
    KillFault,
    MaintenanceNoShow,
    Selector,
    WalletDrain,
)


def pinned_chaos_plan() -> FaultPlan:
    """Ten faults across every tier of the fifty-year experiment.

    One of each interesting kind, spread over the horizon so each fault
    lands on a system already shaped by the previous ones: backhaul
    degrade, owned-gateway kill, hotspot churn burst, wallet drain,
    custodian lapse, radio-link flap, a two-year maintenance no-show,
    a blast-radius backhaul kill, a cloud brown-out, and a final
    hotspot cull.
    """
    return FaultPlan(
        name="ten-fault-chaos",
        specs=(
            DegradeFault(
                at=units.years(2.0),
                select=Selector.by_name("campus-net"),
                duration=units.days(60.0),
            ),
            KillFault(
                at=units.years(5.0),
                select=Selector.k_random(
                    1, tier="gateway", where=(("technology", "802.15.4"),)
                ),
                reason="lightning-strike",
            ),
            HotspotChurnBurst(at=units.years(8.0), k=6),
            WalletDrain(at=units.years(12.0), fraction=0.5),
            CustodianLapse(at=units.years(15.0), duration=units.days(90.0)),
            FlapFault(
                at=units.years(18.0),
                select=Selector.by_tier(
                    "gateway", where=(("technology", "802.15.4"),)
                ),
                down=units.days(7.0),
                up=units.days(21.0),
                cycles=4,
            ),
            MaintenanceNoShow(at=units.years(20.0), duration=units.years(2.0)),
            KillFault(
                at=units.years(25.0),
                select=Selector.blast_radius(1, tier="backhaul"),
                reason="fiber-cut",
            ),
            DegradeFault(
                at=units.years(30.0),
                select=Selector.by_tier("cloud"),
                duration=units.days(30.0),
            ),
            KillFault(
                at=units.years(35.0),
                select=Selector.k_random(
                    2, tier="gateway", where=(("technology", "lora"),)
                ),
                reason="firmware-brick",
            ),
        ),
    )
