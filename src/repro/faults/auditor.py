"""Always-on runtime invariant auditing.

The :class:`InvariantAuditor` hangs off the engine's ``audit_hook`` and
re-checks the simulation's structural invariants as the run executes —
not just at the end, when a corrupted counter has long since washed into
an aggregate.  The checks are read-only by construction: the auditor
schedules no events, draws no randomness, and records nothing in the run
log, so enabling it **cannot** change a trace — the golden-fixture suite
runs every scenario with the auditor strict and asserts the pre-auditor
hashes still hold.

Checks (each names the entity and sim-time when it trips):

* **queue-accounting** — the event heap's live/dead bookkeeping matches
  a direct scan of the heap, and the peak high-water mark is an upper
  bound on the current live count.
* **energy-bounds** — every device's storage element holds a
  non-negative charge no greater than its rated capacity.
* **link-conservation** — delivered ≤ sent on every hop: per device,
  ``delivered`` plus categorized losses never exceeds ``attempts``; per
  gateway, ``received`` equals ``forwarded`` plus the categorized drops.
* **delivery-reality** — the reachability ledger agrees with delivery
  reality: total packets gateways claim to have forwarded equals the
  total deliveries endpoints actually recorded.
* **cache-coherence** — topology-version-keyed caches (device candidate
  lists, the Helium live-hotspot view) match a fresh recomputation
  whenever they claim to be current.
* **monotonicity** — the clock and ``topology_version`` never move
  backwards.

In strict mode the first violation raises
:class:`InvariantViolationError`; in collect mode violations accumulate
on :attr:`InvariantAuditor.violations` for post-run reporting (the
Monte-Carlo runner surfaces the count per run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.engine import Simulation

#: Float slack for energy accounting (charge/leak round-trips).
_ENERGY_EPS_J = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One failed runtime check, pinned to an entity and a sim-time."""

    check: str
    time: float
    entity: Optional[str]
    detail: str

    def __str__(self) -> str:
        where = self.entity if self.entity is not None else "<simulation>"
        return f"[{self.check}] t={self.time:.6g} {where}: {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised in strict mode when a runtime invariant check fails."""

    def __init__(self, violation: InvariantViolation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class InvariantAuditor:
    """Periodic runtime invariant checker for one simulation.

    Parameters
    ----------
    sim:
        The simulation to audit.
    every:
        Run the full check battery once per this many executed events.
        The battery is O(entities + pending events), so the default
        keeps the overhead a few percent on fifty-year runs while still
        catching corruption within one audit window of its cause.
    strict:
        Raise on the first violation (tests, golden captures) instead of
        collecting (Monte-Carlo studies, where one bad run should be
        reported, not abort the whole study).
    """

    def __init__(
        self, sim: "Simulation", every: int = 2500, strict: bool = True
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.sim = sim
        self.every = every
        self.strict = strict
        self.violations: List[InvariantViolation] = []
        self.audits_run = 0
        self._countdown = every
        self._last_now = sim.now
        self._last_topology_version = sim.topology_version

    def install(self) -> "InvariantAuditor":
        """Attach to the engine's post-event hook and return self."""
        if self.sim.audit_hook is not None:
            raise RuntimeError("simulation already has an audit hook")
        self.sim.audit_hook = self._on_event
        return self

    # ------------------------------------------------------------------
    # Hook plumbing
    # ------------------------------------------------------------------
    def _on_event(self) -> None:
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.every
            self.check_now()

    def _flag(self, check: str, entity: Optional[str], detail: str) -> None:
        violation = InvariantViolation(
            check=check, time=self.sim.now, entity=entity, detail=detail
        )
        if self.strict:
            raise InvariantViolationError(violation)
        self.violations.append(violation)

    # ------------------------------------------------------------------
    # The battery
    # ------------------------------------------------------------------
    def check_now(self) -> List[InvariantViolation]:
        """Run every check immediately; returns violations found *this*
        sweep (collect mode) or raises on the first (strict mode)."""
        before = len(self.violations)
        self.audits_run += 1
        self._check_monotonicity()
        self._check_queue_accounting()
        self._check_entities()
        self._check_delivery_reality()
        self._check_caches()
        return self.violations[before:]

    def _check_monotonicity(self) -> None:
        sim = self.sim
        if sim.now < self._last_now:
            self._flag(
                "monotonicity",
                None,
                f"clock moved backwards: {self._last_now} -> {sim.now}",
            )
        self._last_now = sim.now
        if sim.topology_version < self._last_topology_version:
            self._flag(
                "monotonicity",
                None,
                f"topology_version moved backwards: "
                f"{self._last_topology_version} -> {sim.topology_version}",
            )
        self._last_topology_version = sim.topology_version

    def _check_queue_accounting(self) -> None:
        queue = self.sim.events
        live = 0
        dead = 0
        for entry in queue._heap:
            if entry[3].cancelled:
                dead += 1
            else:
                live += 1
        if live != len(queue):
            self._flag(
                "queue-accounting",
                None,
                f"live counter says {len(queue)}, heap scan finds {live}",
            )
        if dead != queue.dead_entries:
            self._flag(
                "queue-accounting",
                None,
                f"dead counter says {queue.dead_entries}, heap scan finds {dead}",
            )
        if queue.peak_live < live:
            self._flag(
                "queue-accounting",
                None,
                f"peak_live {queue.peak_live} below current live count {live}",
            )

    def _check_entities(self) -> None:
        forwarded_total = 0
        delivered_total = 0
        for entity in self.sim.entities:
            tier = getattr(entity, "TIER", None)
            if tier == "device":
                self._check_device(entity)
            elif tier == "device-cohort":
                self._check_cohort(entity)
            elif tier == "gateway":
                forwarded_total += self._check_gateway(entity)
            elif tier == "cloud":
                # Registry-backed count when available (len(deliveries)
                # undercounts endpoints running store_deliveries=False).
                count = getattr(entity, "delivered_count", None)
                if count is None:
                    count = len(getattr(entity, "deliveries", ()))
                delivered_total += count
        self._forwarded_total = forwarded_total
        self._delivered_total = delivered_total

    def _check_device(self, device) -> None:
        attempts = device.attempts
        accounted = (
            device.delivered
            + device.energy_denied
            + device.no_gateway
            + device.radio_lost
        )
        if device.delivered > attempts or accounted > attempts:
            self._flag(
                "link-conservation",
                device.name,
                f"loss accounting exceeds attempts: {device.loss_breakdown()}",
            )
        power = getattr(device, "power", None)
        if power is not None:
            stored = power.storage.stored_j
            capacity = power.storage.capacity_j
            if stored < -_ENERGY_EPS_J or stored > capacity + _ENERGY_EPS_J:
                self._flag(
                    "energy-bounds",
                    device.name,
                    f"stored_j={stored!r} outside [0, capacity_j={capacity!r}]",
                )

    def _check_cohort(self, cohort) -> None:
        attempts = cohort.attempts
        accounted = (
            cohort.delivered
            + cohort.energy_denied
            + cohort.no_gateway
            + cohort.radio_lost
        )
        if cohort.delivered > attempts or accounted > attempts:
            self._flag(
                "link-conservation",
                cohort.name,
                f"loss accounting exceeds attempts: {cohort.loss_breakdown()}",
            )
        power = getattr(cohort, "power", None)
        if power is not None:
            stored = power.stored_j
            capacity = power.capacity_j
            if bool(
                (stored < -_ENERGY_EPS_J).any()
                or (stored > capacity + _ENERGY_EPS_J).any()
            ):
                worst_low = float(stored.min())
                worst_high = float(stored.max())
                self._flag(
                    "energy-bounds",
                    cohort.name,
                    f"stored_j range [{worst_low!r}, {worst_high!r}] outside "
                    f"[0, capacity_j={capacity!r}]",
                )

    def _check_gateway(self, gateway) -> int:
        received = gateway.packets_received
        accounted = (
            gateway.packets_forwarded
            + gateway.drops_blocklist
            + gateway.drops_backhaul
            + gateway.drops_endpoint
        )
        if received != accounted:
            self._flag(
                "link-conservation",
                gateway.name,
                f"received={received} != forwarded+drops={accounted}",
            )
        if gateway.packets_forwarded > received:
            self._flag(
                "link-conservation",
                gateway.name,
                f"forwarded {gateway.packets_forwarded} > received {received}",
            )
        return gateway.packets_forwarded

    def _check_delivery_reality(self) -> None:
        # Set by _check_entities immediately before this runs.
        if self._forwarded_total != self._delivered_total:
            self._flag(
                "delivery-reality",
                None,
                f"gateways claim {self._forwarded_total} forwards, endpoints "
                f"recorded {self._delivered_total} deliveries",
            )

    def _check_caches(self) -> None:
        version = self.sim.topology_version
        for entity in self.sim.entities:
            if getattr(entity, "TIER", None) != "device":
                continue
            cached = entity._candidate_cache
            if cached is None or entity._candidate_version != version:
                continue  # stale caches are allowed; only fresh ones must agree
            entity._candidate_version = -1
            fresh = entity.candidate_gateways()
            if [id(g) for g in cached] != [id(g) for g in fresh]:
                self._flag(
                    "cache-coherence",
                    entity.name,
                    f"candidate cache {sorted(g.name for g in cached)} != "
                    f"recomputation {sorted(g.name for g in fresh)}",
                )
        helium = self.sim.resources.get("helium")
        if helium is not None and helium._live_cache_version == version:
            fresh_live = [h for h in helium.hotspots if h.alive]
            if [id(h) for h in helium._live_cache] != [id(h) for h in fresh_live]:
                self._flag(
                    "cache-coherence",
                    "helium",
                    f"live-hotspot cache holds {len(helium._live_cache)}, "
                    f"recomputation finds {len(fresh_live)}",
                )
