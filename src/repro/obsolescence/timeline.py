"""Technology-generation timelines and spectrum sunsets.

§3.4: "the sunset of 2G wireless technologies [meant] device owners have
no option: a fixed resource (spectrum) that they do not own or control
is taken away, and devices must be replaced."  ``TechnologyTimeline``
models a succession of generations, each with a launch and a sunset;
fleets bound to a generation die with it.  The historical cellular table
is included for calibration, and a stochastic generator produces future
timelines for Monte-Carlo horizon studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core import units


@dataclass(frozen=True)
class Generation:
    """One technology generation's service window (times in sim seconds)."""

    name: str
    launched_at: float
    sunset_at: Optional[float]  # None = not yet announced

    def available(self, t: float) -> bool:
        """True while the generation carries traffic at time ``t``."""
        if t < self.launched_at:
            return False
        if self.sunset_at is None:
            return True
        return t < self.sunset_at

    @property
    def service_years(self) -> Optional[float]:
        """Launch-to-sunset span, if the sunset is known."""
        if self.sunset_at is None:
            return None
        return units.as_years(self.sunset_at - self.launched_at)


#: US cellular history, in years relative to 1990 (calibration data).
#: Launch/sunset: 2G ~1992–2022 (AT&T 2017, T-Mobile 2022), 3G
#: ~2002–2022, 4G ~2010–(projected mid-2030s).
HISTORICAL_CELLULAR = [
    ("2G", 2.0, 29.0),
    ("3G", 12.0, 32.0),
    ("4G", 20.0, 45.0),
    ("5G", 29.0, None),
]


def historical_cellular_timeline() -> "TechnologyTimeline":
    """The US cellular generations as a timeline (t=0 is 1990)."""
    generations = [
        Generation(
            name=name,
            launched_at=units.years(launch),
            sunset_at=None if sunset is None else units.years(sunset),
        )
        for name, launch, sunset in HISTORICAL_CELLULAR
    ]
    return TechnologyTimeline(generations=generations)


@dataclass
class TechnologyTimeline:
    """A succession of generations for one wireless family."""

    generations: List[Generation]

    def __post_init__(self) -> None:
        self.generations = sorted(self.generations, key=lambda g: g.launched_at)

    def current(self, t: float) -> Optional[Generation]:
        """The newest generation available at ``t`` (what new devices buy)."""
        live = [g for g in self.generations if g.available(t)]
        if not live:
            return None
        return live[-1]

    def available_at(self, t: float) -> List[Generation]:
        """All generations carrying traffic at ``t``."""
        return [g for g in self.generations if g.available(t)]

    def sunset_of(self, name: str) -> Optional[float]:
        """Sunset time of the named generation (None if unknown name or
        no announced sunset)."""
        for generation in self.generations:
            if generation.name == name:
                return generation.sunset_at
        return None

    def strandings(self, deploy_t: float, horizon: float) -> int:
        """How many times a device bound at ``deploy_t`` must be replaced
        before ``horizon``, if each replacement binds to the then-newest
        generation.

        The §3.4 replacement treadmill, quantified.
        """
        count = 0
        t = deploy_t
        while t < horizon:
            generation = self.current(t)
            if generation is None or generation.sunset_at is None:
                break
            if generation.sunset_at >= horizon:
                break
            t = generation.sunset_at
            count += 1
        return count

    def mean_service_years(self) -> float:
        """Average launch-to-sunset span over closed generations."""
        spans = [g.service_years for g in self.generations if g.service_years]
        if not spans:
            raise ValueError("no closed generations in timeline")
        return float(np.mean(spans))


def synthesize_timeline(
    rng: np.random.Generator,
    horizon: float = units.years(100.0),
    mean_generation_gap: float = units.years(9.0),
    mean_service_life: float = units.years(22.0),
    service_sigma: float = 0.25,
    first_launch: float = 0.0,
) -> TechnologyTimeline:
    """Generate a plausible future generation sequence for Monte-Carlo.

    Launch gaps are exponential around the historical ~9-year cadence;
    service lives are log-normal around ~22 years (the 2G/3G record).
    """
    if mean_generation_gap <= 0.0 or mean_service_life <= 0.0:
        raise ValueError("means must be positive")
    generations: List[Generation] = []
    t = first_launch
    index = 0
    while t < horizon:
        service = float(
            rng.lognormal(np.log(mean_service_life), service_sigma)
        )
        generations.append(
            Generation(name=f"G{index + 1}", launched_at=t, sunset_at=t + service)
        )
        t += float(rng.exponential(mean_generation_gap))
        index += 1
    return TechnologyTimeline(generations=generations)
