"""Operator upgrade policies and their effect on fleet survival.

§2 reports that today's operators "predict lifetimes of 2–7 years until
the system is upgraded" — i.e. *technical* obsolescence is scheduled in
from day one.  ``UpgradePolicy`` captures when an operator replaces a
working fleet; :func:`simulate_fleet_fates` runs a fleet of sampled
hardware lifetimes against a policy and a technology timeline and splits
the outcomes by obsolescence kind — the E12 sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core import units
from .kinds import ObsolescenceKind, ObsolescenceSplit
from .timeline import TechnologyTimeline


@dataclass(frozen=True)
class UpgradePolicy:
    """When an operator retires working devices.

    ``refresh_years`` — scheduled platform refresh (None = never; run to
    failure).  ``follow_sunsets`` — whether devices die with their bound
    technology generation (False models takeaway-compliant devices that
    re-home to replacement infrastructure).
    ``style_refresh_probability`` — annual chance a cosmetic/portfolio
    decision retires the device anyway.
    """

    refresh_years: Optional[float] = 5.0
    follow_sunsets: bool = True
    style_refresh_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.refresh_years is not None and self.refresh_years <= 0.0:
            raise ValueError("refresh_years must be positive or None")
        if not 0.0 <= self.style_refresh_probability <= 1.0:
            raise ValueError("style_refresh_probability must be in [0, 1]")

    @staticmethod
    def run_to_failure() -> "UpgradePolicy":
        """The functional-obsolescence ideal: never retire working gear."""
        return UpgradePolicy(refresh_years=None, follow_sunsets=False)

    @staticmethod
    def todays_operator(refresh_years: float = 5.0) -> "UpgradePolicy":
        """The §2 status quo: scheduled refresh inside 2–7 years."""
        return UpgradePolicy(refresh_years=refresh_years, follow_sunsets=True)


@dataclass(frozen=True)
class FleetFates:
    """Outcome of running one fleet against one policy."""

    split: ObsolescenceSplit
    mean_realized_years: float     # how long devices actually served
    mean_potential_years: float    # how long the hardware could have served
    utilization: float             # realized / potential

    @property
    def wasted_service_years(self) -> float:
        """Mean years of working hardware thrown away per device."""
        return self.mean_potential_years - self.mean_realized_years


def simulate_fleet_fates(
    hardware_lifetimes: np.ndarray,
    policy: UpgradePolicy,
    timeline: Optional[TechnologyTimeline] = None,
    deploy_t: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> FleetFates:
    """Determine each device's end: broke first, refreshed, sunset, or style.

    Each device's realized service ends at the earliest of its hardware
    lifetime, the scheduled refresh, its generation's sunset (when the
    policy follows sunsets), and a sampled style event.
    """
    lifetimes = np.asarray(hardware_lifetimes, dtype=float)
    if lifetimes.ndim != 1 or len(lifetimes) == 0:
        raise ValueError("hardware_lifetimes must be a non-empty 1-D array")
    n = len(lifetimes)

    refresh = (
        np.full(n, np.inf)
        if policy.refresh_years is None
        else np.full(n, units.years(policy.refresh_years))
    )

    sunset = np.full(n, np.inf)
    if policy.follow_sunsets and timeline is not None:
        generation = timeline.current(deploy_t)
        if generation is not None and generation.sunset_at is not None:
            sunset = np.full(n, max(generation.sunset_at - deploy_t, 0.0))

    style = np.full(n, np.inf)
    if policy.style_refresh_probability > 0.0:
        if rng is None:
            raise ValueError("style refresh requires an rng")
        annual = policy.style_refresh_probability
        style = rng.exponential(units.YEAR / annual, size=n)

    ends = np.stack([lifetimes, refresh, sunset, style])
    realized = ends.min(axis=0)
    cause_index = ends.argmin(axis=0)
    kinds = [
        ObsolescenceKind.FUNCTIONAL,
        ObsolescenceKind.TECHNICAL,   # scheduled refresh = technical
        ObsolescenceKind.TECHNICAL,   # sunset = technical
        ObsolescenceKind.STYLE,
    ]
    by_kind = {}
    for index in range(4):
        count = int(np.sum(cause_index == index))
        if count:
            kind = kinds[index]
            by_kind[kind] = by_kind.get(kind, 0) + count
    split = ObsolescenceSplit(total=n, by_kind=by_kind)
    return FleetFates(
        split=split,
        mean_realized_years=float(units.as_years(realized.mean())),
        mean_potential_years=float(units.as_years(lifetimes.mean())),
        utilization=float(realized.mean() / lifetimes.mean()),
    )
