"""Obsolescence taxonomy, technology timelines, and upgrade policies."""

from .kinds import (
    ObsolescenceEvent,
    ObsolescenceKind,
    ObsolescenceSplit,
    classify_reason,
    split_events,
)
from .timeline import (
    HISTORICAL_CELLULAR,
    Generation,
    TechnologyTimeline,
    historical_cellular_timeline,
    synthesize_timeline,
)
from .upgrade import FleetFates, UpgradePolicy, simulate_fleet_fates

__all__ = [
    "ObsolescenceEvent",
    "ObsolescenceKind",
    "ObsolescenceSplit",
    "classify_reason",
    "split_events",
    "HISTORICAL_CELLULAR",
    "Generation",
    "TechnologyTimeline",
    "historical_cellular_timeline",
    "synthesize_timeline",
    "FleetFates",
    "UpgradePolicy",
    "simulate_fleet_fates",
]
