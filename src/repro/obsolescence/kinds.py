"""The paper's taxonomy of obsolescence (§1, footnote 3).

* **Functional** — the device broke; "if it ain't broke, don't fix it"
  is the infrastructure promise the paper wants for electronics.
* **Technical** — a newer/better device supplants it, or an external
  technology change (the 802.11b scale) strands it.
* **Style** — replaced for reasons of personal taste.
* **Planned** — manufacturer-limited life (designed-to-fail components
  or explicit software lockouts).

``ObsolescenceEvent`` records why a device left service, so fleet
studies can report the split the paper cares about: how much working
hardware is being thrown away (everything except functional).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable


class ObsolescenceKind(enum.Enum):
    """Why a device left service."""

    FUNCTIONAL = "functional"   # it broke
    TECHNICAL = "technical"     # something better / infra change
    STYLE = "style"             # taste
    PLANNED = "planned"         # manufacturer-imposed


@dataclass(frozen=True)
class ObsolescenceEvent:
    """One retirement, with its cause."""

    time: float
    entity_name: str
    kind: ObsolescenceKind
    detail: str = ""


@dataclass(frozen=True)
class ObsolescenceSplit:
    """Fleet-level breakdown of why devices left service."""

    total: int
    by_kind: Dict[ObsolescenceKind, int]

    def fraction(self, kind: ObsolescenceKind) -> float:
        """Share of retirements attributable to ``kind``."""
        if self.total == 0:
            return 0.0
        return self.by_kind.get(kind, 0) / self.total

    @property
    def wasted_fraction(self) -> float:
        """Share of retirements where *working* hardware was discarded.

        Everything except functional obsolescence: the quantity the
        paper's whole agenda aims to drive to zero.
        """
        return 1.0 - self.fraction(ObsolescenceKind.FUNCTIONAL)


def split_events(events: Iterable[ObsolescenceEvent]) -> ObsolescenceSplit:
    """Tally retirement causes."""
    by_kind: Dict[ObsolescenceKind, int] = {}
    total = 0
    for event in events:
        total += 1
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    return ObsolescenceSplit(total=total, by_kind=by_kind)


def classify_reason(reason: str) -> ObsolescenceKind:
    """Map the free-text ``reason`` strings used by entities onto kinds.

    The entity layer records reasons like ``"wearout"`` or
    ``"2G-sunset"``; this canonicalizes them for split reporting.
    """
    reason = reason.lower()
    if any(token in reason for token in ("wearout", "fail", "battery", "broke")):
        return ObsolescenceKind.FUNCTIONAL
    if any(token in reason for token in ("sunset", "upgrade", "incompat", "churn", "stranded")):
        return ObsolescenceKind.TECHNICAL
    if any(token in reason for token in ("lockout", "warranty", "eol-by-vendor")):
        return ObsolescenceKind.PLANNED
    if any(token in reason for token in ("style", "taste", "refresh-aesthetic")):
        return ObsolescenceKind.STYLE
    return ObsolescenceKind.FUNCTIONAL
