"""Canned experiment scenarios and Monte-Carlo drivers.

Each scenario is a :class:`FiftyYearConfig` variant probing one of the
paper's questions: both arms as designed, each arm alone, an abandoned
third-party network, an unmaintained owned arm, and the policy ablation
(instance-bound devices / no maintenance) used by E13.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..analysis.uptime import MonteCarloUptime
from ..core import units
from ..core.policy import AttachmentPolicy
from .fifty_year import FiftyYearConfig, FiftyYearExperiment, FiftyYearResult


def as_designed(seed: int = 2021) -> FiftyYearConfig:
    """The paper's §4 experiment: both arms, maintained infrastructure."""
    return FiftyYearConfig(seed=seed)


def owned_only(seed: int = 2021) -> FiftyYearConfig:
    """Only the owned-802.15.4 arm (no Helium devices)."""
    return replace(as_designed(seed), n_lora_devices=0, initial_hotspots=0,
                   hotspot_arrivals_per_year=0.0, wallet_credits=0)


def helium_only(seed: int = 2021) -> FiftyYearConfig:
    """Only the third-party LoRa arm (no owned gateways)."""
    return replace(as_designed(seed), n_154_devices=0, n_owned_gateways=0)


def unmaintained(seed: int = 2021) -> FiftyYearConfig:
    """Set-and-forget everything: owned gateways are never replaced.

    Tests the paper's aspiration against Raspberry-Pi-class MTBF.
    """
    return replace(as_designed(seed), maintain_gateways=False)


def network_collapse(seed: int = 2021, halflife_years: float = 8.0) -> FiftyYearConfig:
    """The Helium bet goes bad: hotspot arrivals decay with ``halflife``.

    The semi-federated hedge (§4.2) exists precisely for this case; the
    scenario shows the third-party arm decaying as the commercial
    network loses participants.
    """
    return replace(as_designed(seed), network_halflife_years=halflife_years)


def instance_bound(seed: int = 2021) -> FiftyYearConfig:
    """Policy ablation: devices authenticated to one specific gateway.

    Violates §3.1's takeaway; every gateway death strands its devices.
    """
    return replace(as_designed(seed), attachment=AttachmentPolicy.INSTANCE_BOUND)


def underfunded_wallet(seed: int = 2021) -> FiftyYearConfig:
    """Wallet sized for ~10 years instead of 50: prepayment runs dry."""
    return replace(as_designed(seed), wallet_credits=100_000 * 12)


def growing_fleet(seed: int = 2021) -> FiftyYearConfig:
    """§4.1: steady addition of new device instances and types over time,
    riding the existing third-party infrastructure."""
    return replace(as_designed(seed), device_additions_per_year=2.0)


def staff_turnover(seed: int = 2021) -> FiftyYearConfig:
    """§4.5: custodian handoffs erode institutional memory, so routine
    obligations (the 10-year domain lease) get fumbled more over time."""
    return replace(
        as_designed(seed), model_succession=True, renewal_miss_probability=0.02
    )


SCENARIOS: Dict[str, Callable[[int], FiftyYearConfig]] = {
    "as-designed": as_designed,
    "owned-only": owned_only,
    "helium-only": helium_only,
    "unmaintained": unmaintained,
    "network-collapse": network_collapse,
    "instance-bound": instance_bound,
    "underfunded-wallet": underfunded_wallet,
    "staff-turnover": staff_turnover,
    "growing-fleet": growing_fleet,
}


def scenario_config(
    name: str,
    seed: int = 2021,
    horizon: Optional[float] = None,
    report_interval: Optional[float] = None,
    overrides: Iterable[Tuple[str, object]] = (),
) -> FiftyYearConfig:
    """Build one named scenario's config with the standard overrides.

    The single place the horizon / report-interval / field-override
    dance happens — :func:`run_scenario`, the CLI's ``run`` command, and
    :class:`repro.runtime.runner.ScenarioTask` all come through here, so
    an override applied interactively means exactly what it means inside
    a Monte-Carlo worker.  ``overrides`` is an iterable of ``(field,
    value)`` pairs (the picklable-task representation), applied last so
    a pair may override even ``horizon`` — the precedence
    :class:`~repro.runtime.runner.ScenarioTask` has always had.
    """
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; options: {sorted(SCENARIOS)}")
    config = SCENARIOS[name](seed)
    updates = {}
    if horizon is not None:
        updates["horizon"] = horizon
    if report_interval is not None:
        updates["report_interval"] = report_interval
    updates.update(dict(overrides))
    if updates:
        config = replace(config, **updates)
    return config


def run_scenario(
    name: str, seed: int = 2021, horizon: Optional[float] = None
) -> FiftyYearResult:
    """Build and run one named scenario."""
    return FiftyYearExperiment(scenario_config(name, seed, horizon=horizon)).run()


def monte_carlo_uptime(
    name: str,
    runs: int = 5,
    base_seed: int = 100,
    horizon: float = units.years(50.0),
    report_interval: Optional[float] = None,
    workers: int = 1,
    faults=None,
    audit: bool = False,
) -> MonteCarloUptime:
    """Overall weekly uptime across independent seeds of one scenario.

    ``report_interval`` overrides the scenario's device cadence — pass a
    coarser interval (e.g. daily) to make many-seed studies cheap; the
    weekly metric is insensitive to any cadence well under a week.

    Runs execute on :class:`repro.runtime.MonteCarloRunner`: per-run
    seeds come from the fork lineage of ``base_seed``, and ``workers``
    fans runs across processes without changing the result — any worker
    count yields bit-identical statistics.  ``faults`` (an optional
    :class:`~repro.faults.FaultPlan`) is injected identically into every
    run; ``audit=True`` attaches the invariant auditor in collect mode.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; options: {sorted(SCENARIOS)}")
    # Deliberate lazy inversion: runtime imports experiment lazily in its
    # workers, and this convenience wrapper reaches back up only at call
    # time, so no import cycle materialises.
    from ..runtime import MonteCarloRunner, ScenarioTask  # simlint: ignore[SL006]

    task = ScenarioTask(
        scenario=name,
        horizon=horizon,
        report_interval=report_interval,
        faults=faults,
        audit=audit,
    )
    runner = MonteCarloRunner(
        task, runs=runs, base_seed=base_seed, workers=workers
    )
    return runner.run().uptime
