"""The §4 fifty-year experiment harness and canned scenarios."""

from .fifty_year import (
    ArmResult,
    FiftyYearConfig,
    FiftyYearExperiment,
    FiftyYearResult,
)
from .succession import (
    Custodian,
    SuccessionConfig,
    SuccessionModel,
    expected_handoffs,
)
from .scenarios import (
    SCENARIOS,
    as_designed,
    growing_fleet,
    helium_only,
    instance_bound,
    monte_carlo_uptime,
    network_collapse,
    owned_only,
    run_scenario,
    scenario_config,
    staff_turnover,
    underfunded_wallet,
    unmaintained,
)

__all__ = [
    "ArmResult",
    "FiftyYearConfig",
    "FiftyYearExperiment",
    "FiftyYearResult",
    "Custodian",
    "SuccessionConfig",
    "SuccessionModel",
    "expected_handoffs",
    "SCENARIOS",
    "as_designed",
    "growing_fleet",
    "helium_only",
    "instance_bound",
    "monte_carlo_uptime",
    "network_collapse",
    "owned_only",
    "run_scenario",
    "scenario_config",
    "staff_turnover",
    "underfunded_wallet",
    "unmaintained",
]
