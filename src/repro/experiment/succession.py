"""Experimenter succession over a 50-year study (§4.5).

"It will also include a log of the experimenters, as the nature of a
50-year experiment is such that those who start it will most likely be
retired by the time it is complete!"

Institutional memory is a failure mode like any other: each handoff
loses context, and lost context turns routine upkeep (domain renewals,
wallet top-ups, gateway spares) into misses.  ``SuccessionModel``
generates the custodian timeline and an effective miss-probability that
grows with handoffs — pluggable into the 50-year experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core import units


@dataclass(frozen=True)
class Custodian:
    """One person-era of the experiment."""

    name: str
    starts_at: float
    ends_at: float
    generation: int

    @property
    def tenure_years(self) -> float:
        """Years this custodian held the experiment."""
        return units.as_years(self.ends_at - self.starts_at)


@dataclass(frozen=True)
class SuccessionConfig:
    """Turnover and knowledge-decay parameters.

    ``mean_tenure_years`` — academic custodians (PhD student → postdoc →
    faculty career stage changes) turn over every handful of years.
    ``handoff_retention`` — fraction of operational knowledge that
    survives each handoff; documentation quality is the lever.
    """

    mean_tenure_years: float = 7.0
    tenure_sigma: float = 0.4
    handoff_retention: float = 0.85
    base_miss_probability: float = 0.02

    def __post_init__(self) -> None:
        if self.mean_tenure_years <= 0.0:
            raise ValueError("mean_tenure_years must be positive")
        if not 0.0 < self.handoff_retention <= 1.0:
            raise ValueError("handoff_retention must be in (0, 1]")
        if not 0.0 <= self.base_miss_probability <= 1.0:
            raise ValueError("base_miss_probability must be in [0, 1]")


@dataclass
class SuccessionModel:
    """The custodian timeline for one experiment run."""

    config: SuccessionConfig = field(default_factory=SuccessionConfig)
    custodians: List[Custodian] = field(default_factory=list)

    def generate(self, horizon: float, rng: np.random.Generator) -> List[Custodian]:
        """Sample the succession of custodians over ``horizon`` seconds."""
        if horizon <= 0.0:
            raise ValueError("horizon must be positive")
        self.custodians = []
        t = 0.0
        generation = 0
        while t < horizon:
            tenure = float(
                rng.lognormal(
                    np.log(units.years(self.config.mean_tenure_years)),
                    self.config.tenure_sigma,
                )
            )
            end = min(t + tenure, horizon)
            self.custodians.append(
                Custodian(
                    name=f"custodian-{generation + 1}",
                    starts_at=t,
                    ends_at=end,
                    generation=generation,
                )
            )
            t = end
            generation += 1
        return self.custodians

    def custodian_at(self, t: float) -> Custodian:
        """Who holds the experiment at time ``t``."""
        if not self.custodians:
            raise RuntimeError("call generate() first")
        for custodian in self.custodians:
            if custodian.starts_at <= t < custodian.ends_at:
                return custodian
        return self.custodians[-1]

    def handoffs_by(self, t: float) -> int:
        """Completed handoffs up to time ``t``."""
        if not self.custodians:
            raise RuntimeError("call generate() first")
        return sum(1 for c in self.custodians if c.ends_at <= t)

    def knowledge_at(self, t: float) -> float:
        """Surviving operational knowledge at ``t`` (1.0 = founder era)."""
        return self.config.handoff_retention ** self.handoffs_by(t)

    def miss_probability_at(self, t: float) -> float:
        """Chance a routine obligation is fumbled at time ``t``.

        Scales inversely with surviving knowledge: a renewal the founder
        would never miss becomes a coin-flip for custodian five with
        poor documentation.
        """
        knowledge = self.knowledge_at(t)
        if knowledge <= 0.0:
            return 1.0
        return min(1.0, self.config.base_miss_probability / knowledge)

    def roster(self) -> List[str]:
        """The §4.5 experimenter log."""
        return [
            f"{c.name}: years {units.as_years(c.starts_at):.1f}"
            f"-{units.as_years(c.ends_at):.1f} ({c.tenure_years:.1f} yr)"
            for c in self.custodians
        ]


def expected_handoffs(horizon_years: float, mean_tenure_years: float = 7.0) -> float:
    """Back-of-envelope handoff count for a study of ``horizon_years``.

    >>> expected_handoffs(50.0, 7.0) > 6.0
    True
    """
    if horizon_years <= 0.0 or mean_tenure_years <= 0.0:
        raise ValueError("years must be positive")
    return horizon_years / mean_tenure_years
