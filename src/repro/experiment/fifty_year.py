"""The 50-year experiment (§4), end to end.

Assembles the paper's design: energy-harvesting transmit-only devices on
two radios; an *owned-infrastructure* arm (802.15.4 gateways we deploy
and maintain, on a campus backhaul) and a *third-party* arm (Helium-like
LoRa hotspots we pay with a prepaid wallet); one public endpoint with
the weekly-uptime metric and the 10-year domain-lease treadmill.

The top-level constraint holds: deployed devices are never touched.
Gateways and backhaul may be maintained; every intervention lands in the
maintenance ledger and the public diary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.diary import ExperimentDiary
from ..analysis.uptime import interval_coverage
from ..core import units
from ..core.engine import Simulation
from ..core.policy import AttachmentPolicy
from ..energy.harvester import HarvestingSystem
from ..energy.sources import source_by_name
from ..energy.storage import Capacitor
from ..net.backhaul import CampusBackhaul
from ..net.cloud import CloudEndpoint, UptimeReport
from ..net.device import EdgeDevice
from ..net.gateway import OwnedGateway
from ..net.geometry import Position, grid_positions, uniform_positions
from ..net.helium import ChurnModel, DataCreditWallet, HeliumNetwork
from ..net.topology import GatewayIndex
from ..radio import ieee802154
from ..radio.link import coverage_radius_m
from ..radio.lora import LoRaParameters
from ..reliability.components import energy_harvesting_device, gateway_platform
from ..reliability.maintenance import MaintenanceLedger


@dataclass(frozen=True)
class FiftyYearConfig:
    """Parameters of one 50-year run.

    ``report_interval`` defaults to 6 h rather than the paper's hourly
    cadence purely for simulation cost; the weekly uptime metric is
    insensitive to the difference (both are >> weekly), and benches that
    audit credits use the paper's hourly arithmetic independently.
    """

    seed: int = 2021
    horizon: float = units.years(50.0)
    extent_m: float = 4_000.0

    # Devices (never touched after deployment).
    n_154_devices: int = 6
    n_lora_devices: int = 6
    report_interval: float = units.hours(6.0)
    payload_bytes: int = 24
    harvester: str = "cathodic"
    storage_j: float = 3.0

    # Owned arm.
    n_owned_gateways: int = 3
    maintain_gateways: bool = True
    gateway_replace_delay: float = units.days(21.0)
    gateway_swap_hours: float = 3.0
    gateway_hardware_usd: float = 900.0

    # Third-party arm.
    initial_hotspots: int = 40
    hotspot_arrivals_per_year: float = 8.0
    hotspot_median_tenure_years: float = 3.0
    network_halflife_years: Optional[float] = None
    wallet_credits: int = 500_000 * 12   # paper's per-device wallet x fleet

    # Fleet growth: §4.1 "we imagine the steady addition of new
    # instances and types of devices" — LoRa devices added per year,
    # cycling through harvester types, riding the existing third-party
    # infrastructure (the ease-of-deployment benefit).
    device_additions_per_year: float = 0.0
    addition_harvesters: tuple = ("cathodic", "solar", "vibration")

    # Longitudinal trust (§4.1): when True, every device's immutable
    # factory key is commissioned in a backend TrustRegistry; gateways
    # sync their blocklists from it yearly, so data from aged-out or
    # compromised devices stops being forwarded even though the
    # hardware keeps transmitting.
    model_trust: bool = False
    signing_scheme: str = "ed25519"

    # Endpoint & management.
    renewal_miss_probability: float = 0.1
    #: When True, domain-renewal misses follow an experimenter-
    #: succession model (knowledge decays at each custodian handoff,
    #: §4.5) instead of the constant probability above.
    model_succession: bool = False
    attachment: AttachmentPolicy = AttachmentPolicy.ANY_COMPATIBLE


@dataclass
class ArmResult:
    """Per-arm outcome of a run."""

    arm: str
    device_names: List[str]
    weekly_uptime: float
    longest_gap_weeks: int
    devices_alive_at_end: int
    delivered: int
    attempts: int

    @property
    def delivery_rate(self) -> float:
        """Delivered / attempted across the arm's devices."""
        if self.attempts == 0:
            return 0.0
        return self.delivered / self.attempts


@dataclass
class FiftyYearResult:
    """Everything §4.5 promises to publish."""

    config: FiftyYearConfig
    overall: UptimeReport
    arms: Dict[str, ArmResult]
    maintenance: MaintenanceLedger
    diary: ExperimentDiary
    wallet: DataCreditWallet
    gateway_replacements: int
    device_touches: int

    def summary_lines(self) -> List[str]:
        """Headline rows for benchmark output."""
        lines = [
            f"overall weekly uptime: {self.overall.uptime:.4f} "
            f"(longest gap {self.overall.longest_gap_weeks} wk)",
        ]
        for arm in self.arms.values():
            lines.append(
                f"{arm.arm}: uptime={arm.weekly_uptime:.4f} "
                f"delivery={arm.delivery_rate:.3f} "
                f"alive={arm.devices_alive_at_end}/{len(arm.device_names)}"
            )
        lines.append(
            f"maintenance: {self.maintenance.total_hours():.1f} person-hours, "
            f"${self.maintenance.total_cost():.0f}, "
            f"device touches: {self.device_touches}"
        )
        lines.append(
            f"wallet: spent {self.wallet.spent} credits, "
            f"{self.wallet.balance} remaining, refusals {self.wallet.refusals}"
        )
        return lines


class FiftyYearExperiment:
    """Builds and runs one instance of the §4 experiment."""

    def __init__(self, config: FiftyYearConfig = FiftyYearConfig()) -> None:
        self.config = config
        self.sim = Simulation(seed=config.seed)
        self.ledger = MaintenanceLedger()
        self.diary = ExperimentDiary()
        self.endpoint: Optional[CloudEndpoint] = None
        self.campus: Optional[CampusBackhaul] = None
        self.owned_gateways: List[OwnedGateway] = []
        self.helium: Optional[HeliumNetwork] = None
        self.devices_154: List[EdgeDevice] = []
        self.devices_lora: List[EdgeDevice] = []
        self.gateway_replacements = 0
        self.succession = None
        self.trust_registry = None
        self._built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Assemble and deploy the full system at t=0."""
        if self._built:
            raise RuntimeError("experiment already built")
        self._built = True
        config = self.config

        self.endpoint = CloudEndpoint(
            self.sim,
            renewal_miss_probability=config.renewal_miss_probability,
        )
        self.succession: Optional["SuccessionModel"] = None
        if config.model_succession:
            from .succession import SuccessionConfig, SuccessionModel

            self.succession = SuccessionModel(
                config=SuccessionConfig(
                    base_miss_probability=config.renewal_miss_probability
                )
            )
            self.succession.generate(config.horizon, self.sim.rng("succession"))
            self.endpoint.miss_probability_fn = self.succession.miss_probability_at
            for line in self.succession.roster():
                self.diary.note(0.0, "handoff", f"(planned) {line}")
        self.endpoint.deploy()

        self._build_owned_arm()
        self._build_third_party_arm()
        if config.device_additions_per_year > 0.0:
            self._schedule_device_addition()
        if config.model_trust:
            self._setup_trust()
        self.diary.note(0.0, "milestone", "experiment commenced")

    def _setup_trust(self) -> None:
        from ..net.trust import TrustRegistry

        self.trust_registry = TrustRegistry(rng=self.sim.rng("trust"))
        for device in (*self.devices_154, *self.devices_lora):
            self.trust_registry.commission(
                device.name, self.config.signing_scheme, at=self.sim.now
            )
        self.sim.every(units.YEAR, self._sync_blocklists, label="trust-sync")

    def _sync_blocklists(self) -> None:
        """Yearly backend policy push: gateways refuse untrusted devices."""
        registry = self.trust_registry
        # Late-added devices get commissioned on the next sync.
        for device in (*self.devices_154, *self.devices_lora):
            if device.name not in registry.records:
                registry.commission(
                    device.name, self.config.signing_scheme, at=self.sim.now
                )
        blocklist = set(registry.blocklist_at(self.sim.now))
        for gateway in (*self.owned_gateways, *self.helium.hotspots):
            gateway.blocklist = set(blocklist)

    def _build_owned_arm(self) -> None:
        config = self.config
        self.campus = CampusBackhaul(self.sim, name="campus-net")
        self.campus.add_dependency(self.endpoint)
        self.campus.deploy()

        rng = self.sim.rng("placement")
        if config.n_owned_gateways <= 0:
            cluster = []
        else:
            cluster = uniform_positions(
                config.n_owned_gateways, config.extent_m / 8.0, rng
            )
        for position in cluster:
            self._deploy_owned_gateway(position)
        if config.n_154_devices <= 0 or not cluster:
            return

        # One shared spatial index over the live owned gateways; cell
        # size tracks the device radio's coverage radius.  Replaces the
        # old directory callable (a full alive-list rebuild per device
        # per topology change) with nearest-hearing range queries —
        # trace-identical, see GatewayIndex.
        owned_index = GatewayIndex(
            self.sim,
            lambda: [g for g in self.owned_gateways if g.alive],
            cell_size_m=max(
                coverage_radius_m(
                    ieee802154.default_spec(), ieee802154.urban_path_loss(), 0.5
                ),
                50.0,
            ),
        )
        spacing = 60.0
        for index, offset in enumerate(
            grid_positions(config.n_154_devices, spacing_m=spacing)
        ):
            anchor = cluster[index % len(cluster)]
            position = Position(anchor.x + offset.x - spacing, anchor.y + offset.y - spacing)
            device = self._make_device(
                technology="802.15.4",
                spec=ieee802154.default_spec(),
                airtime=ieee802154.airtime_s(config.payload_bytes),
                position=position,
            )
            # Static link to the nearest gateway at commissioning time:
            # an instance-bound device lives and dies with this link; a
            # compliant device additionally discovers live gateways.
            nearest = min(
                self.owned_gateways,
                key=lambda g: device.position.distance_sq_to(g.position),
            )
            device.add_dependency(nearest)
            device.gateway_index = owned_index
            device.deploy()
            self.devices_154.append(device)

    def _deploy_owned_gateway(self, position: Position) -> OwnedGateway:
        gateway = OwnedGateway(
            self.sim,
            spec=ieee802154.default_spec(tx_power_dbm=4.0),
            path_loss=ieee802154.urban_path_loss(),
            position=position,
        )
        gateway.add_dependency(self.campus)
        original_on_end = gateway.on_end

        def on_end(reason: str, _gw=gateway, _orig=original_on_end) -> None:
            _orig(reason)
            self._gateway_down(_gw, reason)

        gateway.on_end = on_end  # type: ignore[method-assign]
        gateway.deploy()
        # Raspberry-Pi-class hardware wears out; arm its failure clock.
        from ..reliability.failure import FailureProcess

        FailureProcess(
            self.sim, gateway, gateway_platform(networked=True), stream="gateway-hw"
        ).arm()
        self.owned_gateways.append(gateway)
        return gateway

    def _gateway_down(self, gateway: OwnedGateway, reason: str) -> None:
        self.diary.note(
            self.sim.now, "incident", f"gateway {gateway.name} down ({reason})"
        )
        if not self.config.maintain_gateways:
            return
        position = gateway.position

        def replace() -> None:
            controller = self.sim.fault_controller
            if controller is not None and controller.maintenance_suppressed(
                self.sim.now
            ):
                # Injected maintenance no-show: nobody answers the pager.
                # The visit is deferred to the window's end, and the
                # missed appointment goes in the public diary.
                resume_at = controller.suppression_ends(self.sim.now)
                self.diary.note(
                    self.sim.now,
                    "incident",
                    f"maintenance no-show: replacement of {gateway.name} "
                    f"deferred",
                )
                self.sim.call_at(
                    resume_at, replace, label=f"replace-deferred:{gateway.name}"
                )
                return
            from ..net.commissioning import commission_replacement

            successor = self._deploy_owned_gateway(position)
            report = commission_replacement(
                gateway,
                successor,
                rng=self.sim.rng("commissioning"),
                rehome_allowed=self.config.attachment
                is AttachmentPolicy.ANY_COMPATIBLE,
            )
            self.gateway_replacements += 1
            self.ledger.log(
                self.sim.now,
                tier="gateway",
                target=gateway.name,
                action="replace",
                labor_hours=self.config.gateway_swap_hours + report.labor_hours,
                cost_usd=self.config.gateway_hardware_usd,
            )
            detail = (
                f"replaced gateway {gateway.name}: "
                f"{report.migrated_devices} migrated"
            )
            if report.stranded_devices:
                detail += f", {report.stranded_devices} stranded"
            self.diary.note(self.sim.now, "maintenance", detail)

        self.sim.call_in(self.config.gateway_replace_delay, replace)

    def _build_third_party_arm(self) -> None:
        config = self.config
        wallet = DataCreditWallet()
        if config.wallet_credits > 0:
            cost = wallet.provision(config.wallet_credits)
            self.diary.note(
                0.0, "cost", f"provisioned {config.wallet_credits} credits (${cost:.2f})"
            )
        self.helium = HeliumNetwork(
            self.sim,
            self.endpoint,
            extent_m=config.extent_m,
            initial_hotspots=config.initial_hotspots,
            arrivals_per_year=config.hotspot_arrivals_per_year,
            churn=ChurnModel(
                median_tenure_years=config.hotspot_median_tenure_years,
                halflife_years=config.network_halflife_years,
            ),
            wallet=wallet,
        )
        # Expose the non-entity fault targets: WalletDrain acts on
        # ``resources["wallet"]`` and the invariant auditor cross-checks
        # the Helium live-hotspot cache through ``resources["helium"]``.
        self.sim.resources["wallet"] = wallet
        self.sim.resources["helium"] = self.helium
        if config.n_lora_devices <= 0:
            return
        lora = LoRaParameters(spreading_factor=10)
        rng = self.sim.rng("placement")
        for position in uniform_positions(config.n_lora_devices, config.extent_m, rng):
            device = self._make_device(
                technology="lora",
                spec=lora.spec(),
                airtime=lora.airtime_s(config.payload_bytes),
                position=position,
            )
            # Bind to the nearest hotspot of the day (the instance an
            # instance-bound device would be commissioned against).
            if self.helium.hotspots:
                nearest = min(
                    self.helium.hotspots,
                    key=lambda h: device.position.distance_sq_to(h.position),
                )
                device.add_dependency(nearest)
            device.gateway_index = self.helium.live_index()
            device.deploy()
            self.devices_lora.append(device)

    def _schedule_device_addition(self) -> None:
        rng = self.sim.rng("fleet-growth")
        gap = float(rng.exponential(units.YEAR / self.config.device_additions_per_year))
        self.sim.call_in(gap, self._add_device, label="device-addition")

    def _add_device(self) -> None:
        """Deploy one new LoRa device of the next harvester type (§4.1).

        New devices ride the existing third-party infrastructure —
        nothing but the edge device itself is deployed, which is exactly
        the ease-of-deployment benefit the paper claims for stable,
        trusted infrastructure.
        """
        if self.helium is None:
            return
        config = self.config
        added = len(self.devices_lora)
        harvester = config.addition_harvesters[
            added % len(config.addition_harvesters)
        ]
        lora = LoRaParameters(spreading_factor=10)
        rng = self.sim.rng("placement")
        position = uniform_positions(1, config.extent_m, rng)[0]
        device = self._make_device(
            technology="lora",
            spec=lora.spec(),
            airtime=lora.airtime_s(config.payload_bytes),
            position=position,
            harvester=harvester,
        )
        device.gateway_index = self.helium.live_index()
        device.deploy()
        self.devices_lora.append(device)
        self.diary.note(
            self.sim.now,
            "milestone",
            f"added device {device.name} ({harvester} harvester)",
        )
        self._schedule_device_addition()

    def _make_device(
        self,
        technology: str,
        spec,
        airtime: float,
        position: Position,
        harvester: Optional[str] = None,
    ) -> EdgeDevice:
        config = self.config
        harvester = harvester or config.harvester
        power = HarvestingSystem(
            source=source_by_name(harvester),
            storage=Capacitor(
                capacity_j=config.storage_j, stored_j=config.storage_j / 2.0
            ),
        )
        embedded = harvester == "cathodic"
        return EdgeDevice(
            self.sim,
            technology=technology,
            spec=spec,
            airtime_s=airtime,
            report_interval=config.report_interval,
            payload_bytes=config.payload_bytes,
            position=position,
            power=power,
            lifetime_model=energy_harvesting_device(harvester, embedded=embedded),
            attachment=config.attachment,
        )

    # ------------------------------------------------------------------
    # Execution & results
    # ------------------------------------------------------------------
    def run(self) -> FiftyYearResult:
        """Run to the horizon and assemble the published results."""
        if not self._built:
            self.build()
        self.sim.run_until(self.config.horizon)
        return self._collect()

    def _collect(self) -> FiftyYearResult:
        horizon = self.config.horizon
        overall = self.endpoint.weekly_uptime(0.0, horizon)
        arms = {
            "owned-802.15.4": self._arm_result("owned-802.15.4", self.devices_154),
            "helium-lora": self._arm_result("helium-lora", self.devices_lora),
        }
        self.diary.from_sim_log(self.sim)
        device_touches = self.ledger.device_touches()
        return FiftyYearResult(
            config=self.config,
            overall=overall,
            arms=arms,
            maintenance=self.ledger,
            diary=self.diary,
            wallet=self.helium.wallet,
            gateway_replacements=self.gateway_replacements,
            device_touches=device_touches,
        )

    def _arm_result(self, arm: str, devices: List[EdgeDevice]) -> ArmResult:
        names = {d.name for d in devices}
        arrivals = [
            r.received_at
            for r in self.endpoint.deliveries
            if r.packet.source in names
        ]
        horizon = self.config.horizon
        uptime = interval_coverage(arrivals, 0.0, horizon) if arrivals else 0.0
        # Longest silent stretch in weeks for the arm.
        from ..analysis.uptime import longest_gap

        gap_weeks = int(longest_gap(arrivals, 0.0, horizon) // units.WEEK)
        return ArmResult(
            arm=arm,
            device_names=sorted(names),
            weekly_uptime=uptime,
            longest_gap_weeks=gap_weeks,
            devices_alive_at_end=sum(1 for d in devices if d.alive),
            delivered=sum(d.delivered for d in devices),
            attempts=sum(d.attempts for d in devices),
        )
