"""CSV export of the figure-grade data series.

The benchmarks print table rows; dashboards and plots want the full
series.  Each ``*_series`` function returns ``(header, rows)`` ready for
:func:`write_csv`, covering the library's figure-shaped outputs:
coverage-over-time (Ship of Theseus), cumulative TCO, survival curves,
and generic sweeps.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

from ..core import units
from ..core.lifetime import FleetTimeline
from ..core.rng import RandomStreams
from ..reliability.survival import SurvivalCurve

Header = Sequence[str]
Rows = List[Sequence[float]]


def write_csv(path, header: Header, rows: Iterable[Sequence]) -> Path:
    """Write one series to ``path``; returns the resolved path."""
    path = Path(path)
    if not header:
        raise ValueError("header must be non-empty")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            if len(row) != len(header):
                raise ValueError(
                    f"row width {len(row)} != header width {len(header)}"
                )
            writer.writerow(row)
    return path


def coverage_series(
    timeline: FleetTimeline, horizon: float, step: float = units.YEAR
) -> Tuple[Header, Rows]:
    """(years, coverage) for one fleet timeline — the E11 figure."""
    times, coverage = timeline.coverage_series(horizon, step)
    rows = [
        (round(units.as_years(float(t)), 4), round(float(c), 6))
        for t, c in zip(times, coverage)
    ]
    return ("years", "coverage"), rows


def survival_series(curve: SurvivalCurve, time_unit: float = units.YEAR) -> Tuple[Header, Rows]:
    """(time, survival) step points — the E10 figure."""
    rows = [(0.0, 1.0)]
    for t, s in zip(curve.times, curve.survival):
        rows.append((round(float(t) / time_unit, 6), round(float(s), 6)))
    return ("time", "survival"), rows


def tco_series_rows(points) -> Tuple[Header, Rows]:
    """(years, fiber, cellular) from :func:`repro.econ.tco_series` — E5."""
    rows = [
        (point.years, round(point.fiber_usd, 2), round(point.cellular_usd, 2))
        for point in points
    ]
    return ("years", "fiber_usd", "cellular_usd"), rows


def sweep_series(
    xs: Sequence[float], ys: Sequence[float], x_name: str, y_name: str
) -> Tuple[Header, Rows]:
    """A generic two-column sweep (density, error; devices, delivery; ...)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must share length")
    return (x_name, y_name), [(float(x), float(y)) for x, y in zip(xs, ys)]


def export_all_figures(out_dir, seed: int = 2021) -> List[Path]:
    """Regenerate every figure-grade series into ``out_dir`` as CSVs.

    One file per figure: E5 TCO curves, E10 survival curves, E11
    coverage timelines, E14 error-vs-spacing, E15 delivery-vs-density.
    """
    from ..city.airquality import PollutionFieldConfig, density_study
    from ..core.lifetime import en_masse_fleet, pipelined_fleet
    from ..econ.backhaul_tco import tco_series
    from ..radio import LoRaParameters, density_sweep
    from ..reliability.components import (
        battery_powered_device,
        energy_harvesting_device,
    )
    from ..reliability.survival import kaplan_meier

    out_dir = Path(out_dir)
    rng = RandomStreams(seed).get("analysis.export")
    written: List[Path] = []

    # E5 — TCO curves.
    header, rows = tco_series_rows(tco_series(100, horizon_years=50.0))
    written.append(write_csv(out_dir / "e05_tco.csv", header, rows))

    # E10 — survival curves for both archetypes.
    window = units.years(50.0)
    for label, model in (
        ("battery", battery_powered_device()),
        ("harvesting", energy_harvesting_device()),
    ):
        lifetimes = model.sample(rng, 4000)
        curve = kaplan_meier(lifetimes.clip(max=window), lifetimes <= window)
        header, rows = survival_series(curve)
        written.append(write_csv(out_dir / f"e10_survival_{label}.csv", header, rows))

    # E11 — coverage timelines.
    battery = battery_powered_device()
    sampler = lambda n: battery.sample(rng, n)
    horizon = units.years(100.0)
    for label, timeline in (
        (
            "pipelined",
            pipelined_fleet(600, sampler, units.years(8.0), horizon, batches=12),
        ),
        ("en_masse", en_masse_fleet(600, sampler)),
    ):
        header, rows = coverage_series(timeline, horizon)
        written.append(write_csv(out_dir / f"e11_coverage_{label}.csv", header, rows))

    # E14 — reconstruction error vs sensor spacing.
    config = PollutionFieldConfig(extent_m=6_000.0)
    results = density_study(config, [100.0, 200.0, 400.0, 800.0, 1600.0], rng)
    header, rows = sweep_series(
        [r.spacing_m for r in results],
        [r.normalized_rmse for r in results],
        "spacing_m",
        "normalized_rmse",
    )
    written.append(write_csv(out_dir / "e14_air_quality.csv", header, rows))

    # E15 — delivery vs density for LoRa SF10.
    sweep = density_sweep(
        LoRaParameters(spreading_factor=10).airtime_s(24),
        units.HOUR,
        (10, 50, 100, 500, 1000, 5000, 20000),
    )
    header, rows = sweep_series(
        [p.devices for p in sweep],
        [p.delivery_probability for p in sweep],
        "devices",
        "delivery_probability",
    )
    written.append(write_csv(out_dir / "e15_channel.csv", header, rows))

    return written
