"""Paper-vs-measured reporting for the benchmark suite.

``PaperComparison`` is the standard row format every benchmark emits so
EXPERIMENTS.md stays uniform.  The experimental diary itself lives in
:mod:`repro.analysis.diary` (sim layers carry a diary during runs, and
simlint SL006 forbids them from importing this presentation module);
``DiaryEntry``/``ExperimentDiary`` are re-exported here for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .diary import DiaryEntry, ExperimentDiary

__all__ = [
    "DiaryEntry",
    "ExperimentDiary",
    "PaperComparison",
    "comparison_table",
]


@dataclass(frozen=True)
class PaperComparison:
    """One paper-claim-vs-measured row for EXPERIMENTS.md."""

    experiment: str        # e.g. "E1"
    claim: str             # the paper's statement
    paper_value: str       # the number the paper gives
    measured_value: str    # what our reproduction produced
    holds: bool            # does the shape/number hold?
    note: str = ""

    def format(self) -> str:
        """Markdown table row."""
        status = "HOLDS" if self.holds else "DIFFERS"
        return (
            f"| {self.experiment} | {self.claim} | {self.paper_value} "
            f"| {self.measured_value} | {status} | {self.note} |"
        )


def comparison_table(rows: List[PaperComparison]) -> str:
    """Render a full markdown paper-vs-measured table."""
    header = (
        "| Exp | Claim | Paper | Measured | Status | Note |\n"
        "|-----|-------|-------|----------|--------|------|"
    )
    return "\n".join([header, *(row.format() for row in rows)])
