"""AS/ISP concentration analysis for third-party gateway backhaul.

§4.3's preliminary measurement: of ~12,400 Helium gateways with public
IP addresses, Comcast/Spectrum/Verizon serve roughly half; 50 % of nodes
sit in just ten ASes while the long tail extends to nearly 200 unique
ASes.  We synthesize AS assignments from a Zipf-Mandelbrot law fit to
exactly those facts, and provide the concentration metrics the paper
quotes so the synthetic population can be validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

#: The paper's §4.3 measurement (footnote 5).
PAPER_GATEWAY_COUNT: int = 12_400
PAPER_TOP10_SHARE: float = 0.50
PAPER_UNIQUE_ASES: int = 200

#: The three residential ISPs the paper names, with illustrative ASNs.
NAMED_ISPS: Dict[str, int] = {
    "Comcast": 7922,
    "Spectrum": 20115,
    "Verizon": 701,
}


@dataclass(frozen=True)
class ConcentrationReport:
    """Concentration metrics over an AS assignment."""

    total_nodes: int
    unique_ases: int
    top10_share: float
    top1_share: float
    named_isp_share: float
    hhi: float  # Herfindahl–Hirschman index of AS shares

    def matches_paper(
        self, share_tolerance: float = 0.08, as_tolerance: int = 40
    ) -> bool:
        """True if the synthetic population matches the §4.3 measurement."""
        return (
            abs(self.top10_share - PAPER_TOP10_SHARE) <= share_tolerance
            and abs(self.unique_ases - PAPER_UNIQUE_ASES) <= as_tolerance
        )


def zipf_mandelbrot_weights(n_ases: int, exponent: float, offset: float) -> np.ndarray:
    """Normalized rank-frequency weights ``(rank + offset)^-exponent``."""
    if n_ases <= 0:
        raise ValueError("n_ases must be positive")
    if exponent <= 0.0:
        raise ValueError("exponent must be positive")
    if offset < 0.0:
        raise ValueError("offset must be non-negative")
    ranks = np.arange(1, n_ases + 1, dtype=float)
    weights = (ranks + offset) ** (-exponent)
    return weights / weights.sum()


def calibrate_exponent(
    n_ases: int = PAPER_UNIQUE_ASES,
    target_top10: float = PAPER_TOP10_SHARE,
    offset: float = 2.0,
) -> float:
    """Find the Zipf-Mandelbrot exponent whose top-10 mass hits the target.

    Bisection on the monotone relationship between exponent and head
    concentration.
    """
    if not 0.0 < target_top10 < 1.0:
        raise ValueError("target_top10 must be in (0, 1)")
    lo, hi = 0.05, 5.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        top10 = zipf_mandelbrot_weights(n_ases, mid, offset)[:10].sum()
        if top10 < target_top10:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def synthesize_assignments(
    n_nodes: int = PAPER_GATEWAY_COUNT,
    n_ases: int = PAPER_UNIQUE_ASES,
    rng: Optional[np.random.Generator] = None,
    exponent: Optional[float] = None,
    offset: float = 2.0,
) -> List[int]:
    """Draw an ASN per node matching the paper's concentration.

    ASNs are the named ISPs' real ASNs for the top three ranks, then
    synthetic ASNs (64512 + rank) for the tail.
    """
    if rng is None:
        raise ValueError("an rng is required")
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if exponent is None:
        exponent = calibrate_exponent(n_ases=n_ases, offset=offset)
    weights = zipf_mandelbrot_weights(n_ases, exponent, offset)
    named = list(NAMED_ISPS.values())
    asns = named + [64512 + rank for rank in range(len(named), n_ases)]
    draws = rng.choice(len(asns), size=n_nodes, p=weights)
    return [asns[i] for i in draws]


def concentration(assignments: Sequence[int]) -> ConcentrationReport:
    """Compute the §4.3 metrics over a list of per-node ASNs."""
    if not assignments:
        raise ValueError("assignments must be non-empty")
    values, counts = np.unique(np.asarray(assignments), return_counts=True)
    order = np.argsort(-counts)
    counts = counts[order]
    values = values[order]
    total = counts.sum()
    shares = counts / total
    named = set(NAMED_ISPS.values())
    named_mass = sum(
        share for asn, share in zip(values, shares) if int(asn) in named
    )
    return ConcentrationReport(
        total_nodes=int(total),
        unique_ases=len(values),
        top10_share=float(shares[:10].sum()),
        top1_share=float(shares[0]),
        named_isp_share=float(named_mass),
        hhi=float(np.sum(shares**2)),
    )


def survival_correlation_groups(assignments: Sequence[int]) -> Dict[int, int]:
    """Node count per AS — the correlated-failure domains.

    An AS-wide outage (or business failure) takes down every gateway it
    serves at once; this is the long-horizon risk hiding behind the
    §4.3 concentration numbers.
    """
    groups: Dict[int, int] = {}
    for asn in assignments:
        groups[asn] = groups.get(asn, 0) + 1
    return groups
