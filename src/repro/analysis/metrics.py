"""Generic statistical summaries for benchmark output.

Benchmarks print rows; these helpers keep the rows honest: means with
confidence intervals, ratio comparisons with direction ("who wins, by
roughly what factor"), and crossover detection on series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean and spread of a sample."""

    n: int
    mean: float
    std: float
    ci95_half_width: float

    @property
    def ci95(self) -> Tuple[float, float]:
        """The 95 % confidence interval for the mean (normal approx)."""
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def format(self, digits: int = 3) -> str:
        """Compact ``mean ± hw`` rendering."""
        return f"{self.mean:.{digits}g} ± {self.ci95_half_width:.{digits}g}"


def summarize_samples(samples: Sequence[float]) -> Summary:
    """Summary statistics with a normal-approximation 95 % CI.

    >>> s = summarize_samples([1.0, 2.0, 3.0])
    >>> s.mean
    2.0
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or len(arr) == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    n = len(arr)
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    half = 1.96 * std / math.sqrt(n) if n > 1 else 0.0
    return Summary(n=n, mean=float(arr.mean()), std=std, ci95_half_width=half)


@dataclass(frozen=True)
class FactorComparison:
    """A wins/loses-by-factor comparison between two quantities."""

    label_a: str
    label_b: str
    value_a: float
    value_b: float
    higher_is_better: bool = True

    @property
    def winner(self) -> str:
        """Which label wins under the stated direction."""
        a_wins = (self.value_a > self.value_b) == self.higher_is_better
        if self.value_a == self.value_b:
            return "tie"
        return self.label_a if a_wins else self.label_b

    @property
    def factor(self) -> float:
        """How many times better the winner is (>= 1)."""
        lo = min(self.value_a, self.value_b)
        hi = max(self.value_a, self.value_b)
        if lo <= 0.0:
            return float("inf") if hi > 0.0 else 1.0
        return hi / lo

    def format(self) -> str:
        """Human-readable one-liner for benchmark tables."""
        return (
            f"{self.label_a}={self.value_a:.4g} vs {self.label_b}={self.value_b:.4g}"
            f" -> {self.winner} by {self.factor:.2f}x"
        )


def first_crossing(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> Optional[float]:
    """First x where series A drops to or below series B.

    Linear interpolation between samples; None if no crossing.
    """
    xs = np.asarray(xs, dtype=float)
    a = np.asarray(ys_a, dtype=float)
    b = np.asarray(ys_b, dtype=float)
    if not (len(xs) == len(a) == len(b)) or len(xs) < 2:
        raise ValueError("series must share length >= 2")
    diff = a - b
    for i in range(1, len(xs)):
        if diff[i - 1] > 0.0 >= diff[i]:
            span = diff[i - 1] - diff[i]
            if span == 0.0:
                return float(xs[i])
            frac = diff[i - 1] / span
            return float(xs[i - 1] + frac * (xs[i] - xs[i - 1]))
        if diff[i - 1] <= 0.0:
            return float(xs[i - 1])
    return None
