"""Structural risk analysis of deployment hierarchies.

Finds the single points of failure the takeaways warn about: entities
whose loss disconnects devices from the cloud (graph articulation
analysis over the dependency DAG), plus Monte-Carlo correlated-failure
studies (an AS outage is one draw that removes many gateways at once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from ..core.hierarchy import Hierarchy


def dependency_graph(hierarchy: Hierarchy) -> nx.DiGraph:
    """The hierarchy as a directed graph, edges pointing upstream."""
    graph = nx.DiGraph()
    for entity in hierarchy.entities:
        graph.add_node(entity.name, tier=entity.TIER, alive=entity.alive)
    for entity in hierarchy.entities:
        for upstream in entity.depends_on:
            graph.add_edge(entity.name, upstream.name)
    return graph


@dataclass(frozen=True)
class SinglePointOfFailure:
    """An entity whose loss alone strands devices."""

    name: str
    tier: str
    stranded_devices: int


def single_points_of_failure(hierarchy: Hierarchy) -> List[SinglePointOfFailure]:
    """Every non-device entity whose individual loss strands >= 1 device.

    Uses :meth:`Hierarchy.blast_radius`, so the answer respects current
    liveness (an already-dead backup does not count as redundancy).
    Sorted by blast radius, largest first.
    """
    results = []
    for entity in hierarchy.entities:
        if entity.TIER == "device" or not entity.alive:
            continue
        radius = len(hierarchy.blast_radius(entity))
        if radius > 0:
            results.append(
                SinglePointOfFailure(
                    name=entity.name, tier=entity.TIER, stranded_devices=radius
                )
            )
    results.sort(key=lambda s: -s.stranded_devices)
    return results


def redundancy_histogram(hierarchy: Hierarchy) -> Dict[int, int]:
    """How many devices have 0, 1, 2, ... live upstream gateways.

    Devices in the 0/1 buckets violate the §3.1 takeaway in practice:
    they depend on a specific surviving instance.
    """
    histogram: Dict[int, int] = {}
    for device in hierarchy.tier("device"):
        live_paths = sum(1 for up in device.depends_on if up.effective_alive())
        histogram[live_paths] = histogram.get(live_paths, 0) + 1
    return histogram


@dataclass(frozen=True)
class CorrelatedFailureResult:
    """Outcome of removing one failure domain."""

    domain: str
    members: int
    devices_before: int
    devices_after: int

    @property
    def devices_lost(self) -> int:
        """Reachable devices lost to this domain outage."""
        return self.devices_before - self.devices_after

    @property
    def loss_fraction(self) -> float:
        """Share of previously-reachable devices lost."""
        if self.devices_before == 0:
            return 0.0
        return self.devices_lost / self.devices_before


def correlated_failure(
    hierarchy: Hierarchy, domain_tag: str, domain_value: str
) -> CorrelatedFailureResult:
    """Hypothetically fail every entity tagged ``domain_tag=domain_value``
    (e.g. ``asn=7922``) and measure stranded devices.

    Entities are restored afterwards; this is a what-if, not a mutation.
    """
    from ..core.entity import EntityState

    members = [
        e
        for e in hierarchy.entities
        if e.tags.get(domain_tag) == domain_value and e.alive
    ]
    before = len(hierarchy.reachable_devices())
    saved = [(e, e.state) for e in members]
    for entity, __ in saved:
        entity.state = EntityState.FAILED
    # Bump topology_version around the counterfactual window (SL011): a
    # version-keyed cache built against the hypothetically-failed domain
    # must be invalidated again when the real states come back.
    if members:
        members[0].sim.topology_version += 1
    try:
        after = len(hierarchy.reachable_devices())
    finally:
        for entity, state in saved:
            entity.state = state
        if members:
            members[0].sim.topology_version += 1
    return CorrelatedFailureResult(
        domain=f"{domain_tag}={domain_value}",
        members=len(members),
        devices_before=before,
        devices_after=after,
    )


def worst_domains(
    hierarchy: Hierarchy, domain_tag: str = "asn", top: int = 5
) -> List[CorrelatedFailureResult]:
    """The ``top`` failure domains by device loss — §4.3's deferred
    backhaul-concentration analysis, run over a live topology."""
    values = sorted(
        {
            e.tags[domain_tag]
            for e in hierarchy.entities
            if domain_tag in e.tags
        }
    )
    results = [correlated_failure(hierarchy, domain_tag, value) for value in values]
    results.sort(key=lambda r: -r.devices_lost)
    return results[:top]
