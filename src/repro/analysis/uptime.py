"""Uptime and availability analysis over simulation logs.

Complements the live metric in :class:`repro.net.cloud.CloudEndpoint`
with offline calculations: availability from deploy/fail/retire logs,
interval coverage from arbitrary arrival-time lists, and Monte-Carlo
aggregation across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core import units
from ..core.engine import Simulation


def interval_coverage(
    arrival_times: Sequence[float],
    start: float,
    end: float,
    interval: float = units.WEEK,
) -> float:
    """Fraction of ``interval``-sized bins in [start, end) containing an
    arrival — the generalized form of the paper's weekly metric.

    >>> interval_coverage([0.5, 1.5], 0.0, 4.0, interval=1.0)
    0.5
    """
    if end <= start:
        raise ValueError("end must exceed start")
    if interval <= 0.0:
        raise ValueError("interval must be positive")
    n_bins = int((end - start) // interval)
    if n_bins == 0:
        raise ValueError("window shorter than one interval")
    hit = np.zeros(n_bins, dtype=bool)
    for t in arrival_times:
        if start <= t < start + n_bins * interval:
            hit[int((t - start) // interval)] = True
    return float(hit.mean())


def longest_gap(
    arrival_times: Sequence[float], start: float, end: float
) -> float:
    """Longest silent stretch (seconds) within the window."""
    if end <= start:
        raise ValueError("end must exceed start")
    inside = sorted(t for t in arrival_times if start <= t < end)
    if not inside:
        return end - start
    gaps = [inside[0] - start]
    for a, b in zip(inside, inside[1:]):
        gaps.append(b - a)
    gaps.append(end - inside[-1])
    return float(max(gaps))


def entity_availability(sim: Simulation, name: str, start: float, end: float) -> float:
    """Fraction of [start, end) an entity was in service, from the run log.

    Uses the engine's ``deploy``/``fail``/``retire`` records.
    """
    if end <= start:
        raise ValueError("end must exceed start")
    up_spans: List[tuple] = []
    current_up: Optional[float] = None
    for record in sim.log:
        if record.message != name:
            continue
        if record.channel == "deploy":
            current_up = record.time
        elif record.channel in ("fail", "retire") and current_up is not None:
            up_spans.append((current_up, record.time))
            current_up = None
    if current_up is not None:
        up_spans.append((current_up, end))
    total = 0.0
    for span_start, span_end in up_spans:
        lo = max(span_start, start)
        hi = min(span_end, end)
        total += max(0.0, hi - lo)
    return total / (end - start)


@dataclass(frozen=True)
class MonteCarloUptime:
    """Aggregated weekly-uptime statistics across independent runs."""

    runs: int
    mean: float
    std: float
    p5: float
    p50: float
    p95: float
    worst: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "MonteCarloUptime":
        """Summarize per-run uptime fractions."""
        if not samples:
            raise ValueError("samples must be non-empty")
        arr = np.asarray(samples, dtype=float)
        return MonteCarloUptime(
            runs=len(arr),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
            p5=float(np.percentile(arr, 5)),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            worst=float(arr.min()),
        )
