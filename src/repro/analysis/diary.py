"""The living experimental diary (§4.5).

The paper intends its webpage as "a living, public experimental diary"
documenting every maintenance event, recurring cost, and experimenter
handoff.  ``ExperimentDiary`` renders exactly that from a simulation's
ledgers.

This lives below :mod:`repro.analysis.report` on purpose: the diary is
sim-facing state that :class:`repro.experiment.FiftyYearExperiment`
carries during a run, while ``report`` is benchmark-presentation code
that sim layers must never import (simlint SL006).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core import units
from ..core.engine import Simulation
from ..reliability.maintenance import MaintenanceLedger


@dataclass(frozen=True)
class DiaryEntry:
    """One line in the public diary."""

    time: float
    category: str   # maintenance | cost | handoff | incident | milestone
    text: str

    def format(self) -> str:
        """Render as ``[yr 12.3] category: text``."""
        return f"[yr {units.as_years(self.time):6.2f}] {self.category}: {self.text}"


@dataclass
class ExperimentDiary:
    """Accumulates diary entries during a run and renders the page."""

    title: str = "centurysensors.com — experimental diary"
    entries: List[DiaryEntry] = field(default_factory=list)

    def note(self, time: float, category: str, text: str) -> None:
        """Append an entry."""
        self.entries.append(DiaryEntry(time, category, text))

    def from_maintenance(self, ledger: MaintenanceLedger) -> None:
        """Import every intervention from a maintenance ledger."""
        for item in ledger.interventions:
            self.note(
                item.time,
                "maintenance",
                f"{item.action} {item.target} ({item.tier}, "
                f"{item.labor_hours:.2f} h, ${item.cost_usd:.2f})",
            )

    def from_sim_log(self, sim: Simulation, channels: Optional[List[str]] = None) -> None:
        """Import engine log records (sunsets, domain lapses, ...)."""
        wanted = channels or ["sunset", "domain-lapse", "domain-recover"]
        for record in sim.log:
            if record.channel in wanted:
                self.note(record.time, "incident", f"{record.channel} {record.message}")

    def render(self) -> str:
        """The diary page, chronological."""
        lines = [self.title, "=" * len(self.title)]
        for entry in sorted(self.entries, key=lambda e: e.time):
            lines.append(entry.format())
        if len(lines) == 2:
            lines.append("(no entries — unattended operation so far)")
        return "\n".join(lines)
