"""Analysis: AS concentration, uptime, metrics, diary/report rendering."""

from .asn import (
    NAMED_ISPS,
    PAPER_GATEWAY_COUNT,
    PAPER_TOP10_SHARE,
    PAPER_UNIQUE_ASES,
    ConcentrationReport,
    calibrate_exponent,
    concentration,
    survival_correlation_groups,
    synthesize_assignments,
    zipf_mandelbrot_weights,
)
from .export import (
    coverage_series,
    export_all_figures,
    survival_series,
    sweep_series,
    tco_series_rows,
    write_csv,
)
from .metrics import FactorComparison, Summary, first_crossing, summarize_samples
from .diary import DiaryEntry, ExperimentDiary
from .report import (
    PaperComparison,
    comparison_table,
)
from .risk import (
    CorrelatedFailureResult,
    SinglePointOfFailure,
    correlated_failure,
    dependency_graph,
    redundancy_histogram,
    single_points_of_failure,
    worst_domains,
)
from .uptime import (
    MonteCarloUptime,
    entity_availability,
    interval_coverage,
    longest_gap,
)

__all__ = [
    "NAMED_ISPS",
    "PAPER_GATEWAY_COUNT",
    "PAPER_TOP10_SHARE",
    "PAPER_UNIQUE_ASES",
    "ConcentrationReport",
    "calibrate_exponent",
    "concentration",
    "survival_correlation_groups",
    "synthesize_assignments",
    "zipf_mandelbrot_weights",
    "coverage_series",
    "export_all_figures",
    "survival_series",
    "sweep_series",
    "tco_series_rows",
    "write_csv",
    "FactorComparison",
    "Summary",
    "first_crossing",
    "summarize_samples",
    "DiaryEntry",
    "ExperimentDiary",
    "PaperComparison",
    "comparison_table",
    "CorrelatedFailureResult",
    "SinglePointOfFailure",
    "correlated_failure",
    "dependency_graph",
    "redundancy_histogram",
    "single_points_of_failure",
    "worst_domains",
    "MonteCarloUptime",
    "entity_availability",
    "interval_coverage",
    "longest_gap",
]
