"""Energy storage: capacitors (batteryless nodes) and batteries (baselines).

Stored energy is tracked in joules.  ``Capacitor`` models leakage but no
cycle wear — the property that makes batteryless design points viable at
the century scale.  ``Battery`` models capacity fade from both cycling
and calendar aging, the mechanism that bounds conventional nodes to the
paper's 10–15-year conventional wisdom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import units


class StorageError(ValueError):
    """Raised on invalid storage configuration or operations."""


@dataclass
class Capacitor:
    """An ideal-plus-leakage storage capacitor / supercap.

    ``capacity_j`` is usable energy between the operating thresholds.
    ``leakage_per_day`` is the fraction of *stored* energy lost per day.
    """

    capacity_j: float = 0.5
    leakage_per_day: float = 0.01
    stored_j: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_j <= 0.0:
            raise StorageError(f"capacity_j must be positive, got {self.capacity_j}")
        if not 0.0 <= self.leakage_per_day < 1.0:
            raise StorageError("leakage_per_day must be in [0, 1)")
        if not 0.0 <= self.stored_j <= self.capacity_j:
            raise StorageError("stored_j must be within [0, capacity_j]")

    def charge(self, energy_j: float) -> float:
        """Add energy; returns the amount actually absorbed (clipped)."""
        if energy_j < 0.0:
            raise StorageError(f"charge amount must be non-negative, got {energy_j}")
        absorbed = min(energy_j, self.capacity_j - self.stored_j)
        self.stored_j += absorbed
        return absorbed

    def discharge(self, energy_j: float) -> bool:
        """Try to draw energy; returns False (and draws nothing) if short."""
        if energy_j < 0.0:
            raise StorageError(f"discharge amount must be non-negative, got {energy_j}")
        if energy_j > self.stored_j:
            return False
        self.stored_j -= energy_j
        return True

    def leak(self, dt: float) -> None:
        """Apply leakage over ``dt`` seconds."""
        if dt < 0.0:
            raise StorageError(f"dt must be non-negative, got {dt}")
        days = units.as_days(dt)
        self.stored_j *= (1.0 - self.leakage_per_day) ** days

    @property
    def fill_fraction(self) -> float:
        """Stored energy as a fraction of capacity."""
        return self.stored_j / self.capacity_j

    @property
    def usable_capacity_j(self) -> float:
        """Current usable capacity (constant for capacitors)."""
        return self.capacity_j


@dataclass
class Battery:
    """A rechargeable battery with cycle and calendar fade.

    Capacity fades linearly with full-cycle-equivalents down to
    ``end_of_life_fraction``, plus a calendar-fade term per year.  Once
    faded to end-of-life, the battery is considered dead regardless of
    remaining charge — matching field-replacement practice.
    """

    capacity_j: float = units.milliamp_hours(2400.0, volts=3.0)
    cycle_life: float = 1500.0
    calendar_fade_per_year: float = 0.02
    end_of_life_fraction: float = 0.7
    stored_j: float = 0.0
    _cycled_j: float = field(default=0.0, repr=False)
    _age_s: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0.0:
            raise StorageError("capacity_j must be positive")
        if self.cycle_life <= 0.0:
            raise StorageError("cycle_life must be positive")
        if not 0.0 < self.end_of_life_fraction < 1.0:
            raise StorageError("end_of_life_fraction must be in (0, 1)")

    @property
    def full_cycle_equivalents(self) -> float:
        """Cumulative discharge expressed in full cycles."""
        return self._cycled_j / self.capacity_j

    @property
    def health(self) -> float:
        """State of health: remaining capacity fraction (1.0 = new)."""
        cycle_fade = 0.3 * (self.full_cycle_equivalents / self.cycle_life)
        calendar_fade = self.calendar_fade_per_year * units.as_years(self._age_s)
        return max(0.0, 1.0 - cycle_fade - calendar_fade)

    @property
    def usable_capacity_j(self) -> float:
        """Capacity after fade."""
        return self.capacity_j * self.health

    @property
    def dead(self) -> bool:
        """True when fade has reached the end-of-life threshold."""
        return self.health <= self.end_of_life_fraction

    def charge(self, energy_j: float) -> float:
        """Add energy up to the *faded* capacity; returns amount absorbed."""
        if energy_j < 0.0:
            raise StorageError("charge amount must be non-negative")
        if self.dead:
            return 0.0
        absorbed = min(energy_j, self.usable_capacity_j - self.stored_j)
        absorbed = max(0.0, absorbed)
        self.stored_j += absorbed
        return absorbed

    def discharge(self, energy_j: float) -> bool:
        """Draw energy, accruing cycle wear; False if insufficient/dead."""
        if energy_j < 0.0:
            raise StorageError("discharge amount must be non-negative")
        if self.dead or energy_j > self.stored_j:
            return False
        self.stored_j -= energy_j
        self._cycled_j += energy_j
        return True

    def age(self, dt: float) -> None:
        """Advance calendar aging by ``dt`` seconds."""
        if dt < 0.0:
            raise StorageError("dt must be non-negative")
        self._age_s += dt
        # Clamp stored energy to the shrunken capacity.
        self.stored_j = min(self.stored_j, self.usable_capacity_j)

    def leak(self, dt: float) -> None:
        """Self-discharge (~2 %/month) plus calendar aging."""
        self.age(dt)
        months = units.as_months(dt)
        self.stored_j *= 0.98 ** months

    @property
    def fill_fraction(self) -> float:
        """Stored energy as a fraction of *current* usable capacity."""
        usable = self.usable_capacity_j
        if usable <= 0.0:
            return 0.0
        return self.stored_j / usable
