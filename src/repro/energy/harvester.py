"""The harvesting power subsystem of an edge device.

``HarvestingSystem`` couples a source to a storage element and answers
the only question the network layer asks: *can the node afford this
transmission right now?*  It integrates harvest over coarse steps
(exact integration is pointless against the noise models) and exposes
intermittency statistics — how often the node browns out and how long it
takes to recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from .budget import TaskProfile
from .sources import EnergySource
from .storage import Battery, Capacitor

Storage = Union[Capacitor, Battery]


@dataclass
class HarvestingSystem:
    """Source + storage + task profile for one device.

    ``step(dt, rng)`` advances the energy state; ``try_transmit``
    attempts to pay for one duty cycle.  A node that cannot pay is
    *browned out* but not dead — it recovers when storage refills, which
    is exactly the intermittent-computing behaviour the paper's devices
    exhibit.
    """

    source: EnergySource
    storage: Storage
    profile: TaskProfile = field(default_factory=TaskProfile)
    #: Fraction of harvested power actually banked (converter efficiency).
    conversion_efficiency: float = 0.8
    #: Storage fraction below which the node cannot operate at all.
    brownout_threshold: float = 0.05

    brownouts: int = 0
    last_brownout_at: Optional[float] = None
    recovery_times: List[float] = field(default_factory=list)
    _in_brownout: bool = field(default=False, repr=False)
    _clock: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.conversion_efficiency <= 1.0:
            raise ValueError("conversion_efficiency must be in (0, 1]")
        if not 0.0 <= self.brownout_threshold < 1.0:
            raise ValueError("brownout_threshold must be in [0, 1)")

    def step(self, dt: float, rng: np.random.Generator) -> None:
        """Advance the energy state by ``dt`` seconds.

        Harvest is sampled at the interval midpoint; sleep power is
        drawn continuously; leakage applies to storage.
        """
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if dt == 0.0:
            return
        midpoint = self._clock + dt / 2.0
        self._clock += dt
        harvested = self.source.power_at(midpoint, rng) * dt
        # Harvest and the sleep floor flow concurrently within the step:
        # net them before touching storage, so a coarse step never
        # browns out a node whose instantaneous harvest covers sleep.
        net = harvested * self.conversion_efficiency - self.profile.sleep_power_w * dt
        if net >= 0.0:
            self.storage.charge(net)
            self.storage.leak(dt)
            self._maybe_recover()
        else:
            self.storage.leak(dt)
            if not self.storage.discharge(-net):
                # Deficit unaffordable: drain what's there, mark brownout.
                self.storage.discharge(self.storage.stored_j)
                self._enter_brownout()
            else:
                self._maybe_recover()

    def try_transmit(self, airtime_s: float) -> bool:
        """Attempt to pay for one sense-and-transmit cycle.

        Returns True and debits storage on success.  A node recovering
        from brownout additionally pays the startup energy.
        """
        cost = self.profile.cycle_energy(airtime_s)
        if self._in_brownout:
            cost += self.profile.startup_energy_j
        floor = self.brownout_threshold * self.storage.usable_capacity_j
        if self.storage.stored_j - cost < floor:
            self._enter_brownout()
            return False
        paid = self.storage.discharge(cost)
        if paid:
            self._maybe_recover()
        return paid

    def _enter_brownout(self) -> None:
        if not self._in_brownout:
            self._in_brownout = True
            self.brownouts += 1
            self.last_brownout_at = self._clock

    def _maybe_recover(self) -> None:
        if not self._in_brownout:
            return
        refill = 2.0 * self.brownout_threshold * self.storage.usable_capacity_j
        if self.storage.stored_j >= refill:
            self._in_brownout = False
            if self.last_brownout_at is not None:
                self.recovery_times.append(self._clock - self.last_brownout_at)

    @property
    def browned_out(self) -> bool:
        """True while the node lacks energy to operate."""
        return self._in_brownout

    @property
    def mean_recovery_time(self) -> float:
        """Average brownout-to-recovery duration observed (0 if none)."""
        if not self.recovery_times:
            return 0.0
        return float(np.mean(self.recovery_times))

    def simulate_duty_cycle(
        self,
        interval_s: float,
        airtime_s: float,
        horizon_s: float,
        rng: np.random.Generator,
    ) -> "DutyCycleResult":
        """Standalone fast-forward: attempt a transmission every
        ``interval_s`` over ``horizon_s``; report delivery statistics.

        This is the vectorless reference path used by tests and the
        energy benchmarks; the networked path lives in
        :mod:`repro.net.device`.
        """
        if interval_s <= 0.0:
            raise ValueError("interval_s must be positive")
        if horizon_s <= 0.0:
            raise ValueError("horizon_s must be positive")
        attempts = 0
        successes = 0
        t = 0.0
        while t + interval_s <= horizon_s:
            self.step(interval_s, rng)
            t += interval_s
            attempts += 1
            if self.try_transmit(airtime_s):
                successes += 1
        return DutyCycleResult(
            attempts=attempts,
            successes=successes,
            brownouts=self.brownouts,
            final_fill=self.storage.fill_fraction,
        )


@dataclass(frozen=True)
class DutyCycleResult:
    """Outcome of a standalone duty-cycle fast-forward."""

    attempts: int
    successes: int
    brownouts: int
    final_fill: float

    @property
    def success_rate(self) -> float:
        """Fraction of scheduled cycles actually transmitted."""
        if self.attempts == 0:
            return 0.0
        return self.successes / self.attempts
