"""Energy-harvesting source models.

The paper leans on "Ambient Batteries" (refs [20, 21]): stable,
battery-like ambient energy sources — canonically the cathodic-
protection current of rebar corroding inside concrete — that could power
deployed systems for decades.  Each source exposes ``power_at(t, rng)``,
the instantaneous harvestable power in watts, so the intermittency
machinery can integrate it over arbitrary schedules.

Models are intentionally simple (diurnal/seasonal sinusoids plus noise
and slow degradation) but preserve what matters for century-scale
reasoning: mean power level, variability, and degradation trend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..core import units


class EnergySource(Protocol):
    """Interface for all harvesters (power in watts, time in seconds)."""

    def power_at(self, t: float, rng: np.random.Generator) -> float:
        """Instantaneous harvestable power at simulation time ``t``."""
        ...

    def power_at_many(
        self, t: float, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Vectorized ``power_at``: ``n`` devices sampled at the same
        instant.  Bit-equivalent to ``n`` sequential ``power_at`` calls
        on the same generator — numpy array draws consume the stream in
        the same order as repeated scalar draws, and every arithmetic
        step is the same IEEE-754 float64 operation elementwise.  This
        is the contract that lets a cohort batch its members without
        perturbing plan+seed determinism.
        """
        ...

    def mean_power(self) -> float:
        """Long-run average power, ignoring noise."""
        ...


@dataclass(frozen=True)
class CathodicProtectionSource:
    """The rebar-corrosion "ambient battery" of refs [20, 21].

    Cathodic-protection systems impress a small, *stable* DC current to
    protect embedded steel; tapping it yields a near-constant trickle for
    as long as the structure exists.  Power declines very slowly as the
    anode system ages (``degradation_per_year`` fractional loss), with
    small measurement-scale noise.
    """

    nominal_power_w: float = 500e-6  # 500 µW — a realistic CP tap
    degradation_per_year: float = 0.005
    noise_fraction: float = 0.02

    def power_at(self, t: float, rng: np.random.Generator) -> float:
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        age_years = units.as_years(t)
        level = self.nominal_power_w * (1.0 - self.degradation_per_year) ** age_years
        noise = 1.0 + self.noise_fraction * rng.standard_normal()
        return max(0.0, level * noise)

    def power_at_many(
        self, t: float, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        age_years = units.as_years(t)
        # The aging power stays a Python-scalar ``**`` so it rounds
        # identically to the scalar path; only the noise is an array.
        level = self.nominal_power_w * (1.0 - self.degradation_per_year) ** age_years
        noise = 1.0 + self.noise_fraction * rng.standard_normal(n)
        return np.maximum(0.0, level * noise)

    def mean_power(self) -> float:
        return self.nominal_power_w


@dataclass(frozen=True)
class SolarSource:
    """Small photovoltaic harvester with diurnal and seasonal cycles.

    Night yields zero; day follows a half-sinusoid peaking at
    ``peak_power_w`` scaled by season.  Panels degrade ~0.5 %/yr and
    weather introduces heavy-tailed down-scaling (cloud cover).
    """

    peak_power_w: float = 50e-3
    seasonal_swing: float = 0.3       # ±30 % summer/winter
    degradation_per_year: float = 0.005
    cloud_fraction: float = 0.35      # probability an hour is cloudy
    cloud_attenuation: float = 0.15   # power multiplier under cloud

    def power_at(self, t: float, rng: np.random.Generator) -> float:
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        day_phase = (t % units.DAY) / units.DAY
        # Daylight window 06:00–18:00 as a half-sine.
        if not 0.25 <= day_phase <= 0.75:
            return 0.0
        diurnal = math.sin((day_phase - 0.25) / 0.5 * math.pi)
        year_phase = (t % units.YEAR) / units.YEAR
        seasonal = 1.0 + self.seasonal_swing * math.cos(2.0 * math.pi * year_phase)
        age_years = units.as_years(t)
        aging = (1.0 - self.degradation_per_year) ** age_years
        weather = self.cloud_attenuation if rng.random() < self.cloud_fraction else 1.0
        return self.peak_power_w * diurnal * seasonal * aging * weather

    def power_at_many(
        self, t: float, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        day_phase = (t % units.DAY) / units.DAY
        if not 0.25 <= day_phase <= 0.75:
            # Night: the scalar path returns before touching the rng, so
            # the vectorized path must not draw either.
            return np.zeros(n)
        diurnal = math.sin((day_phase - 0.25) / 0.5 * math.pi)
        year_phase = (t % units.YEAR) / units.YEAR
        seasonal = 1.0 + self.seasonal_swing * math.cos(2.0 * math.pi * year_phase)
        age_years = units.as_years(t)
        aging = (1.0 - self.degradation_per_year) ** age_years
        weather = np.where(
            rng.random(n) < self.cloud_fraction, self.cloud_attenuation, 1.0
        )
        # Match the scalar left-to-right product: the deterministic
        # factors fold into one Python scalar, then multiply the array.
        base = self.peak_power_w * diurnal * seasonal * aging
        return base * weather

    def mean_power(self) -> float:
        # Half-sine day (mean 2/pi over 12h -> 1/pi over 24h), mean weather.
        weather = (
            self.cloud_fraction * self.cloud_attenuation
            + (1.0 - self.cloud_fraction)
        )
        return self.peak_power_w / math.pi * weather

    def is_daylight(self, t: float) -> bool:
        """True during the 06:00–18:00 generation window."""
        day_phase = (t % units.DAY) / units.DAY
        return 0.25 <= day_phase <= 0.75


@dataclass(frozen=True)
class VibrationSource:
    """Piezo/electromagnetic harvester on trafficked infrastructure.

    Power tracks traffic intensity: a double-peaked weekday rush-hour
    profile, quieter weekends, shot-noise bursts from heavy vehicles.
    """

    rms_power_w: float = 100e-6
    weekend_factor: float = 0.55
    burst_probability: float = 0.05
    burst_gain: float = 4.0

    def power_at(self, t: float, rng: np.random.Generator) -> float:
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        day_phase = (t % units.DAY) / units.DAY
        hour = day_phase * 24.0
        rush = math.exp(-((hour - 8.5) ** 2) / 4.0) + math.exp(
            -((hour - 17.5) ** 2) / 4.0
        )
        base = 0.15 + rush  # overnight floor plus rush peaks
        weekday = int(t // units.DAY) % 7
        if weekday >= 5:
            base *= self.weekend_factor
        burst = self.burst_gain if rng.random() < self.burst_probability else 1.0
        return self.rms_power_w * base * burst

    def power_at_many(
        self, t: float, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        day_phase = (t % units.DAY) / units.DAY
        hour = day_phase * 24.0
        rush = math.exp(-((hour - 8.5) ** 2) / 4.0) + math.exp(
            -((hour - 17.5) ** 2) / 4.0
        )
        base = 0.15 + rush
        weekday = int(t // units.DAY) % 7
        if weekday >= 5:
            base *= self.weekend_factor
        burst = np.where(
            rng.random(n) < self.burst_probability, self.burst_gain, 1.0
        )
        return self.rms_power_w * base * burst

    def mean_power(self) -> float:
        # Numerically averaged profile factor (~0.62 weekday-weighted).
        return self.rms_power_w * 0.62


@dataclass(frozen=True)
class ThermalGradientSource:
    """TEG across a structure/ambient thermal gradient.

    Strongest when day/night swing is largest; near-zero in thermal
    equilibrium around dawn/dusk crossings.
    """

    peak_power_w: float = 80e-6
    seasonal_swing: float = 0.2

    def power_at(self, t: float, rng: np.random.Generator) -> float:
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        day_phase = (t % units.DAY) / units.DAY
        gradient = abs(math.sin(2.0 * math.pi * day_phase))
        year_phase = (t % units.YEAR) / units.YEAR
        seasonal = 1.0 + self.seasonal_swing * math.sin(2.0 * math.pi * year_phase)
        jitter = 1.0 + 0.05 * rng.standard_normal()
        return max(0.0, self.peak_power_w * gradient * seasonal * jitter)

    def power_at_many(
        self, t: float, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        day_phase = (t % units.DAY) / units.DAY
        gradient = abs(math.sin(2.0 * math.pi * day_phase))
        year_phase = (t % units.YEAR) / units.YEAR
        seasonal = 1.0 + self.seasonal_swing * math.sin(2.0 * math.pi * year_phase)
        jitter = 1.0 + 0.05 * rng.standard_normal(n)
        base = self.peak_power_w * gradient * seasonal
        return np.maximum(0.0, base * jitter)

    def mean_power(self) -> float:
        return self.peak_power_w * 2.0 / math.pi


def source_by_name(name: str) -> EnergySource:
    """Factory keyed by the harvester names used across the library."""
    factories = {
        "cathodic": CathodicProtectionSource,
        "solar": SolarSource,
        "vibration": VibrationSource,
        "thermal": ThermalGradientSource,
    }
    if name not in factories:
        raise ValueError(f"unknown source {name!r}; options: {sorted(factories)}")
    return factories[name]()
