"""Energy substrate: harvest sources, storage, budgets, intermittency."""

from .budget import (
    EnergyBudgetReport,
    TaskProfile,
    budget_report,
    energy_neutral,
    storage_for_outage,
    sustainable_interval,
)
from .harvester import DutyCycleResult, HarvestingSystem
from .sources import (
    CathodicProtectionSource,
    EnergySource,
    SolarSource,
    ThermalGradientSource,
    VibrationSource,
    source_by_name,
)
from .storage import Battery, Capacitor, StorageError

__all__ = [
    "EnergyBudgetReport",
    "TaskProfile",
    "budget_report",
    "energy_neutral",
    "storage_for_outage",
    "sustainable_interval",
    "DutyCycleResult",
    "HarvestingSystem",
    "CathodicProtectionSource",
    "EnergySource",
    "SolarSource",
    "ThermalGradientSource",
    "VibrationSource",
    "source_by_name",
    "Battery",
    "Capacitor",
    "StorageError",
]
