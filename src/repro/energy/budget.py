"""Energy budgeting for intermittent, transmit-only sensors.

An energy-harvesting node is viable when harvest ≥ consumption over
every charging interval.  ``TaskProfile`` describes what one duty cycle
costs; :func:`sustainable_interval` solves for the fastest reporting
rate a source can sustain; :func:`energy_neutral` checks the paper's
"powers itself for literally as long as the structure lasts" condition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import units
from .sources import EnergySource


@dataclass(frozen=True)
class TaskProfile:
    """Energy cost of one sense-and-transmit duty cycle plus sleep floor.

    Defaults approximate an 802.15.4 sensor node: ~1 µW sleep,
    ~150 µJ to sample, and transmit energy paid per packet second at
    ~60 mW radiated+overhead.
    """

    sleep_power_w: float = 1e-6
    sample_energy_j: float = 150e-6
    tx_power_w: float = 60e-3
    startup_energy_j: float = 30e-6  # regulator/MCU boot after power loss

    def __post_init__(self) -> None:
        for name in ("sleep_power_w", "sample_energy_j", "tx_power_w", "startup_energy_j"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")

    def cycle_energy(self, airtime_s: float) -> float:
        """Energy for one wake → sample → transmit cycle."""
        if airtime_s < 0.0:
            raise ValueError(f"airtime_s must be non-negative, got {airtime_s}")
        return self.sample_energy_j + self.tx_power_w * airtime_s

    def mean_power(self, interval_s: float, airtime_s: float) -> float:
        """Average power when reporting every ``interval_s`` seconds."""
        if interval_s <= 0.0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        return self.sleep_power_w + self.cycle_energy(airtime_s) / interval_s


def sustainable_interval(
    source: EnergySource,
    profile: TaskProfile,
    airtime_s: float,
    margin: float = 2.0,
) -> float:
    """Shortest reporting interval the source sustains with ``margin``.

    Solves ``mean_power(interval) * margin == source.mean_power()`` for
    the interval.  Returns ``inf`` if even the sleep floor exceeds the
    harvest budget (the node is not viable at any rate).
    """
    if margin < 1.0:
        raise ValueError(f"margin must be >= 1, got {margin}")
    budget = source.mean_power() / margin
    surplus = budget - profile.sleep_power_w
    if surplus <= 0.0:
        return float("inf")
    return profile.cycle_energy(airtime_s) / surplus


def energy_neutral(
    source: EnergySource,
    profile: TaskProfile,
    interval_s: float,
    airtime_s: float,
    margin: float = 1.0,
) -> bool:
    """True if reporting every ``interval_s`` is sustainable long-run."""
    demand = profile.mean_power(interval_s, airtime_s)
    return source.mean_power() >= demand * margin


def storage_for_outage(
    profile: TaskProfile,
    interval_s: float,
    airtime_s: float,
    outage_s: float = units.days(3.0),
) -> float:
    """Storage (J) needed to ride out a harvest outage of ``outage_s``.

    Sizes the capacitor so the node keeps its reporting schedule through
    e.g. a cloudy spell (solar) or a maintenance power-down (cathodic).
    """
    if outage_s < 0.0:
        raise ValueError(f"outage_s must be non-negative, got {outage_s}")
    return profile.mean_power(interval_s, airtime_s) * outage_s


@dataclass(frozen=True)
class EnergyBudgetReport:
    """Summary row for the energy-viability analysis of one design."""

    source_name: str
    harvest_uw: float
    demand_uw: float
    sustainable_interval_s: float
    neutral_at_hourly: bool

    @property
    def viable(self) -> bool:
        """Whether the design closes its energy budget at the chosen rate."""
        return self.harvest_uw >= self.demand_uw


def budget_report(
    source_name: str,
    source: EnergySource,
    profile: TaskProfile,
    airtime_s: float,
    interval_s: float = units.HOUR,
) -> EnergyBudgetReport:
    """Build the benchmark row for one (source, profile) pairing."""
    return EnergyBudgetReport(
        source_name=source_name,
        harvest_uw=source.mean_power() * 1e6,
        demand_uw=profile.mean_power(interval_s, airtime_s) * 1e6,
        sustainable_interval_s=sustainable_interval(source, profile, airtime_s),
        neutral_at_hourly=energy_neutral(source, profile, units.HOUR, airtime_s),
    )
