"""The semi-federated third-party LoRa network (the Helium model, §4.2–4.4).

Three pieces:

* :class:`DataCreditWallet` — prepaid, fixed-price data credits; the
  paper's arithmetic is one (≤24-byte) packet per hour for 50 years =
  438,000 credits, provisionable today for ~$5 at $1e-5/credit.
* :class:`HotspotPopulation` — a churning population of third-party
  gateways: owners join (network growth) and leave (mining stops paying,
  hardware bricks, owner moves).  The *network* can outlive any hotspot.
* :class:`HeliumNetwork` — glues population + wallet + AS-correlated
  backhaul into deployable gateway entities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.asn import synthesize_assignments
from ..core import units
from ..core.engine import Simulation
from ..radio.lora import LoRaParameters, suburban_path_loss
from ..radio.packets import Packet
from .backhaul import OpaqueBackhaul
from .cloud import CloudEndpoint
from .gateway import ThirdPartyGateway
from .geometry import Position, uniform_positions

#: Helium pricing: one data credit per 24-byte message, $0.00001 each.
USD_PER_CREDIT: float = 1e-5

#: The §4.4 arithmetic: hourly packets for 50 years.
PACKETS_50_YEARS_HOURLY: int = int(round(units.years(50.0) / units.HOUR))


def credits_for_schedule(
    interval_s: float, horizon_s: float, credits_per_packet: int = 1
) -> int:
    """Data credits to send one packet every ``interval_s`` for ``horizon_s``.

    Note: with Julian years this gives 438,300 for 50 years hourly; the
    paper's 438,000 uses 365-day years — see
    :func:`repro.econ.credits.paper_prepay_quote` for the paper-exact
    arithmetic.

    >>> credits_for_schedule(units.HOUR, units.years(50.0))
    438300
    """
    if interval_s <= 0.0:
        raise ValueError("interval_s must be positive")
    if horizon_s <= 0.0:
        raise ValueError("horizon_s must be positive")
    if credits_per_packet < 1:
        raise ValueError("credits_per_packet must be >= 1")
    return int(horizon_s // interval_s) * credits_per_packet


@dataclass
class DataCreditWallet:
    """A prepaid wallet of non-expiring, fixed-price data credits.

    "One interesting property is that the price of data once purchased
    is fixed" (§4.4) — so a wallet provisioned today funds unattended
    operation regardless of future token prices.
    """

    balance: int = 0
    provisioned_usd: float = 0.0
    spent: int = 0
    refusals: int = 0
    drained: int = 0

    def provision(self, credits: int) -> float:
        """Buy ``credits``; returns the USD cost at the fixed price."""
        if credits <= 0:
            raise ValueError(f"credits must be positive, got {credits}")
        self.balance += credits
        cost = credits * USD_PER_CREDIT
        self.provisioned_usd += cost
        return cost

    def debit(self, credits: int) -> bool:
        """Pay for one transmission; False (and counted) if broke."""
        if credits <= 0:
            raise ValueError(f"credits must be positive, got {credits}")
        if credits > self.balance:
            self.refusals += 1
            return False
        self.balance -= credits
        self.spent += credits
        return True

    def drain(self, credits: Optional[int] = None, fraction: Optional[float] = None) -> int:
        """Remove credits without buying service (injected fault).

        Models a lost key, a billing reversal, or an account compromise:
        the balance drops but nothing was ``spent`` on packets.  Exactly
        one of ``credits``/``fraction`` must be given.  Returns the
        credits actually removed (clamped to the balance).
        """
        if (credits is None) == (fraction is None):
            raise ValueError("give exactly one of credits= or fraction=")
        if fraction is not None:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"fraction must be in [0, 1], got {fraction}")
            credits = int(self.balance * fraction)
        if credits < 0:
            raise ValueError(f"credits must be non-negative, got {credits}")
        removed = min(credits, self.balance)
        self.balance -= removed
        self.drained += removed
        return removed

    def years_remaining(self, interval_s: float, credits_per_packet: int = 1) -> float:
        """Runway at the given reporting schedule."""
        per_year = (units.YEAR / interval_s) * credits_per_packet
        if per_year <= 0.0:
            return float("inf")
        return self.balance / per_year


@dataclass(frozen=True)
class ChurnModel:
    """Hotspot arrival/departure dynamics.

    ``median_tenure_years`` — how long an owner keeps a hotspot up
    (crypto-incentive networks historically churn fast).
    ``halflife_years`` — network-level popularity decay: arrival rate
    halves every halflife (set ``None`` for a steady network).
    """

    median_tenure_years: float = 3.0
    tenure_sigma: float = 0.9
    halflife_years: Optional[float] = None

    def sample_tenure(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw hotspot tenures (seconds)."""
        mu = np.log(units.years(self.median_tenure_years))
        return rng.lognormal(mu, self.tenure_sigma, size=n)

    def arrival_rate_at(self, t: float, base_per_year: float) -> float:
        """Hotspot arrivals per year at time ``t``."""
        if self.halflife_years is None:
            return base_per_year
        halvings = units.as_years(t) / self.halflife_years
        return base_per_year * 0.5**halvings


class HeliumNetwork:
    """A churning population of third-party LoRa hotspots plus a wallet.

    The network deploys ``initial_hotspots`` at start and replenishes at
    ``arrivals_per_year`` (scaled by the churn model's popularity decay).
    Each hotspot rides an AS-correlated opaque backhaul to ``endpoint``.
    ``as_outage`` support lets benchmarks fail an entire AS at once.
    """

    def __init__(
        self,
        sim: Simulation,
        endpoint: CloudEndpoint,
        extent_m: float = 10_000.0,
        initial_hotspots: int = 60,
        arrivals_per_year: float = 12.0,
        churn: ChurnModel = ChurnModel(),
        lora: LoRaParameters = LoRaParameters(spreading_factor=10),
        wallet: Optional[DataCreditWallet] = None,
    ) -> None:
        if initial_hotspots < 0:
            raise ValueError("initial_hotspots must be non-negative")
        self.sim = sim
        self.endpoint = endpoint
        self.extent_m = extent_m
        self.arrivals_per_year = arrivals_per_year
        self.churn = churn
        self.lora = lora
        self.wallet = wallet or DataCreditWallet()
        # The wallet dataclass stays plain (it is used standalone in the
        # econ layer); the network exports its fields as lazy gauges so
        # snapshots capture the end-of-run wallet state.  ``balance``
        # merges by min — the tightest remaining runway across runs.
        wallet_ref = self.wallet
        metrics = sim.metrics
        metrics.gauge_fn(
            "helium_wallet_balance_credits", lambda: wallet_ref.balance, agg="min"
        )
        metrics.gauge_fn(
            "helium_wallet_spent_credits", lambda: wallet_ref.spent, agg="sum"
        )
        metrics.gauge_fn(
            "helium_wallet_refusals", lambda: wallet_ref.refusals, agg="sum"
        )
        metrics.gauge_fn(
            "helium_wallet_drained_credits", lambda: wallet_ref.drained, agg="sum"
        )
        self._c_hotspots_spawned = metrics.counter("helium_hotspots_spawned_total")
        self.hotspots: List[ThirdPartyGateway] = []
        self.backhauls: Dict[int, OpaqueBackhaul] = {}
        self._asn_pool: List[int] = []
        self._live_cache: List[ThirdPartyGateway] = []
        self._live_cache_version: int = -1
        self._live_index = None
        self._spawn_initial(initial_hotspots)
        self._schedule_arrival()

    # ------------------------------------------------------------------
    # Population dynamics
    # ------------------------------------------------------------------
    def _asn_for_new_hotspot(self) -> int:
        if not self._asn_pool:
            rng = self.sim.rng("helium-asn")
            self._asn_pool = synthesize_assignments(n_nodes=512, rng=rng)
        return self._asn_pool.pop()

    def _backhaul_for(self, asn: int) -> OpaqueBackhaul:
        backhaul = self.backhauls.get(asn)
        if backhaul is None or not backhaul.alive:
            backhaul = OpaqueBackhaul(self.sim, name=f"as{asn}", asn=asn)
            backhaul.add_dependency(self.endpoint)
            backhaul.deploy()
            self.backhauls[asn] = backhaul
        return backhaul

    def _spawn_initial(self, count: int) -> None:
        if count == 0:
            return
        rng = self.sim.rng("helium-placement")
        positions = uniform_positions(count, self.extent_m, rng)
        for position in positions:
            self._spawn_hotspot(position)

    def _spawn_hotspot(self, position: Optional[Position] = None) -> ThirdPartyGateway:
        rng = self.sim.rng("helium-placement")
        if position is None:
            position = uniform_positions(1, self.extent_m, rng)[0]
        tenure = float(self.churn.sample_tenure(self.sim.rng("helium-churn"))[0])
        asn = self._asn_for_new_hotspot()
        hotspot = ThirdPartyGateway(
            self.sim,
            spec=self.lora.spec(),
            path_loss=suburban_path_loss(),
            position=position,
            departs_at=self.sim.now + tenure,
            asn=asn,
        )
        hotspot.add_dependency(self._backhaul_for(asn))
        hotspot.wallet = self.wallet
        hotspot.deploy()
        self.hotspots.append(hotspot)
        self._c_hotspots_spawned.value += 1
        return hotspot

    def _schedule_arrival(self) -> None:
        rate = self.churn.arrival_rate_at(self.sim.now, self.arrivals_per_year)
        if rate <= 1e-6:
            return  # network has died out; no more arrivals
        rng = self.sim.rng("helium-churn")
        gap = float(rng.exponential(units.YEAR / rate))
        self.sim.call_in(gap, self._arrive, label="helium-arrival")

    def _arrive(self) -> None:
        self._spawn_hotspot()
        self._schedule_arrival()

    # ------------------------------------------------------------------
    # Service interface
    # ------------------------------------------------------------------
    def live_hotspots(self) -> List[ThirdPartyGateway]:
        """Hotspots currently up.

        Cached against the simulation's topology version: hotspot
        aliveness only changes through deploy/retire/fail transitions,
        each of which bumps the version, so between bumps the filtered
        list is provably current.  Callers treat the returned list as
        read-only.
        """
        version = self.sim.topology_version
        if self._live_cache_version != version:
            self._live_cache = [h for h in self.hotspots if h.alive]
            self._live_cache_version = version
        return self._live_cache

    def live_index(self):
        """A shared spatial index over the live hotspots.

        Devices attach this as their ``gateway_index`` instead of a
        ``gateway_directory`` callable: it caches against the topology
        version exactly like :meth:`live_hotspots` and indexes the same
        population in the same order, so nearest-hearing queries break
        distance ties identically to a scan of the live list.  The cell
        size tracks the LoRa coverage radius at the planner's default
        threshold.
        """
        if self._live_index is None:
            from ..radio.link import coverage_radius_m
            from .topology import GatewayIndex

            cell = max(
                coverage_radius_m(self.lora.spec(), suburban_path_loss(), 0.5),
                50.0,
            )
            self._live_index = GatewayIndex(
                self.sim, self.live_hotspots, cell_size_m=cell
            )
        return self._live_index

    def pay_and_forward(self, packet: Packet) -> bool:
        """Debit the wallet for ``packet``; the radio hop happens at the
        device.  Returns False if the wallet is empty (service refusal)."""
        return self.wallet.debit(packet.credit_units)

    def fail_as(self, asn: int) -> int:
        """Kill the backhaul of one AS (correlated-failure injection).

        Returns the number of hotspots stranded.
        """
        backhaul = self.backhauls.get(asn)
        if backhaul is None:
            return 0
        backhaul.fail(reason=f"as{asn}-outage")
        return sum(1 for h in self.live_hotspots() if h.asn == asn)
