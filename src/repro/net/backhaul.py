"""Backhaul models: fiber, cellular (with generation sunsets), campus.

§3.3's taxonomy.  A backhaul is an :class:`~repro.core.entity.Entity`
with an availability process (outages with MTBF/MTTR) plus, for
cellular, a hard *sunset*: the carrier retires the radio generation and
the backhaul dies permanently — the 2G story the paper tells, where "a
fixed resource (spectrum) that they do not own or control is taken
away."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import units
from ..core.engine import Simulation
from ..core.entity import Entity


@dataclass(frozen=True)
class OutageModel:
    """Alternating up/down renewal process for service availability."""

    mtbf: float = units.days(180.0)   # mean time between outages
    mttr: float = units.hours(8.0)    # mean time to restore

    def __post_init__(self) -> None:
        if self.mtbf <= 0.0:
            raise ValueError("mtbf must be positive")
        if self.mttr <= 0.0:
            raise ValueError("mttr must be positive")

    @property
    def availability(self) -> float:
        """Long-run fraction of time in service."""
        return self.mtbf / (self.mtbf + self.mttr)


class Backhaul(Entity):
    """Base backhaul: an availability process between gateway and cloud.

    ``up`` tracks short outages (distinct from entity death); a packet
    arriving during an outage is lost.  Subclasses set economics and
    sunset behaviour.
    """

    TIER = "backhaul"

    #: Human-readable technology label, overridden by subclasses.
    TECHNOLOGY = "generic"

    def __init__(
        self,
        sim: Simulation,
        name: Optional[str] = None,
        outage_model: Optional[OutageModel] = None,
    ) -> None:
        super().__init__(sim, name)
        self.outage_model = outage_model or OutageModel()
        self.up = True
        # Outage accounting lives in the run's metrics registry; the
        # ``outages`` attribute name survives as a property below.
        # ``downtime_s`` stays a plain float (simulated-seconds sum) and
        # is exported through a lazy gauge sampled at snapshot time.
        self._c_outages = sim.metrics.counter(
            "net_backhaul_outages_total", tier=self.TIER, entity=self.name
        )
        self.downtime_s = 0.0
        sim.metrics.gauge_fn(
            "net_backhaul_downtime_seconds",
            lambda: self.downtime_s,
            agg="sum",
            tier=self.TIER,
            entity=self.name,
        )
        self._down_since: Optional[float] = None

    def on_deploy(self) -> None:
        self._schedule_next_outage()

    def _schedule_next_outage(self) -> None:
        rng = self.sim.rng("backhaul-outages")
        delay = float(rng.exponential(self.outage_model.mtbf))
        self.sim.call_in(delay, self._outage_begins, label=f"outage:{self.name}")

    def _outage_begins(self) -> None:
        if not self.alive:
            return
        self.up = False
        self._c_outages.value += 1
        self._down_since = self.sim.now
        self.sim.record("backhaul-outage", self.name)
        rng = self.sim.rng("backhaul-outages")
        duration = float(rng.exponential(self.outage_model.mttr))
        self.sim.call_in(duration, self._outage_ends, label=f"restore:{self.name}")

    def _outage_ends(self) -> None:
        if self._down_since is not None:
            self.downtime_s += self.sim.now - self._down_since
            self._down_since = None
        if not self.alive:
            return
        self.up = True
        self.sim.record("backhaul-restore", self.name)
        self._schedule_next_outage()

    @property
    def outages(self) -> int:
        """Natural outages begun so far (registry-backed)."""
        return self._c_outages.value

    @outages.setter
    def outages(self, value: int) -> None:
        self._c_outages.value = value

    def carries_traffic(self) -> bool:
        """True if a packet offered right now would get through.

        Injected degrade windows (:meth:`Entity.force_degrade`) overlay
        the natural outage process rather than toggling ``up``, so they
        compose with — and never corrupt — the renewal bookkeeping.
        """
        return self.alive and self.up and self.forced_degradations == 0

    def annual_cost_usd(self) -> float:
        """Recurring cost per year; subclasses override."""
        return 0.0


class FiberBackhaul(Backhaul):
    """Municipal/owned fiber: high capex paid once, tiny opex, very
    reliable, effectively no sunset — "wires generally will not go
    anywhere" (§3.3.2).
    """

    TECHNOLOGY = "fiber"

    def __init__(
        self,
        sim: Simulation,
        name: Optional[str] = None,
        capex_usd: float = 50_000.0,
        opex_usd_per_year: float = 1_200.0,
    ) -> None:
        super().__init__(
            sim,
            name,
            outage_model=OutageModel(mtbf=units.years(2.0), mttr=units.hours(12.0)),
        )
        self.capex_usd = capex_usd
        self.opex_usd_per_year = opex_usd_per_year

    def annual_cost_usd(self) -> float:
        return self.opex_usd_per_year


class CellularBackhaul(Backhaul):
    """Carrier cellular service: zero capex, per-gateway subscription,
    and a *sunset date* after which the generation is retired for good.

    No operator guarantees 50-year service periods; historical
    generation lifetimes run 15–25 years from launch to shutdown.
    """

    TECHNOLOGY = "cellular"

    def __init__(
        self,
        sim: Simulation,
        name: Optional[str] = None,
        generation: str = "4G",
        subscription_usd_per_year: float = 240.0,
        sunset_at: Optional[float] = None,
    ) -> None:
        super().__init__(
            sim,
            name,
            outage_model=OutageModel(mtbf=units.days(90.0), mttr=units.hours(4.0)),
        )
        self.generation = generation
        self.subscription_usd_per_year = subscription_usd_per_year
        self.sunset_at = sunset_at

    def on_deploy(self) -> None:
        super().on_deploy()
        if self.sunset_at is not None:
            when = max(self.sunset_at, self.sim.now)
            self.sim.call_at(when, self._sunset, label=f"sunset:{self.name}")

    def _sunset(self) -> None:
        if self.alive:
            self.sim.record(
                "sunset", self.name, generation=self.generation
            )
            self.retire(reason=f"{self.generation}-sunset")

    def annual_cost_usd(self) -> float:
        return self.subscription_usd_per_year


class CampusBackhaul(Backhaul):
    """University/municipal institutional network: free at the point of
    use, reliable, maintained by someone else's NOC — §4.3's
    "municipal-provided" stand-in for the owned-gateway arm."""

    TECHNOLOGY = "campus"

    def __init__(self, sim: Simulation, name: Optional[str] = None) -> None:
        super().__init__(
            sim,
            name,
            outage_model=OutageModel(mtbf=units.days(270.0), mttr=units.hours(6.0)),
        )

    def annual_cost_usd(self) -> float:
        return 0.0


class OpaqueBackhaul(Backhaul):
    """The third-party case: "the backhaul is largely opaque so long as
    third-party gateways remain operational" (§4.3).  Availability
    reflects a residential-ISP mix rather than an SLA."""

    TECHNOLOGY = "opaque-isp"

    def __init__(
        self, sim: Simulation, name: Optional[str] = None, asn: Optional[int] = None
    ) -> None:
        super().__init__(
            sim,
            name,
            outage_model=OutageModel(mtbf=units.days(45.0), mttr=units.hours(10.0)),
        )
        self.asn = asn
        if asn is not None:
            self.tags["asn"] = str(asn)
