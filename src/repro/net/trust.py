"""Longitudinal trust for immutable transmit-only devices (§4.1).

"These are devices with minimal security risk, as they are incapable of
receiving data, but also of limited longitudinal trust, as their
security and signing techniques can never be modified."

A device ships with one factory signing scheme, forever.  Over decades
the scheme weakens (cryptanalytic progress, key-length erosion) and
individual keys leak.  The *backend* is the only place policy can live:
it decides how long to keep accepting signatures from aging schemes,
and maintains the blocklist of known-compromised devices that §3.2's
gateways enforce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core import units
from ..core.rng import RandomStreams


class TrustLevel(enum.Enum):
    """Backend verdict on a device's signatures."""

    TRUSTED = "trusted"          # scheme strong, key clean
    DEGRADED = "degraded"        # scheme past its cryptoperiod: accept,
                                 # but corroborate with neighbours
    UNTRUSTED = "untrusted"      # scheme broken or key compromised


@dataclass(frozen=True)
class SigningScheme:
    """An immutable factory signing configuration.

    ``cryptoperiod_years`` — how long the scheme is considered strong
    (NIST-style guidance).  ``break_median_years`` — log-normal median
    of the time until the scheme is *practically* broken; a century is
    long enough that some schemes will fall.
    """

    name: str
    cryptoperiod_years: float = 20.0
    break_median_years: float = 60.0
    break_sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.cryptoperiod_years <= 0.0:
            raise ValueError("cryptoperiod_years must be positive")
        if self.break_median_years <= 0.0:
            raise ValueError("break_median_years must be positive")

    def sample_break_time(self, rng: np.random.Generator) -> float:
        """Draw the time (seconds) at which this scheme falls."""
        return float(
            rng.lognormal(
                np.log(units.years(self.break_median_years)), self.break_sigma
            )
        )


#: Plausible 2021-era device schemes, weakest to strongest.
SCHEMES = {
    "aes128-cmac": SigningScheme("aes128-cmac", 25.0, 70.0),
    "ecdsa-p256": SigningScheme("ecdsa-p256", 20.0, 45.0),
    "ed25519": SigningScheme("ed25519", 25.0, 55.0),
    "hmac-sha256": SigningScheme("hmac-sha256", 30.0, 80.0),
}


@dataclass
class TrustPolicy:
    """The backend's acceptance policy for aging immutable devices.

    ``degraded_acceptance_years`` — how long past the cryptoperiod the
    backend keeps accepting (with corroboration) before cutting off.
    ``key_leak_rate_per_year`` — per-device probability of individual
    key compromise (physical extraction from an embedded, unattended
    device is slow but not impossible).
    """

    degraded_acceptance_years: float = 15.0
    key_leak_rate_per_year: float = 0.002

    def __post_init__(self) -> None:
        if self.degraded_acceptance_years < 0.0:
            raise ValueError("degraded_acceptance_years must be non-negative")
        if not 0.0 <= self.key_leak_rate_per_year <= 1.0:
            raise ValueError("key_leak_rate_per_year must be in [0, 1]")


@dataclass
class DeviceTrustRecord:
    """Backend-side trust state for one device."""

    device: str
    scheme: SigningScheme
    commissioned_at: float
    scheme_breaks_at: float
    key_leaks_at: Optional[float] = None

    def level_at(self, t: float, policy: TrustPolicy) -> TrustLevel:
        """Trust verdict at time ``t`` under ``policy``."""
        if self.key_leaks_at is not None and t >= self.key_leaks_at:
            return TrustLevel.UNTRUSTED
        if t >= self.scheme_breaks_at:
            return TrustLevel.UNTRUSTED
        age = t - self.commissioned_at
        strong_until = units.years(self.scheme.cryptoperiod_years)
        if age < strong_until:
            return TrustLevel.TRUSTED
        if age < strong_until + units.years(policy.degraded_acceptance_years):
            return TrustLevel.DEGRADED
        return TrustLevel.UNTRUSTED


class TrustRegistry:
    """The backend's ledger of device keys, verdicts, and blocklists.

    Randomness must be explicit: pass either ``rng`` (typically
    ``sim.rng("trust")``) or ``seed``, from which a dedicated
    ``net.trust`` stream is derived.  The old silent
    ``default_rng(0)`` fallback made every unseeded registry replay the
    same break/leak times — two "independent" backends were secretly
    correlated.
    """

    def __init__(
        self,
        policy: Optional[TrustPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[int] = None,
    ) -> None:
        if rng is None and seed is None:
            raise ValueError(
                "TrustRegistry requires an explicit rng= (e.g. "
                "sim.rng('trust')) or seed=; refusing to default to a "
                "shared seed"
            )
        if rng is not None and seed is not None:
            raise ValueError("pass either rng= or seed=, not both")
        self.policy = policy if policy is not None else TrustPolicy()
        self._rng = rng if rng is not None else RandomStreams(seed).get("net.trust")
        self.records: Dict[str, DeviceTrustRecord] = {}

    def commission(
        self, device: str, scheme_name: str, at: float = 0.0
    ) -> DeviceTrustRecord:
        """Register a device's immutable factory key at deployment."""
        if scheme_name not in SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme_name!r}; options: {sorted(SCHEMES)}"
            )
        if device in self.records:
            raise ValueError(f"device {device!r} already commissioned")
        scheme = SCHEMES[scheme_name]
        breaks_at = at + scheme.sample_break_time(self._rng)
        leak_rate = self.policy.key_leak_rate_per_year
        leaks_at: Optional[float] = None
        if leak_rate > 0.0:
            leaks_at = at + float(
                self._rng.exponential(units.YEAR / leak_rate)
            )
        record = DeviceTrustRecord(
            device=device,
            scheme=scheme,
            commissioned_at=at,
            scheme_breaks_at=breaks_at,
            key_leaks_at=leaks_at,
        )
        self.records[device] = record
        return record

    def level(self, device: str, t: float) -> TrustLevel:
        """Current verdict for one device."""
        record = self.records.get(device)
        if record is None:
            return TrustLevel.UNTRUSTED
        return record.level_at(t, self.policy)

    def blocklist_at(self, t: float) -> List[str]:
        """Devices the gateways should refuse to forward (§3.2)."""
        return sorted(
            name
            for name, record in self.records.items()
            if record.level_at(t, self.policy) is TrustLevel.UNTRUSTED
        )

    def census(self, t: float) -> Dict[TrustLevel, int]:
        """Fleet-wide trust composition at time ``t``."""
        counts = {level: 0 for level in TrustLevel}
        for record in self.records.values():
            counts[record.level_at(t, self.policy)] += 1
        return counts

    def trusted_fraction(self, t: float) -> float:
        """Share of the fleet whose data is still fully trusted."""
        if not self.records:
            return 0.0
        census = self.census(t)
        return census[TrustLevel.TRUSTED] / len(self.records)


def trust_horizon(
    registry: TrustRegistry,
    horizon: float = units.years(50.0),
    step: float = units.years(1.0),
    min_fraction: float = 0.5,
) -> float:
    """Time at which the fully-trusted fraction first falls below
    ``min_fraction`` — the fleet's *trust lifetime*, which §4.1 implies
    is shorter than its *hardware* lifetime.

    Returns ``horizon`` if trust held throughout.
    """
    if not registry.records:
        raise ValueError("registry has no commissioned devices")
    t = 0.0
    while t <= horizon:
        if registry.trusted_fraction(t) < min_fraction:
            return t
        t += step
    return horizon
