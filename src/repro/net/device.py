"""Edge devices: energy-harvesting, transmit-only sensors (§4.1).

An ``EdgeDevice`` wakes on its reporting interval, pays the energy cost
of one duty cycle, and blurts a packet at every reachable gateway of its
radio technology until one decodes it.  It is incapable of receiving —
minimal security risk, limited longitudinal trust, and no dependence on
any *specific* gateway instance (when its attachment policy allows).

Device hardware failure is a component-level competing-risks process
armed at deployment.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.engine import PeriodicTask, Simulation
from ..core.entity import Entity
from ..core.policy import AttachmentPolicy
from ..energy.harvester import HarvestingSystem
from ..radio.link import RadioSpec, attempt_delivery
from ..radio.packets import Packet, Reading
from ..reliability.distributions import LifetimeDistribution
from ..reliability.failure import FailureProcess
from .gateway import Gateway
from .geometry import ORIGIN, Position

#: A broadcast is heard (or not) by everything in range at once; trying
#: the four best live links covers any realistic decode set.  Shared by
#: the per-entity duty cycle, the spatial-index candidate query, and the
#: cohort-batched path, so all three try identical link sequences.
MAX_LINKS_TRIED = 4


class EdgeDevice(Entity):
    """A transmit-only monitoring sensor.

    Parameters
    ----------
    technology:
        Radio family, must match candidate gateways ("802.15.4"/"lora").
    spec:
        Uplink radio parameters.
    airtime_s:
        Time on air for this device's frame (from the PHY model).
    report_interval:
        Seconds between scheduled transmissions.
    power:
        Harvesting system, or None for an always-powered node (the
        energy constraint is then skipped; hardware lifetime still
        applies via ``lifetime_model``).
    lifetime_model:
        Component-level competing-risks model armed at deployment; None
        disables hardware failure (useful in unit tests).
    attachment:
        Whether the device may use any compatible gateway or is bound to
        its first.
    """

    TIER = "device"

    def __init__(
        self,
        sim: Simulation,
        technology: str,
        spec: RadioSpec,
        airtime_s: float,
        report_interval: float,
        payload_bytes: int = 24,
        position: Position = ORIGIN,
        power: Optional[HarvestingSystem] = None,
        lifetime_model: Optional[LifetimeDistribution] = None,
        attachment: AttachmentPolicy = AttachmentPolicy.ANY_COMPATIBLE,
        sensor_kind: str = "concrete-health",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name)
        if report_interval <= 0.0:
            raise ValueError("report_interval must be positive")
        if airtime_s <= 0.0:
            raise ValueError("airtime_s must be positive")
        self.technology = technology
        self.spec = spec
        self.airtime_s = airtime_s
        self.report_interval = report_interval
        self.payload_bytes = payload_bytes
        self.position = position
        self.power = power
        self.lifetime_model = lifetime_model
        self.attachment = attachment
        self.sensor_kind = sensor_kind
        self.signing_key = f"factory-key:{self.name}"

        #: Cached nearest-first candidate list, valid while the
        #: simulation's ``topology_version`` is unchanged (bumped by
        #: every entity lifecycle transition and dependency rewiring).
        self._candidate_cache: Optional[List[Gateway]] = None
        self._candidate_version: int = -1

        #: Optional dynamic discovery: a zero-argument callable returning
        #: the current gateway population (e.g. a Helium network's live
        #: hotspots).  When set, transmissions consider these gateways in
        #: addition to static ``depends_on`` links — the device relies on
        #: *properties* of infrastructure, not specific instances.
        self.gateway_directory = None
        #: Optional spatial discovery: a
        #: :class:`~repro.net.topology.GatewayIndex` answering
        #: nearest-hearing range queries.  Preferred over the directory
        #: when both are set — same candidate semantics, O(log-ish)
        #: instead of a full population rebuild per topology change.
        self.gateway_index = None

        # Duty-cycle accounting lives in the run's metrics registry —
        # one labelled instrument per outcome, registered once here and
        # bumped by direct reference in the warm path.  The legacy
        # attribute names remain as read/write properties below.
        metrics = sim.metrics
        self._c_attempts = metrics.counter(
            "net_reports_attempted_total", tier=self.TIER, entity=self.name
        )
        self._c_delivered = metrics.counter(
            "net_reports_delivered_total", tier=self.TIER, entity=self.name
        )
        self._c_energy_denied = metrics.counter(
            "net_reports_dropped_total",
            tier=self.TIER,
            entity=self.name,
            reason="energy",
        )
        self._c_no_gateway = metrics.counter(
            "net_reports_dropped_total",
            tier=self.TIER,
            entity=self.name,
            reason="no-gateway",
        )
        self._c_radio_lost = metrics.counter(
            "net_reports_dropped_total",
            tier=self.TIER,
            entity=self.name,
            reason="radio",
        )
        self._task: Optional[PeriodicTask] = None
        self._failure: Optional[FailureProcess] = None
        self._last_energy_step: float = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_deploy(self) -> None:
        self._last_energy_step = self.sim.now
        if self.lifetime_model is not None:
            self._failure = FailureProcess(
                self.sim, self, self.lifetime_model, stream="device-hw"
            )
            self._failure.arm()
        self._task = self.sim.every(
            self.report_interval, self._report, label=f"report:{self.name}"
        )

    def on_end(self, reason: str) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None
        if self._failure is not None:
            self._failure.disarm()
            self._failure = None

    # ------------------------------------------------------------------
    # The duty cycle
    # ------------------------------------------------------------------
    @property
    def gateway_directory(self):
        """The dynamic-discovery callable (see ``__init__``), or None."""
        return self._gateway_directory

    @gateway_directory.setter
    def gateway_directory(self, directory) -> None:
        self._gateway_directory = directory
        self._candidate_cache = None

    @property
    def gateway_index(self):
        """The spatial-discovery index (see ``__init__``), or None."""
        return self._gateway_index

    @gateway_index.setter
    def gateway_index(self, index) -> None:
        self._gateway_index = index
        self._candidate_cache = None

    def candidate_gateways(self) -> List[Gateway]:
        """Gateways this device may try, ordered nearest-first.

        Instance-bound devices only ever try their *literal first*
        dependency — the §3.1 anti-pattern whose cost the policy
        ablation measures.  The binding is to the commissioned instance
        itself: if that dependency is incompatible or not a gateway at
        all, the device is stranded rather than silently rebound to a
        later dependency.

        The list is cached per device and rebuilt only when the
        simulation's topology version moves (a gateway deployed, failed,
        retired, or churned; a dependency rewired).  Between rebuilds
        the gateway population is provably unchanged, so the cache is
        exact, not approximate.  Entries may since have died — callers
        must check :meth:`Gateway.hears` on the links they actually try.

        With a ``gateway_index`` attached, discovery asks the index for
        the ``MAX_LINKS_TRIED`` nearest gateways currently able to hear
        instead of materialising the whole population.  Because
        ``hears()`` only flips on version-bumping transitions and
        :meth:`_report` both skips non-hearing candidates and stops
        after ``MAX_LINKS_TRIED`` hearing links, the tried-link sequence
        is identical to the full-directory rebuild.
        """
        version = self.sim.topology_version
        cached = self._candidate_cache
        if cached is not None and self._candidate_version == version:
            return cached
        candidates = list(self.depends_on)
        if self.attachment is AttachmentPolicy.INSTANCE_BOUND:
            candidates = candidates[:1]
        elif self._gateway_index is not None:
            candidates.extend(
                self._gateway_index.nearest_hearing(
                    self.position, count=MAX_LINKS_TRIED
                )
            )
        elif self._gateway_directory is not None:
            candidates.extend(self._gateway_directory())
        seen = set()
        gateways = []
        technology = self.technology
        for g in candidates:
            if not isinstance(g, Gateway) or g.technology != technology:
                continue
            if id(g) in seen:
                continue
            seen.add(id(g))
            gateways.append(g)
        position = self.position
        gateways.sort(key=lambda g: position.distance_sq_to(g.position))
        self._candidate_cache = gateways
        self._candidate_version = version
        return gateways

    def _report(self) -> None:
        if not self.alive or self.forced_degradations:
            return  # dead, or muted by an injected degrade window
        self._c_attempts.value += 1
        if not self._pay_energy():
            self._c_energy_denied.value += 1
            return
        packet = self.make_packet()
        heard_by: Optional[Gateway] = None
        rng = self.sim.rng("radio")
        position = self.position
        # A broadcast is heard (or not) by everything in range at once;
        # trying the four best live links covers any realistic decode
        # set.  ``hears()`` is evaluated lazily on the links actually
        # tried, never on the whole candidate list.
        tried = 0
        for gateway in self.candidate_gateways():
            if not gateway.hears():
                continue
            tried += 1
            distance = max(position.distance_to(gateway.position), 1.0)
            if attempt_delivery(self.spec, gateway.path_loss, distance, rng):
                heard_by = gateway
                break
            if tried == MAX_LINKS_TRIED:
                break
        if tried == 0:
            self._c_no_gateway.value += 1
            return
        if heard_by is None:
            self._c_radio_lost.value += 1
            return
        if heard_by.receive(packet):
            self._c_delivered.value += 1

    def _pay_energy(self) -> bool:
        if self.power is None:
            return True
        dt = self.sim.now - self._last_energy_step
        self._last_energy_step = self.sim.now
        self.power.step(dt, self.sim.rng("energy"))
        return self.power.try_transmit(self.airtime_s)

    def make_packet(self) -> Packet:
        """Build the uplink frame for the current reading."""
        rng = self.sim.rng("sensing")
        reading = Reading(
            kind=self.sensor_kind,
            value=float(rng.normal(loc=1.0, scale=0.05)),
            unit="normalized",
        )
        return Packet(
            source=self.name,
            created_at=self.sim.now,
            payload_bytes=self.payload_bytes,
            reading=reading,
            signed_with=self.signing_key,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    # Compatibility views over the registry-backed counters.  Setters
    # exist because corruption-injection tests (and any legacy caller)
    # assign these directly; the write lands in the same instrument the
    # duty cycle bumps, so there is exactly one source of truth.
    @property
    def attempts(self) -> int:
        """Scheduled reports attempted (registry-backed)."""
        return self._c_attempts.value

    @attempts.setter
    def attempts(self, value: int) -> None:
        self._c_attempts.value = value

    @property
    def delivered(self) -> int:
        """Reports that reached a recording endpoint (registry-backed)."""
        return self._c_delivered.value

    @delivered.setter
    def delivered(self, value: int) -> None:
        self._c_delivered.value = value

    @property
    def energy_denied(self) -> int:
        """Reports skipped for lack of harvested energy (registry-backed)."""
        return self._c_energy_denied.value

    @energy_denied.setter
    def energy_denied(self, value: int) -> None:
        self._c_energy_denied.value = value

    @property
    def no_gateway(self) -> int:
        """Reports with no live compatible gateway in range (registry-backed)."""
        return self._c_no_gateway.value

    @no_gateway.setter
    def no_gateway(self, value: int) -> None:
        self._c_no_gateway.value = value

    @property
    def radio_lost(self) -> int:
        """Reports lost on the radio link (registry-backed)."""
        return self._c_radio_lost.value

    @radio_lost.setter
    def radio_lost(self, value: int) -> None:
        self._c_radio_lost.value = value

    @property
    def delivery_rate(self) -> float:
        """Fraction of scheduled reports that reached the backend.

        NaN before the first attempt: a device that was never scheduled
        is not a device that always failed, and folding 0.0 into a
        fleet mean would penalise late-deployed cohorts.  Aggregators
        must skip NaN entries (``math.isnan``).
        """
        if self.attempts == 0:
            return math.nan
        return self.delivered / self.attempts

    def loss_breakdown(self) -> dict:
        """Counts by loss cause, for the experiment diary."""
        return {
            "attempts": self.attempts,
            "delivered": self.delivered,
            "energy_denied": self.energy_denied,
            "no_gateway": self.no_gateway,
            "radio_lost": self.radio_lost,
        }
