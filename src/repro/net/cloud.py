"""The backend data endpoint and the paper's end-to-end uptime metric.

§4's top-level metric: "some data arrives at some interval of time up to
once a week that is publicly accessible at centurysensors.com."
``CloudEndpoint`` logs every delivery and evaluates weekly uptime; it
also models the one *certain* maintenance event the paper calls out —
the 10-year maximum domain lease — as a renewal that, if ever missed,
takes the public page dark until re-registered.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List

from ..core import units
from ..core.engine import Simulation
from ..core.entity import Entity
from ..radio.packets import DeliveryRecord, Packet

#: ICANN's maximum registration period (§4.5, ref [18]).
MAX_DOMAIN_LEASE: float = units.years(10.0)


class CloudEndpoint(Entity):
    """The data display webpage / collection endpoint.

    ``renewal_miss_probability`` is the chance any given domain renewal
    is fumbled (staff turnover over 50 years makes this non-zero); a
    missed renewal causes an outage of ``renewal_recovery`` before
    someone notices and re-registers.
    """

    TIER = "cloud"

    def __init__(
        self,
        sim: Simulation,
        name: str = "centurysensors.com",
        renewal_miss_probability: float = 0.0,
        renewal_recovery: float = units.days(30.0),
        store_deliveries: bool = True,
    ) -> None:
        super().__init__(sim, name)
        if not 0.0 <= renewal_miss_probability <= 1.0:
            raise ValueError("renewal_miss_probability must be in [0, 1]")
        self.renewal_miss_probability = renewal_miss_probability
        self.renewal_recovery = renewal_recovery
        #: Optional override: a callable ``t -> miss probability`` used
        #: instead of the constant, e.g. an experimenter-succession
        #: model whose handoffs erode institutional memory (§4.5).
        self.miss_probability_fn = None
        #: City-scale switch: with ``store_deliveries=False`` the
        #: endpoint keeps only aggregates (per-week arrival counts, the
        #: gap histogram, the delivered counter) instead of one
        #: ``DeliveryRecord`` per packet — a 100k-device month would
        #: otherwise pin millions of record objects.  The weekly-uptime
        #: metric still evaluates exactly (see :meth:`weekly_uptime`).
        self.store_deliveries = store_deliveries
        self.deliveries: List[DeliveryRecord] = []
        self.per_device_last: Dict[str, float] = {}
        self._week_counts: Dict[int, int] = {}
        self._last_arrival: float = -1.0
        self.domain_up = True
        # Endpoint accounting in the run's metrics registry.  The
        # delivered counter closes the link-conservation chain the
        # auditor checks (device -> gateway -> endpoint); the gap
        # histogram buckets per-device inter-arrival times at 1 h, 6 h,
        # 1 d, 1 w, 4 w — the last edge being the paper's uptime window.
        metrics = sim.metrics
        self._c_delivered = metrics.counter(
            "net_packets_delivered_total", tier=self.TIER, entity=self.name
        )
        self._c_renewals = metrics.counter(
            "net_domain_renewals_total", tier=self.TIER, entity=self.name
        )
        self._c_missed_renewals = metrics.counter(
            "net_domain_renewals_missed_total", tier=self.TIER, entity=self.name
        )
        self._h_gap = metrics.histogram(
            "net_delivery_gap_seconds",
            edges=(3600.0, 21600.0, 86400.0, 604800.0, 2419200.0),
            tier=self.TIER,
            entity=self.name,
        )
        # Hot-path contract: deliver() bumps the bucket list directly
        # (one bisect + one list store), no method call per packet.
        self._gap_edges = self._h_gap.edges
        self._gap_buckets = self._h_gap.bucket_counts

    def on_deploy(self) -> None:
        self.sim.call_in(
            MAX_DOMAIN_LEASE, self._domain_renewal, label=f"lease:{self.name}"
        )

    def _domain_renewal(self) -> None:
        if not self.alive:
            return
        self._c_renewals.value += 1
        rng = self.sim.rng("domain-renewals")
        miss_probability = self.renewal_miss_probability
        if self.miss_probability_fn is not None:
            miss_probability = float(self.miss_probability_fn(self.sim.now))
        if rng.random() < miss_probability:
            self._c_missed_renewals.value += 1
            self.domain_up = False
            self.sim.record("domain-lapse", self.name)
            self.sim.call_in(self.renewal_recovery, self._domain_recover)
        self.sim.call_in(MAX_DOMAIN_LEASE, self._domain_renewal)

    def _domain_recover(self) -> None:
        self.domain_up = True
        self.sim.record("domain-recover", self.name)

    def accepting(self) -> bool:
        """True if a delivery offered right now would be recorded publicly."""
        return self.alive and self.domain_up and self.forced_degradations == 0

    def deliver(self, packet: Packet, via_gateway: str, via_backhaul: str) -> bool:
        """Record an arriving packet.  Returns False if the endpoint is dark."""
        if not self.accepting():
            return False
        now = self.sim.now
        if self.store_deliveries:
            self.deliveries.append(
                DeliveryRecord(
                    packet=packet,
                    received_at=now,
                    via_gateway=via_gateway,
                    via_backhaul=via_backhaul,
                )
            )
        else:
            week = int(now // units.WEEK)
            counts = self._week_counts
            counts[week] = counts.get(week, 0) + 1
            self._last_arrival = now
        self._c_delivered.value += 1
        per_device_last = self.per_device_last
        last = per_device_last.get(packet.source)
        if last is not None:
            self._gap_buckets[bisect_left(self._gap_edges, now - last)] += 1
        per_device_last[packet.source] = now
        return True

    # Compatibility views over the registry-backed counters.
    @property
    def delivered_count(self) -> int:
        """Packets recorded, independent of delivery-record storage.

        The registry-backed counter is the single source of truth;
        ``len(deliveries)`` only agrees with it while
        ``store_deliveries`` is on, so aggregate consumers (the
        invariant auditor, fleet summaries) read this instead.
        """
        return self._c_delivered.value

    @property
    def delivery_gap_buckets(self) -> tuple:
        """Bucket counts of the per-device inter-arrival histogram.

        A read-only aggregate view (1 h / 6 h / 1 d / 1 w / 4 w edges
        plus overflow) that exists in both delivery-storage modes.
        """
        return tuple(self._gap_buckets)

    @property
    def domain_renewals(self) -> int:
        """Domain lease renewals attempted (registry-backed)."""
        return self._c_renewals.value

    @domain_renewals.setter
    def domain_renewals(self, value: int) -> None:
        self._c_renewals.value = value

    @property
    def missed_renewals(self) -> int:
        """Renewals fumbled, taking the page dark (registry-backed)."""
        return self._c_missed_renewals.value

    @missed_renewals.setter
    def missed_renewals(self, value: int) -> None:
        self._c_missed_renewals.value = value

    # ------------------------------------------------------------------
    # The paper's uptime metric
    # ------------------------------------------------------------------
    def weekly_uptime(self, start: float, end: float) -> "UptimeReport":
        """Fraction of whole weeks in [start, end) with >= 1 arrival.

        This is exactly the §4 metric: the experiment is "up" in a week
        if *some* data arrived that week.
        """
        if end <= start:
            raise ValueError(f"end ({end}) must exceed start ({start})")
        n_weeks = int((end - start) // units.WEEK)
        if n_weeks == 0:
            raise ValueError("window shorter than one week")
        hit = [False] * n_weeks
        if self.store_deliveries:
            arrivals = [
                r.received_at
                for r in self.deliveries
                if start <= r.received_at < end
            ]
            total_deliveries = len(arrivals)
            for t in arrivals:
                index = int((t - start) // units.WEEK)
                if index < n_weeks:
                    hit[index] = True
        else:
            # Aggregate mode keeps per-week counts bucketed from t=0, so
            # it can evaluate exactly only the windows those buckets
            # resolve: starting at 0 and extending past the last arrival.
            if start != 0.0:
                raise ValueError(
                    "store_deliveries=False endpoints bucket arrivals "
                    "from t=0; weekly_uptime requires start == 0.0"
                )
            if self._last_arrival >= end:
                raise ValueError(
                    "store_deliveries=False endpoints cannot evaluate a "
                    f"window ending at {end} before the last arrival at "
                    f"{self._last_arrival}"
                )
            total_deliveries = 0
            for week, count in self._week_counts.items():
                total_deliveries += count
                if week < n_weeks:
                    hit[week] = True
        up_weeks = sum(hit)
        # Longest dark gap, in weeks.
        longest_gap = 0
        current = 0
        for h in hit:
            if h:
                current = 0
            else:
                current += 1
                longest_gap = max(longest_gap, current)
        return UptimeReport(
            weeks=n_weeks,
            up_weeks=up_weeks,
            uptime=up_weeks / n_weeks,
            longest_gap_weeks=longest_gap,
            total_deliveries=total_deliveries,
        )

    def device_silence(self, horizon_end: float) -> Dict[str, float]:
        """Seconds since each known device was last heard, at ``horizon_end``."""
        return {
            name: horizon_end - last for name, last in self.per_device_last.items()
        }


@dataclass(frozen=True)
class UptimeReport:
    """Result of evaluating the weekly-uptime metric over a window."""

    weeks: int
    up_weeks: int
    uptime: float
    longest_gap_weeks: int
    total_deliveries: int

    def meets_goal(self, required: float = 0.99) -> bool:
        """Did the system hit the target weekly uptime?"""
        return self.uptime >= required
