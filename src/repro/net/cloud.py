"""The backend data endpoint and the paper's end-to-end uptime metric.

§4's top-level metric: "some data arrives at some interval of time up to
once a week that is publicly accessible at centurysensors.com."
``CloudEndpoint`` logs every delivery and evaluates weekly uptime; it
also models the one *certain* maintenance event the paper calls out —
the 10-year maximum domain lease — as a renewal that, if ever missed,
takes the public page dark until re-registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core import units
from ..core.engine import Simulation
from ..core.entity import Entity
from ..radio.packets import DeliveryRecord, Packet

#: ICANN's maximum registration period (§4.5, ref [18]).
MAX_DOMAIN_LEASE: float = units.years(10.0)


class CloudEndpoint(Entity):
    """The data display webpage / collection endpoint.

    ``renewal_miss_probability`` is the chance any given domain renewal
    is fumbled (staff turnover over 50 years makes this non-zero); a
    missed renewal causes an outage of ``renewal_recovery`` before
    someone notices and re-registers.
    """

    TIER = "cloud"

    def __init__(
        self,
        sim: Simulation,
        name: str = "centurysensors.com",
        renewal_miss_probability: float = 0.0,
        renewal_recovery: float = units.days(30.0),
    ) -> None:
        super().__init__(sim, name)
        if not 0.0 <= renewal_miss_probability <= 1.0:
            raise ValueError("renewal_miss_probability must be in [0, 1]")
        self.renewal_miss_probability = renewal_miss_probability
        self.renewal_recovery = renewal_recovery
        #: Optional override: a callable ``t -> miss probability`` used
        #: instead of the constant, e.g. an experimenter-succession
        #: model whose handoffs erode institutional memory (§4.5).
        self.miss_probability_fn = None
        self.deliveries: List[DeliveryRecord] = []
        self.per_device_last: Dict[str, float] = {}
        self.domain_up = True
        self.domain_renewals = 0
        self.missed_renewals = 0

    def on_deploy(self) -> None:
        self.sim.call_in(
            MAX_DOMAIN_LEASE, self._domain_renewal, label=f"lease:{self.name}"
        )

    def _domain_renewal(self) -> None:
        if not self.alive:
            return
        self.domain_renewals += 1
        rng = self.sim.rng("domain-renewals")
        miss_probability = self.renewal_miss_probability
        if self.miss_probability_fn is not None:
            miss_probability = float(self.miss_probability_fn(self.sim.now))
        if rng.random() < miss_probability:
            self.missed_renewals += 1
            self.domain_up = False
            self.sim.record("domain-lapse", self.name)
            self.sim.call_in(self.renewal_recovery, self._domain_recover)
        self.sim.call_in(MAX_DOMAIN_LEASE, self._domain_renewal)

    def _domain_recover(self) -> None:
        self.domain_up = True
        self.sim.record("domain-recover", self.name)

    def accepting(self) -> bool:
        """True if a delivery offered right now would be recorded publicly."""
        return self.alive and self.domain_up and self.forced_degradations == 0

    def deliver(self, packet: Packet, via_gateway: str, via_backhaul: str) -> bool:
        """Record an arriving packet.  Returns False if the endpoint is dark."""
        if not self.accepting():
            return False
        record = DeliveryRecord(
            packet=packet,
            received_at=self.sim.now,
            via_gateway=via_gateway,
            via_backhaul=via_backhaul,
        )
        self.deliveries.append(record)
        self.per_device_last[packet.source] = self.sim.now
        return True

    # ------------------------------------------------------------------
    # The paper's uptime metric
    # ------------------------------------------------------------------
    def weekly_uptime(self, start: float, end: float) -> "UptimeReport":
        """Fraction of whole weeks in [start, end) with >= 1 arrival.

        This is exactly the §4 metric: the experiment is "up" in a week
        if *some* data arrived that week.
        """
        if end <= start:
            raise ValueError(f"end ({end}) must exceed start ({start})")
        n_weeks = int((end - start) // units.WEEK)
        if n_weeks == 0:
            raise ValueError("window shorter than one week")
        arrivals = [r.received_at for r in self.deliveries if start <= r.received_at < end]
        hit = [False] * n_weeks
        for t in arrivals:
            index = int((t - start) // units.WEEK)
            if index < n_weeks:
                hit[index] = True
        up_weeks = sum(hit)
        # Longest dark gap, in weeks.
        longest_gap = 0
        current = 0
        for h in hit:
            if h:
                current = 0
            else:
                current += 1
                longest_gap = max(longest_gap, current)
        return UptimeReport(
            weeks=n_weeks,
            up_weeks=up_weeks,
            uptime=up_weeks / n_weeks,
            longest_gap_weeks=longest_gap,
            total_deliveries=len(arrivals),
        )

    def device_silence(self, horizon_end: float) -> Dict[str, float]:
        """Seconds since each known device was last heard, at ``horizon_end``."""
        return {
            name: horizon_end - last for name, last in self.per_device_last.items()
        }


@dataclass(frozen=True)
class UptimeReport:
    """Result of evaluating the weekly-uptime metric over a window."""

    weeks: int
    up_weeks: int
    uptime: float
    longest_gap_weeks: int
    total_deliveries: int

    def meets_goal(self, required: float = 0.99) -> bool:
        """Did the system hit the target weekly uptime?"""
        return self.uptime >= required
