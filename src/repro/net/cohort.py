"""Cohort-batched duty cycling for city-scale fleets.

A 100k-device city cannot afford one entity, one periodic task, and one
Python callback per device per tick.  ``DeviceCohort`` services a whole
batch of *homogeneous* devices (same radio, schedule, harvester, and
deploy time) from a single ``report`` event, holding member state as
struct-of-arrays (positions, energy, death times) and counting outcomes
in label-aggregated instruments.

The batch path is a performance representation, not a new model: it
draws from the same named RNG streams ("energy", "sensing", "radio",
"device-hw") in the same per-stream order as the per-entity path, and
every floating-point step of the energy update is the same IEEE-754
operation the scalar :class:`~repro.energy.harvester.HarvestingSystem`
performs.  Because the named streams are independent generators, batching
all "energy" draws before all "sensing" draws is invisible — only the
order *within* each stream matters, and that order (member order, with
dead and energy-denied members skipped exactly where the scalar path
skips them) is preserved.  The golden equivalence fixture in
``tests/experiment/test_city_equivalence.py`` pins this bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from ..core import units
from ..core.engine import PeriodicTask, Simulation
from ..core.entity import Entity
from ..energy.budget import TaskProfile
from ..energy.sources import EnergySource
from ..radio.link import RadioSpec, attempt_delivery
from ..radio.packets import Packet, Reading
from ..reliability.distributions import LifetimeDistribution
from .device import MAX_LINKS_TRIED
from .gateway import Gateway
from .geometry import Position
from .topology import GatewayIndex


class CohortPower:
    """Struct-of-arrays harvesting state for one cohort.

    Vectorises :class:`~repro.energy.harvester.HarvestingSystem` over a
    capacitor-backed membership.  Exactness contract: for members
    stepped with the same ``dt`` sequence, ``stored_j[i]`` and the
    brownout flags match a scalar ``HarvestingSystem`` +
    :class:`~repro.energy.storage.Capacitor` per member to the last
    bit.  The scalar-vs-vector pinning test lives in
    ``tests/net/test_cohort.py``.

    Two scalar-path behaviours worth naming because they are easy to
    break when vectorising:

    * The deficit branch leaks *before* discharging, and an unaffordable
      deficit drains storage to exactly ``0.0`` (``s - s``, not a
      clamp).
    * Brownout recovery requires refilling to *twice* the brownout
      floor, and a node recovering on transmit pays the startup energy
      on top of the cycle cost.

    Recovery-time bookkeeping (``recovery_times``,
    ``last_brownout_at``) is deliberately not carried: the recovery
    *transition* does not read it, so dropping it cannot diverge the
    state trajectory; cohorts report brownout counts only.
    """

    def __init__(
        self,
        source: EnergySource,
        count: int,
        capacity_j: float = 0.5,
        leakage_per_day: float = 0.01,
        initial_stored_j: float = 0.0,
        profile: Optional[TaskProfile] = None,
        conversion_efficiency: float = 0.8,
        brownout_threshold: float = 0.05,
    ) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if capacity_j <= 0.0:
            raise ValueError(f"capacity_j must be positive, got {capacity_j}")
        if not 0.0 <= leakage_per_day < 1.0:
            raise ValueError("leakage_per_day must be in [0, 1)")
        if not 0.0 <= initial_stored_j <= capacity_j:
            raise ValueError("initial_stored_j must be within [0, capacity_j]")
        if not 0.0 < conversion_efficiency <= 1.0:
            raise ValueError("conversion_efficiency must be in (0, 1]")
        if not 0.0 <= brownout_threshold < 1.0:
            raise ValueError("brownout_threshold must be in [0, 1)")
        self.source = source
        self.count = count
        self.capacity_j = capacity_j
        self.leakage_per_day = leakage_per_day
        self.profile = profile if profile is not None else TaskProfile()
        self.conversion_efficiency = conversion_efficiency
        self.brownout_threshold = brownout_threshold
        self.stored_j = np.full(count, float(initial_stored_j))
        self.in_brownout = np.zeros(count, dtype=bool)
        self.brownout_counts = np.zeros(count, dtype=np.int64)
        self._clock = 0.0

    def step_many(
        self, dt: float, rng: np.random.Generator, active: np.ndarray
    ) -> None:
        """Advance the energy state of ``active`` members by ``dt``.

        ``active`` is an index array; members outside it (dead nodes)
        are untouched, mirroring a dead device whose duty cycle never
        runs again.  One harvest sample per active member is drawn from
        ``rng`` in member order — the same stream consumption as the
        scalar path's one ``power_at`` call per device.
        """
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        n = int(active.size)
        if dt == 0.0 or n == 0:
            return
        midpoint = self._clock + dt / 2.0
        self._clock += dt
        s = self.stored_j[active]
        b = self.in_brownout[active]
        harvested = self.source.power_at_many(midpoint, rng, n) * dt
        net = (
            harvested * self.conversion_efficiency
            - self.profile.sleep_power_w * dt
        )
        # Shared Python-scalar pow, identical to Capacitor.leak per member.
        leak = (1.0 - self.leakage_per_day) ** units.as_days(dt)
        positive = net >= 0.0
        # Surplus branch: charge (clipped to headroom) then leak.
        # Deficit branch: leak first, then try to discharge the deficit.
        absorbed = np.where(positive, np.minimum(net, self.capacity_j - s), 0.0)
        s = (s + absorbed) * leak
        deficit = np.where(positive, 0.0, -net)
        paid = deficit <= s
        # Unaffordable deficit drains to exactly 0.0 (scalar: s - s).
        s = np.where(paid, s - deficit, 0.0)
        newly = ~paid & ~b
        self.brownout_counts[active] += newly
        refill = 2.0 * self.brownout_threshold * self.capacity_j
        b = np.where(paid, b & (s < refill), True)
        self.stored_j[active] = s
        self.in_brownout[active] = b

    def try_transmit_many(self, airtime_s: float, active: np.ndarray) -> np.ndarray:
        """Attempt to pay one duty cycle for each active member.

        Returns the per-member success mask (aligned with ``active``).
        Draws nothing — affordability is pure arithmetic.
        """
        s = self.stored_j[active]
        b = self.in_brownout[active]
        cost = self.profile.cycle_energy(airtime_s)
        cost_each = np.where(b, cost + self.profile.startup_energy_j, cost)
        floor = self.brownout_threshold * self.capacity_j
        short = (s - cost_each) < floor
        s = np.where(short, s, s - cost_each)
        newly = short & ~b
        self.brownout_counts[active] += newly
        refill = 2.0 * self.brownout_threshold * self.capacity_j
        b = np.where(short, True, b & (s < refill))
        self.stored_j[active] = s
        self.in_brownout[active] = b
        return ~short

    @property
    def brownouts(self) -> int:
        """Total brownout entries across the membership."""
        return int(self.brownout_counts.sum())


class DeviceCohort(Entity):
    """A batch of homogeneous transmit-only devices behind one event.

    One ``report`` event per tick services every living member: a
    vectorised energy step, a vectorised sensing draw for the members
    that afforded the cycle, then the same per-member radio loop an
    :class:`~repro.net.device.EdgeDevice` runs (scalar draws on the
    "radio" stream, nearest-``MAX_LINKS_TRIED``-hearing candidates from
    the shared :class:`~repro.net.topology.GatewayIndex`).

    Member hardware lifetimes are drawn at deployment on the
    "device-hw" stream with one scalar ``sample(rng, 1)`` call per
    member in member order — the exact draw an armed
    :class:`~repro.reliability.failure.FailureProcess` makes — and
    deaths are applied as a mask (``death_at > now``, strict: a
    per-entity fail event at exactly tick time executes before the
    report event, so a member dying *at* the tick must not report).

    Outcome counters aggregate over the membership but keep the
    ``tier="device"`` label so fleet-level registry queries
    (``metrics.total(name, tier="device")``) see one fleet regardless
    of execution mode.
    """

    TIER = "device-cohort"

    def __init__(
        self,
        sim: Simulation,
        technology: str,
        spec: RadioSpec,
        airtime_s: float,
        report_interval: float,
        positions: List[Position],
        payload_bytes: int = 24,
        power: Optional[CohortPower] = None,
        lifetime_model: Optional[LifetimeDistribution] = None,
        sensor_kind: str = "concrete-health",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name)
        if report_interval <= 0.0:
            raise ValueError("report_interval must be positive")
        if airtime_s <= 0.0:
            raise ValueError("airtime_s must be positive")
        if not positions:
            raise ValueError("positions must be non-empty")
        if power is not None and power.count != len(positions):
            raise ValueError(
                f"power sized for {power.count} members, got {len(positions)}"
            )
        self.technology = technology
        self.spec = spec
        self.airtime_s = airtime_s
        self.report_interval = report_interval
        self.payload_bytes = payload_bytes
        self.positions = list(positions)
        self.count = len(self.positions)
        self.power = power
        self.lifetime_model = lifetime_model
        self.sensor_kind = sensor_kind
        self.member_names = [f"{self.name}.{i}" for i in range(self.count)]
        self.gateway_index: Optional[GatewayIndex] = None
        self.death_at = np.full(self.count, np.inf)

        #: Per-member cached candidate lists plus the invalidation state
        #: for the shrink-only reuse rule (see :meth:`_sync_candidates`).
        self._cand: List[Optional[List[Gateway]]] = [None] * self.count
        self._cand_version: int = -1
        self._hearing_ids: Set[int] = set()

        metrics = sim.metrics
        self._c_attempts = metrics.counter(
            "net_reports_attempted_total", tier="device", entity=self.name
        )
        self._c_delivered = metrics.counter(
            "net_reports_delivered_total", tier="device", entity=self.name
        )
        self._c_energy_denied = metrics.counter(
            "net_reports_dropped_total",
            tier="device",
            entity=self.name,
            reason="energy",
        )
        self._c_no_gateway = metrics.counter(
            "net_reports_dropped_total",
            tier="device",
            entity=self.name,
            reason="no-gateway",
        )
        self._c_radio_lost = metrics.counter(
            "net_reports_dropped_total",
            tier="device",
            entity=self.name,
            reason="radio",
        )
        self._task: Optional[PeriodicTask] = None
        self._last_energy_step: float = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_deploy(self) -> None:
        self._last_energy_step = self.sim.now
        if self.lifetime_model is not None:
            rng = self.sim.rng("device-hw")
            model = self.lifetime_model
            now = self.sim.now
            # One scalar draw per member, in member order — the same
            # stream consumption as arming one FailureProcess per
            # device.  model.sample(rng, n) would interleave the
            # per-component draws differently and break equivalence.
            for i in range(self.count):
                self.death_at[i] = now + float(model.sample(rng, 1)[0])
        self._task = self.sim.every(
            self.report_interval, self._report, label=f"report:{self.name}"
        )

    def on_end(self, reason: str) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    # Candidate gateways
    # ------------------------------------------------------------------
    def _sync_candidates(self, index: GatewayIndex) -> None:
        """Reconcile the per-member candidate caches with the topology.

        A member's cached list stays exact under *shrink-only* change:
        if no gateway has newly become able to hear since the member
        cached, and everything the member cached still hears, then the
        nearest-hearing set is provably unchanged (survivors keep their
        relative provider order, so distance ties still resolve the same
        way, and anything outside the cached set was already ranked
        below it).  Any rebuild that *gains* a hearer — a deployment, or
        a degradation lifted — drops every cache, because a newly
        hearing gateway may displace cached entries anywhere in the
        fleet.  The gained-hearer check costs O(population) once per
        topology bump; the reuse it buys avoids O(members) re-queries
        per gateway failure.
        """
        version = self.sim.topology_version
        if version == self._cand_version:
            return
        hearing = {id(g) for g in index.population() if g.hears()}
        if not hearing <= self._hearing_ids:
            self._cand = [None] * self.count
        self._hearing_ids = hearing
        self._cand_version = version

    def _candidates_for(self, i: int, index: GatewayIndex) -> List[Gateway]:
        cached = self._cand[i]
        if cached is not None and all(g.hears() for g in cached):
            return cached
        fresh = index.nearest_hearing(self.positions[i], count=MAX_LINKS_TRIED)
        self._cand[i] = fresh
        return fresh

    # ------------------------------------------------------------------
    # The batched duty cycle
    # ------------------------------------------------------------------
    def _report(self) -> None:
        if not self.alive or self.forced_degradations:
            return
        now = self.sim.now
        active = np.nonzero(self.death_at > now)[0]
        n_active = int(active.size)
        if n_active == 0:
            return
        self._c_attempts.value += n_active
        dt = now - self._last_energy_step
        self._last_energy_step = now
        if self.power is not None:
            self.power.step_many(dt, self.sim.rng("energy"), active)
            ok = self.power.try_transmit_many(self.airtime_s, active)
            denied = n_active - int(ok.sum())
            if denied:
                self._c_energy_denied.value += denied
            approved = active[ok]
        else:
            approved = active
        n_approved = int(approved.size)
        if n_approved == 0:
            return
        values = self.sim.rng("sensing").normal(
            loc=1.0, scale=0.05, size=n_approved
        )
        index = self.gateway_index
        if index is not None:
            self._sync_candidates(index)
        rng = self.sim.rng("radio")
        spec = self.spec
        payload_bytes = self.payload_bytes
        sensor_kind = self.sensor_kind
        no_gateway = 0
        radio_lost = 0
        delivered = 0
        for j in range(n_approved):
            i = int(approved[j])
            packet = Packet(
                source=self.member_names[i],
                created_at=now,
                payload_bytes=payload_bytes,
                reading=Reading(
                    kind=sensor_kind,
                    value=float(values[j]),
                    unit="normalized",
                ),
                signed_with=f"factory-key:{self.member_names[i]}",
            )
            position = self.positions[i]
            candidates = (
                self._candidates_for(i, index) if index is not None else ()
            )
            heard_by: Optional[Gateway] = None
            tried = 0
            for gateway in candidates:
                if not gateway.hears():
                    continue
                tried += 1
                distance = max(position.distance_to(gateway.position), 1.0)
                if attempt_delivery(spec, gateway.path_loss, distance, rng):
                    heard_by = gateway
                    break
                if tried == MAX_LINKS_TRIED:
                    break
            if tried == 0:
                no_gateway += 1
                continue
            if heard_by is None:
                radio_lost += 1
                continue
            if heard_by.receive(packet):
                delivered += 1
        if no_gateway:
            self._c_no_gateway.value += no_gateway
        if radio_lost:
            self._c_radio_lost.value += radio_lost
        if delivered:
            self._c_delivered.value += delivered

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attempts(self) -> int:
        """Member duty cycles attempted (registry-backed aggregate)."""
        return self._c_attempts.value

    @property
    def delivered(self) -> int:
        """Member reports that reached a recording endpoint."""
        return self._c_delivered.value

    @property
    def energy_denied(self) -> int:
        """Member reports skipped for lack of harvested energy."""
        return self._c_energy_denied.value

    @property
    def no_gateway(self) -> int:
        """Member reports with no live compatible gateway in range."""
        return self._c_no_gateway.value

    @property
    def radio_lost(self) -> int:
        """Member reports lost on the radio link."""
        return self._c_radio_lost.value

    def devices_alive(self, at: Optional[float] = None) -> int:
        """Members whose hardware is still alive at time ``at`` (default now)."""
        when = self.sim.now if at is None else at
        return int((self.death_at > when).sum())

    def loss_breakdown(self) -> dict:
        """Aggregate counts by loss cause, matching the device layout."""
        return {
            "attempts": self.attempts,
            "delivered": self.delivered,
            "energy_denied": self.energy_denied,
            "no_gateway": self.no_gateway,
            "radio_lost": self.radio_lost,
        }
