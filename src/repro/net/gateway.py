"""Gateways: the translation layer between device radios and the backhaul.

Per §3.2's takeaways, a gateway "should primarily act only as a router":
``Gateway.receive`` checks a blocklist and forwards up the dependency
DAG, deferring all decision-making to the backend.  The stateful
alternative (per-device connection keys, closed-loop control) is
represented by :class:`~repro.core.policy.GatewayRole` and shows up as a
commissioning cost when gateways are replaced.

``OwnedGateway`` is the paper's Raspberry-Pi-class, campus-backhauled
unit — it fails per the platform reliability model and may be maintained.
``ThirdPartyGateway`` is a hotspot someone else operates (the Helium
case) — it *churns*: its owner may unplug it at any time.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.engine import Simulation
from ..core.entity import Entity
from ..core.policy import GatewayRole
from ..radio.link import PathLossModel, RadioSpec
from ..radio.packets import Packet
from .geometry import ORIGIN, Position


class Gateway(Entity):
    """Base gateway: radio endpoint + packet router.

    ``technology`` must match the transmitting device's radio for a
    packet to be heard at all.  ``spec``/``path_loss`` define the uplink
    the device sees towards this gateway.
    """

    TIER = "gateway"

    def __init__(
        self,
        sim: Simulation,
        technology: str,
        spec: RadioSpec,
        path_loss: PathLossModel,
        position: Position = ORIGIN,
        name: Optional[str] = None,
        role: GatewayRole = GatewayRole.ROUTER_ONLY,
    ) -> None:
        super().__init__(sim, name)
        self.technology = technology
        self.spec = spec
        self.path_loss = path_loss
        self.position = position
        self.role = role
        self.blocklist: Set[str] = set()
        # Per-hop packet accounting in the run's metrics registry; the
        # legacy attribute names remain as read/write properties below,
        # and the invariant auditor's link-conservation check reads the
        # same instruments the forwarding path writes.
        metrics = sim.metrics
        self._c_received = metrics.counter(
            "net_packets_received_total", tier=self.TIER, entity=self.name
        )
        self._c_forwarded = metrics.counter(
            "net_packets_forwarded_total", tier=self.TIER, entity=self.name
        )
        self._c_drop_blocklist = metrics.counter(
            "net_packets_dropped_total",
            tier=self.TIER,
            entity=self.name,
            reason="blocklist",
        )
        self._c_drop_backhaul = metrics.counter(
            "net_packets_dropped_total",
            tier=self.TIER,
            entity=self.name,
            reason="backhaul",
        )
        self._c_drop_endpoint = metrics.counter(
            "net_packets_dropped_total",
            tier=self.TIER,
            entity=self.name,
            reason="endpoint",
        )

    def block(self, device_name: str) -> None:
        """Add a known-bad device to the forwarding blocklist (§3.2)."""
        self.blocklist.add(device_name)

    def unblock(self, device_name: str) -> None:
        """Remove a device from the blocklist."""
        self.blocklist.discard(device_name)

    def hears(self) -> bool:
        """True if the gateway can currently receive radio traffic.

        Hot-path contract: :meth:`EdgeDevice._report` calls this lazily
        on the few links it actually tries (not the whole candidate
        list), every report, for fifty simulated years — keep it O(1)
        and side-effect free.
        """
        return self.alive and self.forced_degradations == 0

    def receive(self, packet: Packet) -> bool:
        """Accept a radio-decoded packet and forward it to the backend.

        Returns True iff the packet reached a recording endpoint.  Drop
        reasons are counted for the benchmarks' loss breakdowns.
        """
        if not self.hears():
            return False
        self._c_received.value += 1
        if packet.source in self.blocklist:
            self._c_drop_blocklist.value += 1
            return False
        return self._forward(packet)

    def _forward(self, packet: Packet) -> bool:
        for backhaul in self.depends_on:
            carries = getattr(backhaul, "carries_traffic", None)
            if carries is None or not carries():
                continue
            for endpoint in backhaul.depends_on:
                deliver = getattr(endpoint, "deliver", None)
                if deliver is None:
                    continue
                if deliver(packet, via_gateway=self.name, via_backhaul=backhaul.name):
                    self._c_forwarded.value += 1
                    return True
                self._c_drop_endpoint.value += 1
                return False
        self._c_drop_backhaul.value += 1
        return False

    # Compatibility views over the registry-backed counters (setters for
    # corruption-injection tests; reads and writes share one instrument).
    @property
    def packets_received(self) -> int:
        """Radio-decoded packets accepted (registry-backed)."""
        return self._c_received.value

    @packets_received.setter
    def packets_received(self, value: int) -> None:
        self._c_received.value = value

    @property
    def packets_forwarded(self) -> int:
        """Packets that reached a recording endpoint (registry-backed)."""
        return self._c_forwarded.value

    @packets_forwarded.setter
    def packets_forwarded(self, value: int) -> None:
        self._c_forwarded.value = value

    @property
    def drops_blocklist(self) -> int:
        """Packets refused by the forwarding blocklist (registry-backed)."""
        return self._c_drop_blocklist.value

    @drops_blocklist.setter
    def drops_blocklist(self, value: int) -> None:
        self._c_drop_blocklist.value = value

    @property
    def drops_backhaul(self) -> int:
        """Packets lost to a down backhaul (registry-backed)."""
        return self._c_drop_backhaul.value

    @drops_backhaul.setter
    def drops_backhaul(self, value: int) -> None:
        self._c_drop_backhaul.value = value

    @property
    def drops_endpoint(self) -> int:
        """Packets refused by a dark endpoint (registry-backed)."""
        return self._c_drop_endpoint.value

    @drops_endpoint.setter
    def drops_endpoint(self, value: int) -> None:
        self._c_drop_endpoint.value = value

    def commissioning_hours(self) -> float:
        """Labor to stand up a replacement for this gateway.

        Router-only gateways commission in an hour; stateful controllers
        must re-key every dependent device (§3.2's traffic-light case),
        which scales with attachment count.
        """
        base = 1.0
        if self.role is GatewayRole.ROUTER_ONLY:
            return base
        return base + 0.25 * len(self.dependents)


class OwnedGateway(Gateway):
    """A self-deployed, self-maintained 802.15.4 gateway (§4.2 case 1).

    Aggressively firewalled for the transmit-only application, so the
    security risk of unattended operation is bounded; reliability is the
    Raspberry-Pi-class platform model.
    """

    def __init__(
        self,
        sim: Simulation,
        spec: RadioSpec,
        path_loss: PathLossModel,
        position: Position = ORIGIN,
        name: Optional[str] = None,
        role: GatewayRole = GatewayRole.ROUTER_ONLY,
    ) -> None:
        super().__init__(
            sim,
            technology="802.15.4",
            spec=spec,
            path_loss=path_loss,
            position=position,
            name=name,
            role=role,
        )


class ThirdPartyGateway(Gateway):
    """Someone else's hotspot ferrying our data for pay (§4.2 case 2).

    ``departs_at`` is the owner-churn time: the hotspot simply goes away
    (owner moved, mining stopped paying, hardware bricked).  No
    maintenance is possible — we don't own it.
    """

    def __init__(
        self,
        sim: Simulation,
        spec: RadioSpec,
        path_loss: PathLossModel,
        position: Position = ORIGIN,
        name: Optional[str] = None,
        departs_at: Optional[float] = None,
        asn: Optional[int] = None,
    ) -> None:
        super().__init__(
            sim,
            technology="lora",
            spec=spec,
            path_loss=path_loss,
            position=position,
            name=name,
            role=GatewayRole.ROUTER_ONLY,
        )
        self.departs_at = departs_at
        self.asn = asn
        #: Optional payment hook: any object with ``debit(credits) -> bool``.
        #: Set by :class:`~repro.net.helium.HeliumNetwork` so forwarding is
        #: refused once the prepaid wallet runs dry.
        self.wallet = None
        self._c_drop_unpaid = sim.metrics.counter(
            "net_packets_dropped_total",
            tier=self.TIER,
            entity=self.name,
            reason="unpaid",
        )
        if asn is not None:
            self.tags["asn"] = str(asn)

    @property
    def drops_unpaid(self) -> int:
        """Packets refused because the prepaid wallet was dry (registry-backed)."""
        return self._c_drop_unpaid.value

    @drops_unpaid.setter
    def drops_unpaid(self, value: int) -> None:
        self._c_drop_unpaid.value = value

    def receive(self, packet: Packet) -> bool:
        if not self.hears():
            return False
        if self.wallet is not None and not self.wallet.debit(packet.credit_units):
            self._c_drop_unpaid.value += 1
            return False
        return super().receive(packet)

    def on_deploy(self) -> None:
        if self.departs_at is not None:
            when = max(self.departs_at, self.sim.now)
            self.sim.call_at(when, self._depart, label=f"churn:{self.name}")

    def _depart(self) -> None:
        if self.alive:
            self.retire(reason="owner-churn")


def migrate_devices(
    outgoing: Gateway, incoming: Gateway, rehome_allowed: bool = True
) -> List[Entity]:
    """Move ``outgoing``'s dependents to ``incoming`` (§3.2 commissioning).

    Models the outgoing gateway acting as a trusted third party for
    migration.  If ``rehome_allowed`` is False (instance-bound devices),
    nothing migrates and the devices are stranded.  Returns the migrated
    devices.
    """
    if not rehome_allowed:
        return []
    migrated = []
    for device in list(outgoing.dependents):
        device.remove_dependency(outgoing)
        device.add_dependency(incoming)
        migrated.append(device)
    return migrated
