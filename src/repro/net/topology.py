"""Network assembly: coverage-based association and whole-system views.

``associate_by_coverage`` implements the takeaway-compliant attachment:
a device depends on *every* compatible gateway whose mean link success
clears a threshold, so losing one gateway strands nothing that another
covers.  ``Network`` bundles the entities of one deployment with its
:class:`~repro.core.hierarchy.Hierarchy` view and summary statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.engine import Simulation
from ..core.hierarchy import Hierarchy
from .backhaul import Backhaul
from .cloud import CloudEndpoint
from .device import EdgeDevice
from .gateway import Gateway
from .geometry import Position, SpatialGrid


def associate_by_coverage(
    devices: Sequence[EdgeDevice],
    gateways: Sequence[Gateway],
    min_success: float = 0.5,
    max_gateways_per_device: int = 2,
) -> Dict[str, int]:
    """Wire each device to its best in-range compatible gateways.

    Uses the deterministic (no-shadowing) link budget for planning, as a
    real site survey would.  Returns ``{device_name: attached_count}``
    where the count is the number of dependencies *actually wired* —
    gateways the device already depended on are deduplicated by
    ``add_dependency`` and are not counted again.  Devices with zero
    coverage stay unattached (and will count their reports as
    ``no_gateway`` losses).

    Gateways are indexed in a :class:`~repro.net.geometry.SpatialGrid`
    per (technology, path-loss) group, and each device range-queries at
    the closed-form coverage radius instead of scanning the full
    gateway list — O(fleet) instead of O(devices × gateways) for
    city-scale layouts.  The radius query is a provable superset of the
    qualifying set (see :func:`~repro.radio.link.coverage_radius_m`) and
    the exact ``link_budget`` threshold is re-applied per candidate, in
    input order, so the wiring is identical to the full scan.
    """
    if not 0.0 < min_success < 1.0:
        raise ValueError("min_success must be in (0, 1)")
    if max_gateways_per_device < 1:
        raise ValueError("max_gateways_per_device must be >= 1")
    from ..radio.link import coverage_radius_m, link_budget

    # Group once; grids are built lazily on first query so the cell size
    # can track the first requesting spec's coverage radius.
    groups: Dict[tuple, List[tuple]] = {}
    for index, gateway in enumerate(gateways):
        key = (gateway.technology, gateway.path_loss)
        groups.setdefault(key, []).append((index, gateway))
    grids: Dict[tuple, SpatialGrid] = {}
    radii: Dict[tuple, float] = {}

    attached: Dict[str, int] = {}
    for device in devices:
        candidates: List[tuple] = []
        for (technology, path_loss), members in groups.items():
            if technology != device.technology:
                continue
            radius_key = (device.spec, technology, path_loss)
            radius = radii.get(radius_key)
            if radius is None:
                radius = coverage_radius_m(device.spec, path_loss, min_success)
                radii[radius_key] = radius
            if radius <= 0.0:
                continue
            grid = grids.get((technology, path_loss))
            if grid is None:
                grid = SpatialGrid(cell_size_m=max(radius, 1.0))
                for pair in members:
                    position = pair[1].position
                    grid.insert(position.x, position.y, pair)
                grids[(technology, path_loss)] = grid
            # Scoring clamps distance to >= 1 m, so anything within
            # max(radius, 1) may qualify; +1 m absorbs float rounding
            # in the closed-form radius.
            candidates.extend(
                grid.query_radius(
                    device.position.x,
                    device.position.y,
                    max(radius, 1.0) + 1.0,
                )
            )
        # Merge the per-group hits back into global input order so the
        # stable success sort breaks ties exactly as the full scan did.
        candidates.sort(key=lambda pair: pair[0])
        scored = []
        for __, gateway in candidates:
            distance = max(device.position.distance_to(gateway.position), 1.0)
            budget = link_budget(device.spec, gateway.path_loss, distance)
            if budget.mean_success >= min_success:
                scored.append((budget.mean_success, gateway))
        scored.sort(key=lambda pair: -pair[0])
        wired = 0
        for __, gateway in scored[:max_gateways_per_device]:
            if gateway not in device.depends_on:
                device.add_dependency(gateway)
                wired += 1
        attached[device.name] = wired
    return attached


class GatewayIndex:
    """A topology-version-cached spatial index over a gateway population.

    ``provider`` returns the population to index (a scenario's owned
    gateways, a Helium network's hotspot roster); the grid is rebuilt
    lazily whenever ``sim.topology_version`` moves — exactly the
    transitions (deploy/fail/retire/rewire) that can change the
    population or its ability to hear.  Between bumps the index is
    exact, not approximate, by the same argument as the device
    candidate cache.

    ``nearest_hearing`` answers the device hot path: the ``count``
    nearest gateways currently able to receive
    (:meth:`~repro.net.gateway.Gateway.hears`), ordered by (distance²,
    provider order).  Because ``hears()`` can only flip on a
    version-bumping transition, evaluating it at rebuild/query time
    consumes no randomness and never reorders a trace.
    """

    def __init__(
        self,
        sim: Simulation,
        provider: Callable[[], Sequence[Gateway]],
        cell_size_m: float,
    ) -> None:
        if cell_size_m <= 0.0:
            raise ValueError(f"cell_size_m must be positive, got {cell_size_m}")
        self.sim = sim
        self.provider = provider
        self.cell_size_m = cell_size_m
        self._grid: Optional[SpatialGrid] = None
        self._population: List[Gateway] = []
        self._version: int = -1

    def grid(self) -> SpatialGrid:
        """The current index, rebuilt if the topology version moved."""
        version = self.sim.topology_version
        if self._grid is None or self._version != version:
            population = list(self.provider())
            grid = SpatialGrid(self.cell_size_m)
            for gateway in population:
                position = gateway.position
                grid.insert(position.x, position.y, gateway)
            self._grid = grid
            self._population = population
            self._version = version
        return self._grid

    def population(self) -> List[Gateway]:
        """The indexed gateway list, in provider order (read-only).

        Cohorts scan it on topology bumps to detect gateways that
        *gained* the ability to hear — the one transition their
        shrink-only candidate reuse cannot survive.
        """
        self.grid()
        return self._population

    def nearest_hearing(self, position: Position, count: int) -> List[Gateway]:
        """The ``count`` nearest gateways that can currently receive."""
        return self.grid().nearest(
            position.x, position.y, count, where=_gateway_hears
        )


def _gateway_hears(gateway: Gateway) -> bool:
    return gateway.hears()


@dataclass
class Network:
    """One deployment's entities plus its hierarchy view."""

    sim: Simulation
    endpoint: CloudEndpoint
    backhauls: List[Backhaul] = field(default_factory=list)
    gateways: List[Gateway] = field(default_factory=list)
    devices: List[EdgeDevice] = field(default_factory=list)
    hierarchy: Hierarchy = field(default_factory=Hierarchy)

    def register_all(self) -> None:
        """(Re)build the hierarchy view from the current entity lists."""
        self.hierarchy = Hierarchy()
        self.hierarchy.add(self.endpoint)
        self.hierarchy.extend(self.backhauls)
        self.hierarchy.extend(self.gateways)
        self.hierarchy.extend(self.devices)

    def deploy_all(self) -> None:
        """Deploy endpoint, backhauls, gateways, then devices, in order.

        Entities already deployed (e.g. Helium hotspots spawned by their
        network object) are skipped.
        """
        ordered = [self.endpoint, *self.backhauls, *self.gateways, *self.devices]
        for entity in ordered:
            if entity.deployed_at is None:
                entity.deploy()
        self.register_all()

    def delivery_summary(self) -> "DeliverySummary":
        """Aggregate loss breakdown across all devices."""
        totals = {
            "attempts": 0,
            "delivered": 0,
            "energy_denied": 0,
            "no_gateway": 0,
            "radio_lost": 0,
        }
        for device in self.devices:
            for key, value in device.loss_breakdown().items():
                totals[key] += value
        dropped_at_gateway = (
            totals["attempts"]
            - totals["delivered"]
            - totals["energy_denied"]
            - totals["no_gateway"]
            - totals["radio_lost"]
        )
        return DeliverySummary(
            attempts=totals["attempts"],
            delivered=totals["delivered"],
            energy_denied=totals["energy_denied"],
            no_gateway=totals["no_gateway"],
            radio_lost=totals["radio_lost"],
            dropped_at_gateway=dropped_at_gateway,
        )

    def alive_counts(self) -> Dict[str, int]:
        """Entities alive per tier, for quick health checks."""
        return {
            "device": sum(1 for d in self.devices if d.alive),
            "gateway": sum(1 for g in self.gateways if g.alive),
            "backhaul": sum(1 for b in self.backhauls if b.alive),
            "cloud": 1 if self.endpoint.alive else 0,
        }


@dataclass(frozen=True)
class DeliverySummary:
    """End-to-end packet accounting over a run."""

    attempts: int
    delivered: int
    energy_denied: int
    no_gateway: int
    radio_lost: int
    dropped_at_gateway: int

    @property
    def delivery_rate(self) -> float:
        """Delivered / attempted; NaN when nothing was ever attempted.

        Returning 0.0 would conflate "never scheduled" with "always
        failed" and drag down fleet-mean aggregates for late-deployed
        cohorts — callers averaging across summaries must skip NaN
        entries (``math.isnan``) instead of folding them in as zeros.
        """
        if self.attempts == 0:
            return math.nan
        return self.delivered / self.attempts
