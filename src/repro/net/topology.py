"""Network assembly: coverage-based association and whole-system views.

``associate_by_coverage`` implements the takeaway-compliant attachment:
a device depends on *every* compatible gateway whose mean link success
clears a threshold, so losing one gateway strands nothing that another
covers.  ``Network`` bundles the entities of one deployment with its
:class:`~repro.core.hierarchy.Hierarchy` view and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.engine import Simulation
from ..core.hierarchy import Hierarchy
from .backhaul import Backhaul
from .cloud import CloudEndpoint
from .device import EdgeDevice
from .gateway import Gateway


def associate_by_coverage(
    devices: Sequence[EdgeDevice],
    gateways: Sequence[Gateway],
    min_success: float = 0.5,
    max_gateways_per_device: int = 2,
) -> Dict[str, int]:
    """Wire each device to its best in-range compatible gateways.

    Uses the deterministic (no-shadowing) link budget for planning, as a
    real site survey would.  Returns ``{device_name: attached_count}``;
    devices with zero coverage stay unattached (and will count their
    reports as ``no_gateway`` losses).
    """
    if not 0.0 < min_success < 1.0:
        raise ValueError("min_success must be in (0, 1)")
    if max_gateways_per_device < 1:
        raise ValueError("max_gateways_per_device must be >= 1")
    from ..radio.link import link_budget

    attached: Dict[str, int] = {}
    for device in devices:
        scored = []
        for gateway in gateways:
            if gateway.technology != device.technology:
                continue
            distance = max(device.position.distance_to(gateway.position), 1.0)
            budget = link_budget(device.spec, gateway.path_loss, distance)
            if budget.mean_success >= min_success:
                scored.append((budget.mean_success, gateway))
        scored.sort(key=lambda pair: -pair[0])
        for __, gateway in scored[:max_gateways_per_device]:
            device.add_dependency(gateway)
        attached[device.name] = min(len(scored), max_gateways_per_device)
    return attached


@dataclass
class Network:
    """One deployment's entities plus its hierarchy view."""

    sim: Simulation
    endpoint: CloudEndpoint
    backhauls: List[Backhaul] = field(default_factory=list)
    gateways: List[Gateway] = field(default_factory=list)
    devices: List[EdgeDevice] = field(default_factory=list)
    hierarchy: Hierarchy = field(default_factory=Hierarchy)

    def register_all(self) -> None:
        """(Re)build the hierarchy view from the current entity lists."""
        self.hierarchy = Hierarchy()
        self.hierarchy.add(self.endpoint)
        self.hierarchy.extend(self.backhauls)
        self.hierarchy.extend(self.gateways)
        self.hierarchy.extend(self.devices)

    def deploy_all(self) -> None:
        """Deploy endpoint, backhauls, gateways, then devices, in order.

        Entities already deployed (e.g. Helium hotspots spawned by their
        network object) are skipped.
        """
        ordered = [self.endpoint, *self.backhauls, *self.gateways, *self.devices]
        for entity in ordered:
            if entity.deployed_at is None:
                entity.deploy()
        self.register_all()

    def delivery_summary(self) -> "DeliverySummary":
        """Aggregate loss breakdown across all devices."""
        totals = {
            "attempts": 0,
            "delivered": 0,
            "energy_denied": 0,
            "no_gateway": 0,
            "radio_lost": 0,
        }
        for device in self.devices:
            for key, value in device.loss_breakdown().items():
                totals[key] += value
        dropped_at_gateway = (
            totals["attempts"]
            - totals["delivered"]
            - totals["energy_denied"]
            - totals["no_gateway"]
            - totals["radio_lost"]
        )
        return DeliverySummary(
            attempts=totals["attempts"],
            delivered=totals["delivered"],
            energy_denied=totals["energy_denied"],
            no_gateway=totals["no_gateway"],
            radio_lost=totals["radio_lost"],
            dropped_at_gateway=dropped_at_gateway,
        )

    def alive_counts(self) -> Dict[str, int]:
        """Entities alive per tier, for quick health checks."""
        return {
            "device": sum(1 for d in self.devices if d.alive),
            "gateway": sum(1 for g in self.gateways if g.alive),
            "backhaul": sum(1 for b in self.backhauls if b.alive),
            "cloud": 1 if self.endpoint.alive else 0,
        }


@dataclass(frozen=True)
class DeliverySummary:
    """End-to-end packet accounting over a run."""

    attempts: int
    delivered: int
    energy_denied: int
    no_gateway: int
    radio_lost: int
    dropped_at_gateway: int

    @property
    def delivery_rate(self) -> float:
        """Delivered / attempted."""
        if self.attempts == 0:
            return 0.0
        return self.delivered / self.attempts
