"""Gateway commissioning and trusted-third-party migration (§3.2).

"The process should allow newer gateways to establish links with the
backhaul using secure mechanisms similar to those used for home router
commissioning.  Additionally, when replacing existing gateway units, we
can have a process in place to utilize the outgoing gateway as a
trusted third party for easy migration of existing connected devices."

We model commissioning as an explicit multi-step protocol with failure
modes, so scenario code can charge realistic time/labor and so the
stateful-vs-router-only gap has a mechanism, not just a multiplier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from ..core import units
from ..core.policy import GatewayRole
from .gateway import Gateway, migrate_devices


class CommissioningStep(enum.Enum):
    """Phases of standing up a replacement gateway."""

    PHYSICAL_INSTALL = "physical-install"
    BACKHAUL_ENROLL = "backhaul-enroll"      # router-style secure join
    KEY_ESCROW = "key-escrow"                # TTP handoff (stateful only)
    DEVICE_MIGRATION = "device-migration"
    VERIFICATION = "verification"


@dataclass(frozen=True)
class StepOutcome:
    """One executed protocol step."""

    step: CommissioningStep
    duration_s: float
    succeeded: bool
    detail: str = ""


@dataclass
class CommissioningReport:
    """Full record of one gateway replacement."""

    outgoing: str
    incoming: str
    steps: List[StepOutcome] = field(default_factory=list)
    migrated_devices: int = 0
    stranded_devices: int = 0
    used_trusted_third_party: bool = False

    @property
    def succeeded(self) -> bool:
        """True if every step completed."""
        return all(step.succeeded for step in self.steps)

    @property
    def total_duration_s(self) -> float:
        """Wall-clock technician time across steps."""
        return sum(step.duration_s for step in self.steps)

    @property
    def labor_hours(self) -> float:
        """Technician labor in hours."""
        return units.as_hours(self.total_duration_s)


@dataclass(frozen=True)
class CommissioningProfile:
    """Durations and risks for the protocol steps.

    ``escrow_per_device_s`` applies only to stateful gateways: every
    attached device's session keys must be re-established through the
    outgoing unit (or, failing that, by a truck roll per device).
    """

    install_s: float = units.hours(1.5)
    enroll_s: float = units.minutes(20.0)
    escrow_base_s: float = units.minutes(15.0)
    escrow_per_device_s: float = units.minutes(4.0)
    verify_s: float = units.minutes(10.0)
    #: Probability the outgoing gateway is too dead to act as the TTP.
    ttp_unavailable_probability: float = 0.25


def commission_replacement(
    outgoing: Gateway,
    incoming: Gateway,
    rng,
    profile: CommissioningProfile = CommissioningProfile(),
    rehome_allowed: bool = True,
) -> CommissioningReport:
    """Run the §3.2 replacement protocol from ``outgoing`` to ``incoming``.

    Router-only gateways skip key escrow entirely — devices never
    authenticated to the instance, so migration is a link-table update.
    Stateful gateways need the outgoing unit as a trusted third party;
    when it is unavailable (it did just fail, after all), the attached
    devices cannot be migrated in place and are counted stranded.
    """
    report = CommissioningReport(outgoing=outgoing.name, incoming=incoming.name)
    attached = len(outgoing.dependents)

    report.steps.append(
        StepOutcome(CommissioningStep.PHYSICAL_INSTALL, profile.install_s, True)
    )
    report.steps.append(
        StepOutcome(CommissioningStep.BACKHAUL_ENROLL, profile.enroll_s, True,
                    detail="router-style secure join to backhaul")
    )

    migration_possible = rehome_allowed
    if outgoing.role is GatewayRole.STATEFUL_CONTROLLER:
        ttp_available = rng.random() >= profile.ttp_unavailable_probability
        escrow_time = profile.escrow_base_s + attached * profile.escrow_per_device_s
        report.used_trusted_third_party = ttp_available
        report.steps.append(
            StepOutcome(
                CommissioningStep.KEY_ESCROW,
                escrow_time if ttp_available else profile.escrow_base_s,
                ttp_available,
                detail=(
                    f"TTP re-keyed {attached} devices"
                    if ttp_available
                    else "outgoing unit unrecoverable; keys lost"
                ),
            )
        )
        migration_possible = migration_possible and ttp_available

    if migration_possible:
        moved = migrate_devices(outgoing, incoming, rehome_allowed=True)
        report.migrated_devices = len(moved)
        report.steps.append(
            StepOutcome(
                CommissioningStep.DEVICE_MIGRATION,
                units.minutes(2.0),
                True,
                detail=f"{len(moved)} devices re-homed",
            )
        )
    else:
        report.stranded_devices = attached
        report.steps.append(
            StepOutcome(
                CommissioningStep.DEVICE_MIGRATION,
                units.minutes(2.0),
                False,
                detail=f"{attached} devices stranded",
            )
        )

    report.steps.append(
        StepOutcome(CommissioningStep.VERIFICATION, profile.verify_s, True)
    )
    return report
