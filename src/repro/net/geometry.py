"""Planar geometry for deployments.

Positions are metres on a local tangent plane — city-scale deployments
do not need geodesy.  ``Grid`` generates the regular street-furniture
layouts (poles every ~50 m along blocks) that city generators use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

import numpy as np


@dataclass(frozen=True)
class Position:
    """A point on the deployment plane, metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Position") -> float:
        """Squared Euclidean distance in metres².

        Monotone in :meth:`distance_to`, so it orders points identically
        while skipping the square root — use it for nearest-first sorts
        and nearest-neighbour selection on hot paths.
        """
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


ORIGIN = Position(0.0, 0.0)


def grid_positions(
    count: int, spacing_m: float = 50.0, jitter_m: float = 0.0, rng=None
) -> List[Position]:
    """``count`` positions on a near-square grid with optional jitter.

    Street furniture (poles, lights) is regularly spaced; jitter models
    the irregularity of real blocks.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if spacing_m <= 0.0:
        raise ValueError(f"spacing_m must be positive, got {spacing_m}")
    side = math.ceil(math.sqrt(count))
    positions = []
    for index in range(count):
        row, col = divmod(index, side)
        x = col * spacing_m
        y = row * spacing_m
        if jitter_m > 0.0:
            if rng is None:
                raise ValueError("jitter requires an rng")
            x += float(rng.uniform(-jitter_m, jitter_m))
            y += float(rng.uniform(-jitter_m, jitter_m))
        positions.append(Position(x, y))
    return positions


def uniform_positions(count: int, extent_m: float, rng) -> List[Position]:
    """``count`` positions uniform over an ``extent_m`` square."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if extent_m <= 0.0:
        raise ValueError(f"extent_m must be positive, got {extent_m}")
    xs = rng.uniform(0.0, extent_m, size=count)
    ys = rng.uniform(0.0, extent_m, size=count)
    return [Position(float(x), float(y)) for x, y in zip(xs, ys)]


def centroid(positions: List[Position]) -> Position:
    """Mean position."""
    if not positions:
        raise ValueError("centroid of empty position list")
    xs = np.mean([p.x for p in positions])
    ys = np.mean([p.y for p in positions])
    return Position(float(xs), float(ys))
