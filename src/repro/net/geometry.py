"""Planar geometry for deployments.

Positions are metres on a local tangent plane — city-scale deployments
do not need geodesy.  ``Grid`` generates the regular street-furniture
layouts (poles every ~50 m along blocks) that city generators use.
``SpatialGrid`` is the uniform-bucket index that turns the O(devices ×
gateways) coverage scans into range queries at city fleet sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

import numpy as np


@dataclass(frozen=True)
class Position:
    """A point on the deployment plane, metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Position") -> float:
        """Squared Euclidean distance in metres².

        Monotone in :meth:`distance_to`, so it orders points identically
        while skipping the square root — use it for nearest-first sorts
        and nearest-neighbour selection on hot paths.
        """
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


ORIGIN = Position(0.0, 0.0)


def grid_positions(
    count: int, spacing_m: float = 50.0, jitter_m: float = 0.0, rng=None
) -> List[Position]:
    """``count`` positions on a near-square grid with optional jitter.

    Street furniture (poles, lights) is regularly spaced; jitter models
    the irregularity of real blocks.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if spacing_m <= 0.0:
        raise ValueError(f"spacing_m must be positive, got {spacing_m}")
    side = math.ceil(math.sqrt(count))
    positions = []
    for index in range(count):
        row, col = divmod(index, side)
        x = col * spacing_m
        y = row * spacing_m
        if jitter_m > 0.0:
            if rng is None:
                raise ValueError("jitter requires an rng")
            x += float(rng.uniform(-jitter_m, jitter_m))
            y += float(rng.uniform(-jitter_m, jitter_m))
        positions.append(Position(x, y))
    return positions


def uniform_positions(count: int, extent_m: float, rng) -> List[Position]:
    """``count`` positions uniform over an ``extent_m`` square."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if extent_m <= 0.0:
        raise ValueError(f"extent_m must be positive, got {extent_m}")
    xs = rng.uniform(0.0, extent_m, size=count)
    ys = rng.uniform(0.0, extent_m, size=count)
    return [Position(float(x), float(y)) for x, y in zip(xs, ys)]


class SpatialGrid:
    """A uniform-bucket spatial index with deterministic query order.

    Items are inserted with explicit coordinates (bucket size should be
    on the order of the query radius — for gateways, the radio coverage
    radius).  Both query flavours return results in an order that is a
    pure function of the inserted sequence, never of hash iteration or
    float happenstance:

    * :meth:`query_radius` preserves insertion order — exactly what a
      brute-force filter over the inserted sequence would produce;
    * :meth:`nearest` orders by ``(squared distance, insertion index)``.

    This determinism is what lets the coverage planner and the device
    candidate path swap a full scan for an index lookup without moving a
    single RNG draw.
    """

    def __init__(self, cell_size_m: float) -> None:
        if cell_size_m <= 0.0:
            raise ValueError(f"cell_size_m must be positive, got {cell_size_m}")
        self.cell_size_m = float(cell_size_m)
        #: (cell_x, cell_y) -> [(insertion_index, x, y, item), ...]
        self._cells: dict = {}
        self._count = 0
        self._min_cx = 0
        self._max_cx = 0
        self._min_cy = 0
        self._max_cy = 0

    def __len__(self) -> int:
        return self._count

    def _cell_of(self, x: float, y: float):
        cell = self.cell_size_m
        return (math.floor(x / cell), math.floor(y / cell))

    def insert(self, x: float, y: float, item) -> None:
        """Add ``item`` at ``(x, y)``; insertion order is remembered."""
        cx, cy = self._cell_of(x, y)
        if self._count == 0:
            self._min_cx = self._max_cx = cx
            self._min_cy = self._max_cy = cy
        else:
            self._min_cx = min(self._min_cx, cx)
            self._max_cx = max(self._max_cx, cx)
            self._min_cy = min(self._min_cy, cy)
            self._max_cy = max(self._max_cy, cy)
        self._cells.setdefault((cx, cy), []).append(
            (self._count, float(x), float(y), item)
        )
        self._count += 1

    def query_radius(self, x: float, y: float, radius_m: float) -> List:
        """Items within ``radius_m`` of ``(x, y)``, inclusive, in
        insertion order (``dx² + dy² <= radius_m²``, the same metric a
        brute-force scan over :class:`Position` distances uses)."""
        if radius_m < 0.0:
            raise ValueError(f"radius_m must be non-negative, got {radius_m}")
        if self._count == 0:
            return []
        cell = self.cell_size_m
        lo_cx = max(math.floor((x - radius_m) / cell), self._min_cx)
        hi_cx = min(math.floor((x + radius_m) / cell), self._max_cx)
        lo_cy = max(math.floor((y - radius_m) / cell), self._min_cy)
        hi_cy = min(math.floor((y + radius_m) / cell), self._max_cy)
        radius_sq = radius_m * radius_m
        hits = []
        cells = self._cells
        for cx in range(lo_cx, hi_cx + 1):
            for cy in range(lo_cy, hi_cy + 1):
                bucket = cells.get((cx, cy))
                if not bucket:
                    continue
                for index, ix, iy, item in bucket:
                    dx = ix - x
                    dy = iy - y
                    if dx * dx + dy * dy <= radius_sq:
                        hits.append((index, item))
        hits.sort(key=lambda pair: pair[0])
        return [item for __, item in hits]

    def nearest(
        self,
        x: float,
        y: float,
        count: int = 1,
        where: Optional[Callable] = None,
    ) -> List:
        """Up to ``count`` items nearest ``(x, y)``, optionally filtered.

        Expands square rings of cells outward until the ``count``-th
        best candidate is provably closer than anything unscanned (every
        item in ring ``r+1`` lies at least ``r * cell_size_m`` away).
        Ties in distance resolve by insertion index, so the result is
        the exact top-``count`` of the ``(distance², insertion index)``
        ordering a brute-force sort would produce.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if self._count == 0:
            return []
        cell = self.cell_size_m
        cx, cy = self._cell_of(x, y)
        max_ring = max(
            abs(cx - self._min_cx),
            abs(self._max_cx - cx),
            abs(cy - self._min_cy),
            abs(self._max_cy - cy),
        )
        found = []  # (distance_sq, insertion_index, item)
        cells = self._cells
        for ring in range(max_ring + 1):
            for key in self._ring_cells(cx, cy, ring):
                bucket = cells.get(key)
                if not bucket:
                    continue
                for index, ix, iy, item in bucket:
                    if where is not None and not where(item):
                        continue
                    dx = ix - x
                    dy = iy - y
                    found.append((dx * dx + dy * dy, index, item))
            if len(found) >= count:
                found.sort(key=lambda entry: (entry[0], entry[1]))
                # Unscanned items are at distance >= ring * cell; a
                # strict comparison keeps exact-boundary ties honest.
                horizon = ring * cell
                if found[count - 1][0] < horizon * horizon:
                    break
        found.sort(key=lambda entry: (entry[0], entry[1]))
        return [item for __, __, item in found[:count]]

    @staticmethod
    def _ring_cells(cx: int, cy: int, ring: int):
        if ring == 0:
            yield (cx, cy)
            return
        for gx in range(cx - ring, cx + ring + 1):
            yield (gx, cy - ring)
            yield (gx, cy + ring)
        for gy in range(cy - ring + 1, cy + ring):
            yield (cx - ring, gy)
            yield (cx + ring, gy)


def centroid(positions: List[Position]) -> Position:
    """Mean position."""
    if not positions:
        raise ValueError("centroid of empty position list")
    xs = np.mean([p.x for p in positions])
    ys = np.mean([p.y for p in positions])
    return Position(float(xs), float(ys))
