"""Network layer: devices, gateways, backhauls, cloud endpoint, Helium."""

from .backhaul import (
    Backhaul,
    CampusBackhaul,
    CellularBackhaul,
    FiberBackhaul,
    OpaqueBackhaul,
    OutageModel,
)
from .cloud import MAX_DOMAIN_LEASE, CloudEndpoint, UptimeReport
from .cohort import CohortPower, DeviceCohort
from .device import MAX_LINKS_TRIED, EdgeDevice
from .gateway import Gateway, OwnedGateway, ThirdPartyGateway, migrate_devices
from .geometry import (
    ORIGIN,
    Position,
    SpatialGrid,
    centroid,
    grid_positions,
    uniform_positions,
)
from .helium import (
    PACKETS_50_YEARS_HOURLY,
    USD_PER_CREDIT,
    ChurnModel,
    DataCreditWallet,
    HeliumNetwork,
    credits_for_schedule,
)
from .commissioning import (
    CommissioningProfile,
    CommissioningReport,
    CommissioningStep,
    StepOutcome,
    commission_replacement,
)
from .topology import DeliverySummary, GatewayIndex, Network, associate_by_coverage
from .trust import (
    SCHEMES,
    DeviceTrustRecord,
    SigningScheme,
    TrustLevel,
    TrustPolicy,
    TrustRegistry,
    trust_horizon,
)

__all__ = [
    "Backhaul",
    "CampusBackhaul",
    "CellularBackhaul",
    "FiberBackhaul",
    "OpaqueBackhaul",
    "OutageModel",
    "MAX_DOMAIN_LEASE",
    "CloudEndpoint",
    "UptimeReport",
    "CohortPower",
    "DeviceCohort",
    "EdgeDevice",
    "MAX_LINKS_TRIED",
    "Gateway",
    "OwnedGateway",
    "ThirdPartyGateway",
    "migrate_devices",
    "ORIGIN",
    "Position",
    "SpatialGrid",
    "centroid",
    "grid_positions",
    "uniform_positions",
    "PACKETS_50_YEARS_HOURLY",
    "USD_PER_CREDIT",
    "ChurnModel",
    "DataCreditWallet",
    "HeliumNetwork",
    "credits_for_schedule",
    "CommissioningProfile",
    "CommissioningReport",
    "CommissioningStep",
    "StepOutcome",
    "commission_replacement",
    "SCHEMES",
    "DeviceTrustRecord",
    "SigningScheme",
    "TrustLevel",
    "TrustPolicy",
    "TrustRegistry",
    "trust_horizon",
    "DeliverySummary",
    "GatewayIndex",
    "Network",
    "associate_by_coverage",
]
