"""Spatial sensing granularity: the air-pollution argument (§2).

"Instrumenting one intersection will not give city planners an accurate
picture of the overall city traffic.  Air pollution is highly localized,
and requires measurement at city-block granularity [Marshall et al.]."

We synthesize a spatially-correlated pollution field (Gaussian random
field with a block-scale correlation length plus road-source hotspots)
and measure reconstruction error as a function of sensor density — the
quantitative form of "the success of an IoT application is tied to the
scale of the network".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class PollutionFieldConfig:
    """A synthetic city-scale pollutant surface.

    ``correlation_length_m`` controls how localized pollution is; the
    Marshall et al. within-urban-variability result corresponds to a few
    hundred metres.  Roads add line sources with steep near-road decay.
    """

    extent_m: float = 8_000.0
    resolution_m: float = 100.0
    background_mean: float = 30.0      # e.g. NO2 ppb city background
    field_sigma: float = 8.0
    correlation_length_m: float = 300.0
    n_roads: int = 6
    road_peak: float = 25.0
    road_decay_m: float = 150.0

    def __post_init__(self) -> None:
        if self.extent_m <= 0.0 or self.resolution_m <= 0.0:
            raise ValueError("extent_m and resolution_m must be positive")
        if self.resolution_m > self.extent_m:
            raise ValueError("resolution_m must not exceed extent_m")
        if self.correlation_length_m <= 0.0:
            raise ValueError("correlation_length_m must be positive")

    @property
    def grid_size(self) -> int:
        """Cells per side."""
        return int(self.extent_m // self.resolution_m)


def synthesize_field(
    config: PollutionFieldConfig, rng: np.random.Generator
) -> np.ndarray:
    """Generate one pollution surface (grid_size x grid_size).

    Smooth background: white noise convolved with a Gaussian kernel at
    the correlation length (FFT-based, so city-size grids are cheap).
    Roads: randomly-oriented straight line sources with exponential
    lateral decay.
    """
    n = config.grid_size
    noise = rng.standard_normal((n, n))
    sigma_cells = config.correlation_length_m / config.resolution_m
    kx = np.fft.fftfreq(n)
    window = np.exp(-2.0 * (np.pi * sigma_cells) ** 2 * (kx[:, None] ** 2 + kx[None, :] ** 2))
    smooth = np.real(np.fft.ifft2(np.fft.fft2(noise) * window))
    smooth *= config.field_sigma / max(smooth.std(), 1e-12)
    surface = config.background_mean + smooth

    ys, xs = np.mgrid[0:n, 0:n].astype(float)
    for _ in range(config.n_roads):
        angle = rng.uniform(0.0, np.pi)
        cx, cy = rng.uniform(0, n, size=2)
        # Perpendicular distance (cells) from each cell to the road line.
        normal = np.array([np.sin(angle), -np.cos(angle)])
        distance_cells = np.abs((xs - cx) * normal[0] + (ys - cy) * normal[1])
        distance_m = distance_cells * config.resolution_m
        surface += config.road_peak * np.exp(-distance_m / config.road_decay_m)
    return surface


@dataclass(frozen=True)
class SensingError:
    """Reconstruction quality at one sensor density."""

    n_sensors: int
    spacing_m: float
    rmse: float
    max_error: float
    field_sigma: float

    @property
    def normalized_rmse(self) -> float:
        """RMSE relative to the field's own spatial variability."""
        if self.field_sigma == 0.0:
            return 0.0
        return self.rmse / self.field_sigma


def nearest_sensor_reconstruction(
    surface: np.ndarray, sensor_cells: Sequence
) -> np.ndarray:
    """Estimate the full field from point samples (nearest-neighbour).

    City dashboards interpolate; nearest-neighbour is the conservative
    floor and keeps the result model-free.
    """
    if len(sensor_cells) == 0:
        raise ValueError("need at least one sensor")
    n = surface.shape[0]
    ys, xs = np.mgrid[0:n, 0:n]
    best = np.full((n, n), np.inf)
    estimate = np.zeros((n, n))
    for (sy, sx) in sensor_cells:
        d2 = (ys - sy) ** 2 + (xs - sx) ** 2
        closer = d2 < best
        best[closer] = d2[closer]
        estimate[closer] = surface[sy, sx]
    return estimate


def evaluate_density(
    config: PollutionFieldConfig,
    spacing_m: float,
    rng: np.random.Generator,
    surface: Optional[np.ndarray] = None,
) -> SensingError:
    """Place sensors on a ``spacing_m`` grid and measure field error."""
    if spacing_m <= 0.0:
        raise ValueError("spacing_m must be positive")
    if surface is None:
        surface = synthesize_field(config, rng)
    n = config.grid_size
    step = max(1, int(round(spacing_m / config.resolution_m)))
    cells = [(y, x) for y in range(step // 2, n, step) for x in range(step // 2, n, step)]
    estimate = nearest_sensor_reconstruction(surface, cells)
    error = estimate - surface
    true_sigma = float(surface.std())
    return SensingError(
        n_sensors=len(cells),
        spacing_m=step * config.resolution_m,
        rmse=float(np.sqrt(np.mean(error**2))),
        max_error=float(np.abs(error).max()),
        field_sigma=true_sigma,
    )


def density_study(
    config: PollutionFieldConfig,
    spacings_m: Sequence[float],
    rng: np.random.Generator,
) -> List[SensingError]:
    """Error vs sensor spacing over one shared surface.

    The §2 claim holds when block-scale spacing (~100-300 m) achieves
    small normalized error while kilometre spacing does not.
    """
    surface = synthesize_field(config, rng)
    return [
        evaluate_density(config, spacing, rng, surface=surface)
        for spacing in spacings_m
    ]
