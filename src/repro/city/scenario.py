"""The city-scale fleet scenario: LA's inventory behind one simulation.

Wires a real :func:`~repro.city.assets.los_angeles` asset class through
a :class:`~repro.city.deployment.RolloutPlan` into an executable
deployment: a street-furniture device grid, an offset gateway grid sized
to the radio's closed-form coverage radius, a campus backhaul, and an
aggregate-only cloud endpoint.  The scenario runs in either of two
*bit-equivalent* execution modes:

* ``engine="per-entity"`` — one :class:`~repro.net.device.EdgeDevice`
  per sensor, the reference path every golden trace pins.
* ``engine="cohort"`` — one :class:`~repro.net.cohort.DeviceCohort` per
  rollout batch, servicing the whole batch from a single event.

Both modes draw from the same named RNG streams in the same per-stream
order, so every delivery, loss, brownout, and death lands identically;
``tests/experiment/test_city_equivalence.py`` holds the proof.  The
cohort mode exists purely to make 100k+ devices tractable (see
``benchmarks/bench_city_fleet.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from ..core import units
from ..core.engine import Simulation
from ..energy.budget import TaskProfile
from ..energy.harvester import HarvestingSystem
from ..energy.sources import source_by_name
from ..energy.storage import Capacitor
from ..net.backhaul import CampusBackhaul
from ..net.cloud import CloudEndpoint
from ..net.cohort import CohortPower, DeviceCohort
from ..net.device import EdgeDevice
from ..net.gateway import OwnedGateway
from ..net.geometry import Position, grid_positions
from ..net.topology import GatewayIndex
from ..radio import ieee802154
from ..radio.link import coverage_radius_m
from ..reliability.components import energy_harvesting_device, gateway_platform
from ..reliability.failure import FailureProcess
from .assets import los_angeles
from .deployment import RolloutPlan

#: Execution modes the scenario can run under.
ENGINES = ("cohort", "per-entity")


@dataclass(frozen=True)
class CityScaleConfig:
    """One city-scale run: which fleet, how large, and which engine.

    ``device_count`` draws from the named asset class of the LA
    inventory (so 100k devices is a *third* of the streetlight stock,
    not an abstract number).  ``gateway_spacing_m`` defaults to keep the
    farthest grid corner inside the 802.15.4 urban coverage radius
    (~85 m), so the planning-level link closes everywhere.
    """

    seed: int = 0
    asset: str = "streetlight"
    device_count: int = 1000
    horizon: float = units.days(28.0)
    report_interval: float = units.DAY
    payload_bytes: int = 24
    harvester: str = "solar"
    capacity_j: float = 0.5
    initial_fill: float = 0.5
    device_spacing_m: float = 50.0
    gateway_spacing_m: float = 110.0
    batches: int = 24
    engine: str = "cohort"

    def __post_init__(self) -> None:
        if self.device_count < 1:
            raise ValueError("device_count must be >= 1")
        if self.horizon <= 0.0:
            raise ValueError("horizon must be positive")
        if self.report_interval <= 0.0:
            raise ValueError("report_interval must be positive")
        if not 0.0 <= self.initial_fill <= 1.0:
            raise ValueError("initial_fill must be in [0, 1]")
        if self.device_spacing_m <= 0.0 or self.gateway_spacing_m <= 0.0:
            raise ValueError("spacings must be positive")
        if self.batches < 1:
            raise ValueError("batches must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")


class CityScenario:
    """A constructed city fleet, ready to :meth:`run`."""

    def __init__(self, config: CityScaleConfig) -> None:
        self.config = config
        self.sim = Simulation(seed=config.seed)
        inventory = los_angeles()
        self.asset = inventory.asset(config.asset)
        if config.device_count > self.asset.sensor_count:
            raise ValueError(
                f"{config.asset} hosts only {self.asset.sensor_count} sensors, "
                f"cannot deploy {config.device_count}"
            )
        # +0.5 before the plan's int() floor so fleet_size lands exactly
        # on device_count regardless of how the division rounds.
        self.plan = RolloutPlan(
            asset=self.asset,
            project_cycle_years=min(self.asset.service_life_years, 25.0),
            batches=config.batches,
            instrumented_fraction=(config.device_count + 0.5)
            / self.asset.sensor_count,
        )
        assert self.plan.fleet_size == config.device_count

        self.spec = ieee802154.default_spec()
        self.path_loss = ieee802154.urban_path_loss()
        self.airtime_s = ieee802154.airtime_s(config.payload_bytes)
        self.source = source_by_name(config.harvester)
        self.profile = TaskProfile()
        self.device_lifetimes = energy_harvesting_device(
            harvester_kind=config.harvester,
            embedded=config.harvester != "solar",
        )

        self.endpoint = CloudEndpoint(
            self.sim,
            renewal_miss_probability=0.0,
            store_deliveries=False,
        )
        self.backhaul = CampusBackhaul(self.sim)
        self.backhaul.add_dependency(self.endpoint)
        self.endpoint.deploy()
        self.backhaul.deploy()

        self.gateways: List[OwnedGateway] = []
        self._build_gateways()
        self.gateway_index = GatewayIndex(
            self.sim,
            lambda: [g for g in self.gateways if g.alive],
            cell_size_m=max(
                coverage_radius_m(self.spec, self.path_loss, 0.5), 50.0
            ),
        )

        self.device_positions = grid_positions(
            config.device_count, spacing_m=config.device_spacing_m
        )
        self.devices: List[EdgeDevice] = []
        self.cohorts: List[DeviceCohort] = []
        if config.engine == "cohort":
            self._build_cohorts()
        else:
            self._build_devices()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_gateways(self) -> None:
        """An offset gateway grid covering the device extent.

        Gateways sit at half-spacing offsets — cell centres of their own
        grid — so the worst-case device sits at a gateway-grid corner,
        ``spacing * sqrt(2) / 2`` away, inside the coverage radius at
        the default spacing.  Each gateway rides the shared campus
        backhaul and wears out on the Raspberry-Pi platform model.
        """
        config = self.config
        side = 1
        while side * side < config.device_count:
            side += 1
        extent = side * config.device_spacing_m
        gw_side = max(1, -(-int(extent) // int(config.gateway_spacing_m)))
        spacing = config.gateway_spacing_m
        for row in range(gw_side):
            for col in range(gw_side):
                gateway = OwnedGateway(
                    self.sim,
                    spec=ieee802154.default_spec(tx_power_dbm=4.0),
                    path_loss=self.path_loss,
                    position=Position((col + 0.5) * spacing, (row + 0.5) * spacing),
                )
                gateway.add_dependency(self.backhaul)
                gateway.deploy()
                FailureProcess(
                    self.sim,
                    gateway,
                    gateway_platform(networked=True),
                    stream="gateway-hw",
                ).arm()
                self.gateways.append(gateway)

    def _batch_slices(self) -> List[range]:
        """Contiguous member index ranges, one per rollout batch.

        The first ``count % batches`` batches take the extra member, so
        every device lands in exactly one batch and batch order follows
        member order — the property that keeps per-stream RNG draw
        order identical between the two engines.
        """
        count = self.config.device_count
        batches = self.plan.batches
        base, rem = divmod(count, batches)
        slices = []
        start = 0
        for b in range(batches):
            size = base + (1 if b < rem else 0)
            if size == 0:
                continue
            slices.append(range(start, start + size))
            start += size
        return slices

    def _build_cohorts(self) -> None:
        config = self.config
        initial = config.initial_fill * config.capacity_j
        for batch, members in enumerate(self._batch_slices()):
            positions = [self.device_positions[i] for i in members]
            power = CohortPower(
                source=self.source,
                count=len(positions),
                capacity_j=config.capacity_j,
                initial_stored_j=initial,
                profile=self.profile,
            )
            cohort = DeviceCohort(
                self.sim,
                technology="802.15.4",
                spec=self.spec,
                airtime_s=self.airtime_s,
                report_interval=config.report_interval,
                positions=positions,
                payload_bytes=config.payload_bytes,
                power=power,
                lifetime_model=self.device_lifetimes,
                name=f"{config.asset}-batch-{batch}",
            )
            cohort.gateway_index = self.gateway_index
            cohort.deploy()
            self.cohorts.append(cohort)

    def _build_devices(self) -> None:
        config = self.config
        initial = config.initial_fill * config.capacity_j
        for members in self._batch_slices():
            for i in members:
                power = HarvestingSystem(
                    source=self.source,
                    storage=Capacitor(
                        capacity_j=config.capacity_j, stored_j=initial
                    ),
                    profile=self.profile,
                )
                device = EdgeDevice(
                    self.sim,
                    technology="802.15.4",
                    spec=self.spec,
                    airtime_s=self.airtime_s,
                    report_interval=config.report_interval,
                    payload_bytes=config.payload_bytes,
                    position=self.device_positions[i],
                    power=power,
                    lifetime_model=self.device_lifetimes,
                )
                device.gateway_index = self.gateway_index
                device.deploy()
                self.devices.append(device)

    # ------------------------------------------------------------------
    # Execution and summary
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, object]:
        """Run to the configured horizon and return :meth:`fleet_summary`."""
        self.sim.run_until(self.config.horizon)
        return self.fleet_summary()

    def devices_alive(self) -> int:
        """Members whose hardware is still alive, across either engine."""
        if self.cohorts:
            return sum(c.devices_alive() for c in self.cohorts)
        return sum(1 for d in self.devices if d.alive)

    def fleet_summary(self) -> Dict[str, object]:
        """Engine-independent outcome aggregates.

        Every field must land bit-identically whichever engine executed
        the run — this dict *is* the equivalence surface the golden
        city fixture compares.  Deliberately excluded: executed-event
        counts and run-log lengths, which legitimately differ between
        one-event-per-device and one-event-per-batch execution.
        """
        metrics = self.sim.metrics
        uptime = self.endpoint.weekly_uptime(0.0, self.sim.now + 1.0)
        return {
            "engine": self.config.engine,
            "device_count": self.config.device_count,
            "attempts": metrics.total(
                "net_reports_attempted_total", tier="device"
            ),
            "delivered": metrics.total(
                "net_reports_delivered_total", tier="device"
            ),
            "energy_denied": metrics.total(
                "net_reports_dropped_total", tier="device", reason="energy"
            ),
            "no_gateway": metrics.total(
                "net_reports_dropped_total", tier="device", reason="no-gateway"
            ),
            "radio_lost": metrics.total(
                "net_reports_dropped_total", tier="device", reason="radio"
            ),
            "gateway_received": metrics.total(
                "net_packets_received_total", tier="gateway"
            ),
            "gateway_forwarded": metrics.total(
                "net_packets_forwarded_total", tier="gateway"
            ),
            "endpoint_delivered": self.endpoint.delivered_count,
            "gap_buckets": list(self.endpoint.delivery_gap_buckets),
            "uptime": uptime.uptime,
            "up_weeks": uptime.up_weeks,
            "longest_gap_weeks": uptime.longest_gap_weeks,
            "total_deliveries": uptime.total_deliveries,
            "devices_alive_at_end": self.devices_alive(),
            "gateways_alive_at_end": sum(1 for g in self.gateways if g.alive),
        }


def build_city(config: Union[CityScaleConfig, None] = None) -> CityScenario:
    """Construct a :class:`CityScenario` (default config if none given)."""
    return CityScenario(config if config is not None else CityScaleConfig())
