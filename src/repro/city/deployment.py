"""Rollout planning: geographic batches on infrastructure project cycles.

"Los Angeles was not built in a day.  Instead of replacing or upgrading
one sensor type en masse, infrastructure projects operate in
geographical batches to keep costs down."  ``RolloutPlan`` turns a city
inventory into the staggered cohort schedule that
:mod:`repro.core.lifetime` consumes, and prices it with
:mod:`repro.econ.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core import units
from ..core.lifetime import FleetTimeline, pipelined_fleet
from ..econ.costs import CostParameters
from .assets import AssetClass, CityInventory


@dataclass(frozen=True)
class RolloutPlan:
    """How one city instruments one asset class over time.

    ``project_cycle_years`` — the infrastructure maintenance cycle the
    sensor work rides on (repaving, relamping).  ``batches`` — how many
    geographic batches the city is divided into.
    """

    asset: AssetClass
    project_cycle_years: float
    batches: int = 24
    instrumented_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.project_cycle_years <= 0.0:
            raise ValueError("project_cycle_years must be positive")
        if self.batches < 1:
            raise ValueError("batches must be >= 1")
        if not 0.0 < self.instrumented_fraction <= 1.0:
            raise ValueError("instrumented_fraction must be in (0, 1]")

    @property
    def fleet_size(self) -> int:
        """Sensors this plan deploys at steady state."""
        return max(1, int(self.asset.sensor_count * self.instrumented_fraction))

    @property
    def batch_size(self) -> int:
        """Sensors refreshed per project batch."""
        return max(1, self.fleet_size // self.batches)

    @property
    def build_out_years(self) -> float:
        """Time to first full coverage (one whole project cycle)."""
        return self.project_cycle_years

    def timeline(
        self,
        lifetime_sampler: Callable[[int], np.ndarray],
        horizon: float,
        coverage_floor: float = 0.5,
        stop_replacing_after: Optional[float] = None,
    ) -> FleetTimeline:
        """Materialize the staggered cohort timeline for this plan."""
        return pipelined_fleet(
            nominal_size=self.fleet_size,
            lifetime_sampler=lifetime_sampler,
            refresh_interval=units.years(self.project_cycle_years),
            horizon=horizon,
            batches=self.batches,
            coverage_floor=coverage_floor,
            stop_replacing_after=stop_replacing_after,
        )

    def annual_touch_rate(self) -> float:
        """Devices touched per year under the project cadence."""
        return self.fleet_size / self.project_cycle_years

    def annual_cost_usd(self, costs: CostParameters = CostParameters()) -> float:
        """Steady-state annual spend riding the project cycle.

        Because sensor swaps piggyback on scheduled works, no dedicated
        truck roll is charged — the §1 economy of geographic batching.
        """
        per_device = costs.device_hardware_usd + costs.labor_usd_per_hour * (
            costs.replacement_minutes / 60.0
        )
        return self.annual_touch_rate() * per_device

    def standalone_annual_cost_usd(
        self, device_mtbf_years: float, costs: CostParameters = CostParameters()
    ) -> float:
        """Counterfactual: maintaining the same fleet with dedicated
        on-failure truck rolls instead of riding project batches."""
        return costs.annual_maintenance_usd(self.fleet_size, device_mtbf_years)


def city_rollout(
    city: CityInventory,
    instrumented_fraction: float = 1.0,
    batches: int = 24,
) -> List[RolloutPlan]:
    """One plan per asset class, cycles tied to each asset's service life.

    The project cycle for sensors on an asset is that asset's own
    maintenance cycle — sensors embedded in pavement get refreshed when
    the pavement does.
    """
    plans = []
    for asset in city.assets:
        if asset.sensor_count == 0:
            continue
        plans.append(
            RolloutPlan(
                asset=asset,
                project_cycle_years=min(asset.service_life_years, 25.0),
                batches=batches,
                instrumented_fraction=instrumented_fraction,
            )
        )
    return plans
