"""City-scale deployment: asset inventories, rollout plans, workloads."""

from .assets import (
    LA_INTERSECTIONS,
    LA_STREETLIGHTS,
    LA_TOTAL_ASSETS,
    LA_UTILITY_POLES,
    SERVICE_LIFE_YEARS,
    AssetClass,
    CityInventory,
    los_angeles,
    san_diego_pilot,
    scaled_city,
)
from .airquality import (
    PollutionFieldConfig,
    SensingError,
    density_study,
    evaluate_density,
    nearest_sensor_reconstruction,
    synthesize_field,
)
from .deployment import RolloutPlan, city_rollout
from .trash import (
    BinFleetConfig,
    CollectionResult,
    SeoulComparison,
    compare_policies,
    simulate_scheduled,
    simulate_sensor_driven,
)

__all__ = [
    "LA_INTERSECTIONS",
    "LA_STREETLIGHTS",
    "LA_TOTAL_ASSETS",
    "LA_UTILITY_POLES",
    "SERVICE_LIFE_YEARS",
    "AssetClass",
    "CityInventory",
    "los_angeles",
    "san_diego_pilot",
    "scaled_city",
    "PollutionFieldConfig",
    "SensingError",
    "density_study",
    "evaluate_density",
    "nearest_sensor_reconstruction",
    "synthesize_field",
    "RolloutPlan",
    "city_rollout",
    "BinFleetConfig",
    "CollectionResult",
    "SeoulComparison",
    "compare_policies",
    "simulate_scheduled",
    "simulate_sensor_driven",
]
