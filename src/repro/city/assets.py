"""City asset inventories: the substrate smart infrastructure bolts onto.

§1's Los Angeles counts — 320,000 utility poles, 61,315 intersections,
210,000 streetlights — are embedded as the calibration city.  Assets
carry the service life of the *physical* infrastructure they are mounted
on (poles ~40 yr, pavement ~25 yr, bridges ~50 yr), which bounds how
long an embedded sensor can possibly matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core import units

#: §1's published Los Angeles inventory.
LA_UTILITY_POLES: int = 320_000
LA_INTERSECTIONS: int = 61_315
LA_STREETLIGHTS: int = 210_000
LA_TOTAL_ASSETS: int = LA_UTILITY_POLES + LA_INTERSECTIONS + LA_STREETLIGHTS

#: Median service lives the paper cites: roads 25 yr (WisDOT), bridges
#: 50 yr (NBI), wood poles ~40 yr (NAWPC).
SERVICE_LIFE_YEARS: Dict[str, float] = {
    "utility-pole": 40.0,
    "intersection": 25.0,   # tied to pavement cycle
    "streetlight": 30.0,
    "bridge": 50.0,
    "road-segment": 25.0,
}


@dataclass(frozen=True)
class AssetClass:
    """One category of mountable/embeddable infrastructure."""

    name: str
    count: int
    service_life_years: float
    sensors_per_asset: int = 1

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.service_life_years <= 0.0:
            raise ValueError("service_life_years must be positive")
        if self.sensors_per_asset < 0:
            raise ValueError("sensors_per_asset must be non-negative")

    @property
    def sensor_count(self) -> int:
        """Sensors hosted by this asset class at full instrumentation."""
        return self.count * self.sensors_per_asset

    @property
    def service_life(self) -> float:
        """Service life in seconds."""
        return units.years(self.service_life_years)


@dataclass(frozen=True)
class CityInventory:
    """A city's instrumentable asset classes."""

    name: str
    assets: List[AssetClass]

    def total_assets(self) -> int:
        """All mountable assets."""
        return sum(a.count for a in self.assets)

    def total_sensors(self) -> int:
        """Sensors at full instrumentation."""
        return sum(a.sensor_count for a in self.assets)

    def asset(self, name: str) -> AssetClass:
        """Look up one asset class by name."""
        for asset_class in self.assets:
            if asset_class.name == name:
                return asset_class
        raise KeyError(f"no asset class {name!r} in {self.name}")

    def replacement_person_hours(
        self, minutes_per_device: float = 20.0
    ) -> float:
        """§1's arithmetic: person-hours to touch every sensor once."""
        if minutes_per_device <= 0.0:
            raise ValueError("minutes_per_device must be positive")
        return self.total_sensors() * minutes_per_device / 60.0


def los_angeles() -> CityInventory:
    """The paper's calibration city, with its three §1 asset classes."""
    return CityInventory(
        name="Los Angeles",
        assets=[
            AssetClass(
                "utility-pole", LA_UTILITY_POLES, SERVICE_LIFE_YEARS["utility-pole"]
            ),
            AssetClass(
                "intersection", LA_INTERSECTIONS, SERVICE_LIFE_YEARS["intersection"]
            ),
            AssetClass(
                "streetlight", LA_STREETLIGHTS, SERVICE_LIFE_YEARS["streetlight"]
            ),
        ],
    )


def san_diego_pilot() -> CityInventory:
    """§2's San Diego deployment scale: 8,000 smart LEDs, 3,300 sensor
    nodes on streetlights."""
    return CityInventory(
        name="San Diego (pilot)",
        assets=[
            AssetClass(
                "streetlight",
                8_000,
                SERVICE_LIFE_YEARS["streetlight"],
                sensors_per_asset=0,
            ),
            AssetClass(
                "sensor-node-host",
                3_300,
                SERVICE_LIFE_YEARS["streetlight"],
                sensors_per_asset=1,
            ),
        ],
    )


def scaled_city(name: str, scale: float) -> CityInventory:
    """An LA-proportioned city at ``scale`` times LA's size."""
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    la = los_angeles()
    return CityInventory(
        name=name,
        assets=[
            AssetClass(
                a.name,
                int(round(a.count * scale)),
                a.service_life_years,
                a.sensors_per_asset,
            )
            for a in la.assets
        ],
    )
