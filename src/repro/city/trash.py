"""Sensor-driven waste collection: reproducing the Seoul result (§2).

The paper cites Seoul's smart-bin programme reducing bin overflow by
66 % and waste-collection cost by 83 %.  We rebuild the mechanism from
first principles: bins fill at heterogeneous, bursty rates; a
*scheduled* collector visits every bin on a fixed cadence (overflowing
the fast bins, wasting trips on the slow ones); a *sensor-driven*
collector dispatches only when a fill sensor crosses a threshold.

Cost is counted in bin-visits (the dominant driver of collection cost:
truck time per stop); overflow is counted in bin-hours spent above
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RandomStreams



@dataclass(frozen=True)
class BinFleetConfig:
    """A heterogeneous fleet of public trash bins.

    Fill rates are log-normal across bins: a few high-traffic bins fill
    in under a day while most take a week or more — the mismatch that
    breaks fixed schedules.
    """

    n_bins: int = 500
    median_fill_days: float = 7.0
    fill_sigma: float = 1.0
    burst_probability: float = 0.02   # chance per bin-hour of an event dump
    burst_fill_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.n_bins <= 0:
            raise ValueError("n_bins must be positive")
        if self.median_fill_days <= 0.0:
            raise ValueError("median_fill_days must be positive")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")

    def sample_rates(self, rng: np.random.Generator) -> np.ndarray:
        """Per-bin mean fill fraction per hour."""
        fill_days = rng.lognormal(np.log(self.median_fill_days), self.fill_sigma, self.n_bins)
        return 1.0 / (fill_days * 24.0)


@dataclass(frozen=True)
class CollectionResult:
    """Outcome of one collection policy over the study window."""

    policy: str
    visits: int
    overflow_bin_hours: float
    overflow_events: int
    horizon_days: float

    @property
    def visits_per_bin_day(self) -> float:
        """Visit intensity (the cost proxy), normalized."""
        return self.visits / self.horizon_days

    def overflow_reduction_vs(self, baseline: "CollectionResult") -> float:
        """Fractional overflow reduction relative to ``baseline``."""
        if baseline.overflow_bin_hours == 0.0:
            return 0.0
        return 1.0 - self.overflow_bin_hours / baseline.overflow_bin_hours

    def cost_reduction_vs(self, baseline: "CollectionResult") -> float:
        """Fractional visit-cost reduction relative to ``baseline``."""
        if baseline.visits == 0:
            return 0.0
        return 1.0 - self.visits / baseline.visits


def _step_fills(
    fill: np.ndarray,
    rates: np.ndarray,
    config: BinFleetConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Advance all bins by one hour (fills may exceed 1.0 = overflow)."""
    noise = rng.gamma(shape=4.0, scale=0.25, size=len(fill))
    fill = fill + rates * noise
    bursts = rng.random(len(fill)) < config.burst_probability
    fill = fill + bursts * config.burst_fill_fraction
    return fill


def simulate_scheduled(
    config: BinFleetConfig,
    rng: np.random.Generator,
    horizon_days: float = 90.0,
    visit_interval_days: float = 2.0,
) -> CollectionResult:
    """Fixed-cadence collection: every bin, every ``visit_interval_days``.

    This is the pre-sensor baseline: the schedule must be tight enough
    for the *fast* bins, so most visits find half-empty bins, and fast
    bins still overflow between visits.
    """
    if horizon_days <= 0.0 or visit_interval_days <= 0.0:
        raise ValueError("horizon and interval must be positive")
    rates = config.sample_rates(rng)
    fill = rng.random(config.n_bins) * 0.5
    hours = int(horizon_days * 24)
    interval_hours = int(visit_interval_days * 24)
    visits = 0
    overflow_hours = 0.0
    overflow_events = 0
    overflowing = np.zeros(config.n_bins, dtype=bool)
    for hour in range(1, hours + 1):
        fill = _step_fills(fill, rates, config, rng)
        now_over = fill >= 1.0
        overflow_events += int(np.sum(now_over & ~overflowing))
        overflowing = now_over
        overflow_hours += float(np.sum(now_over))
        if hour % interval_hours == 0:
            visits += config.n_bins
            fill[:] = 0.0
            overflowing[:] = False
    return CollectionResult(
        policy=f"scheduled-{visit_interval_days:g}d",
        visits=visits,
        overflow_bin_hours=overflow_hours,
        overflow_events=overflow_events,
        horizon_days=horizon_days,
    )


def simulate_sensor_driven(
    config: BinFleetConfig,
    rng: np.random.Generator,
    horizon_days: float = 90.0,
    dispatch_threshold: float = 0.85,
    response_hours: int = 24,
    capacity_multiplier: float = 3.0,
) -> CollectionResult:
    """Sensor-driven collection with compacting smart bins.

    Seoul's deployment (Ecube-style solar compactors) pairs a fill
    sensor with on-bin compaction: ``capacity_multiplier`` is the
    effective capacity gain from compaction (field reports run 3–8×).
    A pickup is dispatched within ``response_hours`` of the sensor
    crossing ``dispatch_threshold`` of the *compacted* capacity.  Only
    full bins are ever visited and each visit collects several bins'
    worth — the 83 %-cost mechanism; fast bins are caught by the sensor
    before the brim — the 66 %-overflow mechanism.
    """
    if not 0.0 < dispatch_threshold < 1.0:
        raise ValueError("dispatch_threshold must be in (0, 1)")
    if response_hours < 0:
        raise ValueError("response_hours must be non-negative")
    if capacity_multiplier < 1.0:
        raise ValueError("capacity_multiplier must be >= 1")
    rates = config.sample_rates(rng)
    fill = rng.random(config.n_bins) * 0.5
    capacity = capacity_multiplier
    hours = int(horizon_days * 24)
    pending = np.full(config.n_bins, -1, dtype=int)  # dispatch countdown
    visits = 0
    overflow_hours = 0.0
    overflow_events = 0
    overflowing = np.zeros(config.n_bins, dtype=bool)
    for _hour in range(1, hours + 1):
        fill = _step_fills(fill, rates, config, rng)
        now_over = fill >= capacity
        overflow_events += int(np.sum(now_over & ~overflowing))
        overflowing = now_over
        overflow_hours += float(np.sum(now_over))
        crossed = (fill >= dispatch_threshold * capacity) & (pending < 0)
        pending[crossed] = response_hours
        due = pending == 0
        if np.any(due):
            visits += int(np.sum(due))
            fill[due] = 0.0
            overflowing[due] = False
        pending[pending >= 0] -= 1
    return CollectionResult(
        policy=f"sensor-driven@{dispatch_threshold:g}x{capacity_multiplier:g}",
        visits=visits,
        overflow_bin_hours=overflow_hours,
        overflow_events=overflow_events,
        horizon_days=horizon_days,
    )


@dataclass(frozen=True)
class SeoulComparison:
    """The E3 benchmark row: paper-vs-measured reductions."""

    overflow_reduction: float
    cost_reduction: float
    paper_overflow_reduction: float = 0.66
    paper_cost_reduction: float = 0.83

    def shape_holds(self, tolerance: float = 0.25) -> bool:
        """True if both reductions land within ``tolerance`` of the paper
        and in the right direction (large double-digit improvements)."""
        return (
            abs(self.overflow_reduction - self.paper_overflow_reduction) <= tolerance
            and abs(self.cost_reduction - self.paper_cost_reduction) <= tolerance
        )


def compare_policies(
    config: BinFleetConfig = BinFleetConfig(),
    seed: int = 2021,
    horizon_days: float = 90.0,
    visit_interval_days: float = 2.0,
    dispatch_threshold: float = 0.85,
) -> SeoulComparison:
    """Run both policies on identically-distributed fleets and compare.

    Each policy gets a *fresh* copy of the same named stream, so both
    replay identical draws (paired fleets) while staying inside the
    ``RandomStreams`` seed-derivation discipline (simlint SL002).
    """
    def paired_rng(run_seed: int) -> np.random.Generator:
        return RandomStreams(run_seed).get("city.trash")

    baseline = simulate_scheduled(
        config, paired_rng(seed), horizon_days, visit_interval_days
    )
    smart = simulate_sensor_driven(
        config, paired_rng(seed), horizon_days, dispatch_threshold
    )
    return SeoulComparison(
        overflow_reduction=smart.overflow_reduction_vs(baseline),
        cost_reduction=smart.cost_reduction_vs(baseline),
    )
