"""centurysim — a reproduction of "Century-Scale Smart Infrastructure"
(Jagtap, Bhaskar, Pannuto; HotOS '21) as a simulation library.

The paper asks what devices, gateways, network architectures, and
management must look like for sensing systems designed to operate for
decades.  This library models every layer of that stack — energy
harvesting, component reliability, radios, gateways, backhauls,
obsolescence, economics, and city-scale deployment — and provides a
harness for the paper's 50-year experiment plus benchmarks regenerating
each of its quantitative claims.

Quick start::

    from repro.experiment import run_scenario
    from repro.core import units

    result = run_scenario("as-designed", horizon=units.years(10.0))
    print("\\n".join(result.summary_lines()))

Subpackages
-----------
``core``          discrete-event kernel, hierarchy, lifetimes, policies
``reliability``   hazard models, component lifetimes, survival analysis
``energy``        harvesters, storage, intermittency
``radio``         link model, 802.15.4 and LoRa PHYs
``net``           devices, gateways, backhauls, cloud, Helium
``obsolescence``  obsolescence taxonomy, tech timelines, upgrade policy
``econ``          costs, TCO, tipping point, data credits
``city``          asset inventories, rollouts, Seoul workload
``analysis``      AS concentration, uptime, metrics, diary
``experiment``    the §4 fifty-year experiment and scenarios
``faults``        deterministic fault injection + invariant auditing
``obs``           deterministic telemetry: metrics, traces, exporters
``runtime``       deterministic parallel Monte-Carlo execution
``serve``         scenario-as-a-service HTTP endpoint, content-keyed cache
"""

__version__ = "1.0.0"

from . import (
    analysis,
    city,
    core,
    econ,
    energy,
    experiment,
    faults,
    net,
    obs,
    obsolescence,
    radio,
    reliability,
    runtime,
    serve,
)

__all__ = [
    "analysis",
    "city",
    "core",
    "econ",
    "energy",
    "experiment",
    "faults",
    "net",
    "obs",
    "obsolescence",
    "radio",
    "reliability",
    "runtime",
    "serve",
    "__version__",
]
