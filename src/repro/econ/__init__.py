"""Economics: deployment costs, backhaul TCO, tipping point, credits."""

from .backhaul_tco import (
    CellularCosts,
    FiberCosts,
    TcoPoint,
    crossover_year,
    tco_series,
)
from .costs import AmortizationSchedule, CostParameters, present_value
from .credits import (
    PAPER_HOURS_PER_YEAR,
    PrepayQuote,
    cost_per_device_per_year,
    fleet_prepay_usd,
    paper_credit_count,
    paper_prepay_quote,
)
from .lifecycle import (
    DeviceStrategy,
    LifecycleCost,
    breakeven_premium,
    strategy_cost,
)
from .sharing import (
    SharingComparison,
    compare_sharing,
    coverage_fraction,
    gateways_for_coverage,
)
from .tipping import TippingDecision, TippingPointAnalysis

__all__ = [
    "CellularCosts",
    "FiberCosts",
    "TcoPoint",
    "crossover_year",
    "tco_series",
    "AmortizationSchedule",
    "CostParameters",
    "present_value",
    "PAPER_HOURS_PER_YEAR",
    "PrepayQuote",
    "cost_per_device_per_year",
    "fleet_prepay_usd",
    "paper_credit_count",
    "paper_prepay_quote",
    "DeviceStrategy",
    "LifecycleCost",
    "breakeven_premium",
    "strategy_cost",
    "SharingComparison",
    "compare_sharing",
    "coverage_fraction",
    "gateways_for_coverage",
    "TippingDecision",
    "TippingPointAnalysis",
]
