"""Deployment cost accounting: capex, opex, and truck-roll labor.

§2's observation — "the cost for deployment for even a few thousand
sensors can range into millions of dollars" — and §1's replacement-labor
arithmetic both reduce to a small set of per-unit cost parameters swept
by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..reliability.maintenance import PAPER_REPLACEMENT_MINUTES


@dataclass(frozen=True)
class CostParameters:
    """Unit economics for one deployment programme.

    Defaults are calibrated so a 3,300-sensor deployment (San Diego's
    §2 scale) lands in the low millions of dollars, matching the
    paper's "can range into millions".
    """

    device_hardware_usd: float = 150.0
    device_install_usd: float = 450.0       # lift truck, traffic control, labor
    gateway_hardware_usd: float = 900.0
    gateway_install_usd: float = 2_500.0
    labor_usd_per_hour: float = 95.0
    truck_roll_usd: float = 180.0           # fixed cost of any site visit
    replacement_minutes: float = PAPER_REPLACEMENT_MINUTES

    def __post_init__(self) -> None:
        for name in (
            "device_hardware_usd",
            "device_install_usd",
            "gateway_hardware_usd",
            "gateway_install_usd",
            "labor_usd_per_hour",
            "truck_roll_usd",
        ):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if self.replacement_minutes <= 0.0:
            raise ValueError("replacement_minutes must be positive")

    def initial_deployment_usd(self, devices: int, gateways: int) -> float:
        """Capex to stand up a deployment."""
        if devices < 0 or gateways < 0:
            raise ValueError("counts must be non-negative")
        return devices * (self.device_hardware_usd + self.device_install_usd) + gateways * (
            self.gateway_hardware_usd + self.gateway_install_usd
        )

    def device_replacement_usd(self) -> float:
        """All-in cost of swapping one failed device."""
        labor = self.labor_usd_per_hour * self.replacement_minutes / 60.0
        return self.device_hardware_usd + self.truck_roll_usd + labor

    def fleet_replacement_usd(self, devices: int) -> float:
        """Cost of replacing an entire fleet once (the §3.4 lock-in
        quantity: as fleets grow, so does the cost of replacing them)."""
        return devices * self.device_replacement_usd()

    def fleet_replacement_person_hours(self, devices: int) -> float:
        """Person-hours to replace the fleet, per the §1 arithmetic."""
        return devices * self.replacement_minutes / 60.0

    def annual_maintenance_usd(
        self, devices: int, device_mtbf_years: float
    ) -> float:
        """Steady-state annual replacement spend for a maintained fleet."""
        if device_mtbf_years <= 0.0:
            raise ValueError("device_mtbf_years must be positive")
        failures_per_year = devices / device_mtbf_years
        return failures_per_year * self.device_replacement_usd()


@dataclass(frozen=True)
class AmortizationSchedule:
    """Straight-line amortization of a capex over a service life."""

    capex_usd: float
    service_life_years: float

    def __post_init__(self) -> None:
        if self.capex_usd < 0.0:
            raise ValueError("capex_usd must be non-negative")
        if self.service_life_years <= 0.0:
            raise ValueError("service_life_years must be positive")

    @property
    def annual_usd(self) -> float:
        """Annual amortized cost."""
        return self.capex_usd / self.service_life_years

    def remaining_value(self, age_years: float) -> float:
        """Book value after ``age_years``."""
        if age_years < 0.0:
            raise ValueError("age_years must be non-negative")
        remaining = 1.0 - age_years / self.service_life_years
        return self.capex_usd * max(0.0, remaining)


def present_value(annual_usd: float, years: float, discount_rate: float = 0.03) -> float:
    """PV of a constant annual cost stream over ``years``.

    Municipal planning horizon arithmetic; continuous-compounding form.
    """
    if years < 0.0:
        raise ValueError("years must be non-negative")
    if discount_rate < 0.0:
        raise ValueError("discount_rate must be non-negative")
    if discount_rate == 0.0:
        return annual_usd * years
    import math

    return annual_usd * (1.0 - math.exp(-discount_rate * years)) / discount_rate
