"""The vertical-integration tipping point (§3.4).

"As the number of deployed devices grows, so does the cost of replacing
them ... there will always be a tipping point where the cost of
deploying vertically owned and managed infrastructure is lower than the
cost of replacing devices."

We formalize the §3.4 decision: when third-party infrastructure
obsoletes (sunset/shutdown), a stakeholder either (a) replaces every
device to chase new infrastructure, or (b) deploys owned gateways +
backhaul that keep the existing devices alive.  The tipping point is the
fleet size where (b) becomes cheaper — provided the devices *can*
re-home, which is exactly what the takeaway policies buy you.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.policy import DeploymentPolicy
from .backhaul_tco import FiberCosts
from .costs import CostParameters


@dataclass(frozen=True)
class TippingPointAnalysis:
    """Inputs for the replace-devices vs own-infrastructure decision."""

    costs: CostParameters = CostParameters()
    fiber: FiberCosts = FiberCosts()
    devices_per_gateway: int = 250
    remaining_service_years: float = 10.0  # how long the fleet is still useful
    owned_opex_years: float = 10.0         # ops window to cost the owned option

    def gateways_needed(self, fleet_size: int) -> int:
        """Owned gateways required to cover the fleet."""
        if fleet_size <= 0:
            raise ValueError("fleet_size must be positive")
        return -(-fleet_size // self.devices_per_gateway)  # ceil division

    def replace_devices_usd(self, fleet_size: int) -> float:
        """Option (a): obsolete the fleet, deploy replacements that speak
        the new third-party infrastructure."""
        return self.costs.fleet_replacement_usd(fleet_size)

    def own_infrastructure_usd(self, fleet_size: int, policy: DeploymentPolicy) -> float:
        """Option (b): stand up owned gateways + backhaul for the fleet.

        Only available if devices can re-home (attachment policy) and the
        stakeholder kept the option (ownership policy); otherwise the
        cost is infinite — the fleet is simply stranded.  Stateful
        gateways multiply commissioning labor per the policy's factor.
        """
        if not (policy.devices_rehome and policy.can_self_deploy_infrastructure):
            return float("inf")
        gateways = self.gateways_needed(fleet_size)
        build = gateways * (
            self.costs.gateway_hardware_usd + self.costs.gateway_install_usd
        ) * policy.gateway_swap_cost_factor
        backhaul = self.fiber.cumulative(gateways, self.owned_opex_years)
        return build + backhaul

    def tipping_point(
        self, policy: DeploymentPolicy, max_fleet: int = 2_000_000
    ) -> int:
        """Smallest fleet size where owning beats replacing.

        Returns ``max_fleet + 1`` if owning never wins in range (e.g.
        the policy forecloses it).
        """
        if self.own_infrastructure_usd(max_fleet, policy) == float("inf"):
            return max_fleet + 1
        lo, hi = 1, max_fleet
        if self.own_infrastructure_usd(lo, policy) <= self.replace_devices_usd(lo):
            return lo
        if self.own_infrastructure_usd(hi, policy) > self.replace_devices_usd(hi):
            return max_fleet + 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.own_infrastructure_usd(mid, policy) <= self.replace_devices_usd(mid):
                hi = mid
            else:
                lo = mid
        return hi

    def decision(self, fleet_size: int, policy: DeploymentPolicy) -> "TippingDecision":
        """Full comparison row for one fleet size."""
        replace = self.replace_devices_usd(fleet_size)
        own = self.own_infrastructure_usd(fleet_size, policy)
        return TippingDecision(
            fleet_size=fleet_size,
            replace_usd=replace,
            own_usd=own,
            should_own=own <= replace,
        )


@dataclass(frozen=True)
class TippingDecision:
    """The outcome of the §3.4 decision at one fleet size."""

    fleet_size: int
    replace_usd: float
    own_usd: float
    should_own: bool

    @property
    def stranded(self) -> bool:
        """True when policy foreclosed the owning option entirely."""
        return self.own_usd == float("inf")
