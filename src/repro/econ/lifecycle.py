"""Lifecycle ROI: when do long-lived devices pay for themselves?

§1: the infrastructure promise "invites investment for functional
obsolescence ... which maximizes device utility and return on
investment over time."  The concrete question for a planner: harvesting
hardware costs more per unit — at what premium does it still beat cheap
battery devices over a long horizon, once replacement truck rolls are
counted?

``strategy_cost`` prices one sensing point over a horizon under a
renewal process (device fails → truck roll → replacement), optionally
discounted; :func:`breakeven_premium` solves for the unit-price ratio at
which the two strategies cost the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .costs import CostParameters


@dataclass(frozen=True)
class DeviceStrategy:
    """One way to keep a sensing point alive."""

    name: str
    unit_cost_usd: float
    mean_lifetime_years: float
    install_usd: float = 450.0

    def __post_init__(self) -> None:
        if self.unit_cost_usd < 0.0:
            raise ValueError("unit_cost_usd must be non-negative")
        if self.mean_lifetime_years <= 0.0:
            raise ValueError("mean_lifetime_years must be positive")


@dataclass(frozen=True)
class LifecycleCost:
    """Cost summary for one strategy over one horizon."""

    strategy: str
    horizon_years: float
    expected_replacements: float
    total_usd: float
    usd_per_sensing_year: float


def strategy_cost(
    strategy: DeviceStrategy,
    horizon_years: float,
    costs: CostParameters = CostParameters(),
    discount_rate: float = 0.0,
) -> LifecycleCost:
    """Expected cost of keeping one sensing point alive for the horizon.

    Renewal-theory approximation: replacements arrive at rate
    ``1/mean_lifetime``; each costs the unit price plus a truck roll and
    labor.  With a discount rate, replacement spend at time t is scaled
    by ``exp(-r t)`` (continuous discounting of a constant-rate stream).
    """
    if horizon_years <= 0.0:
        raise ValueError("horizon_years must be positive")
    if discount_rate < 0.0:
        raise ValueError("discount_rate must be non-negative")
    rate_per_year = 1.0 / strategy.mean_lifetime_years
    replacements = max(0.0, horizon_years * rate_per_year - 1.0)
    swap_cost = (
        strategy.unit_cost_usd
        + costs.truck_roll_usd
        + costs.labor_usd_per_hour * costs.replacement_minutes / 60.0
    )
    if discount_rate == 0.0:
        replacement_spend = replacements * swap_cost
    else:
        # PV of a constant spend stream rate*swap_cost over the horizon,
        # net of the initial install which is paid at t=0.
        stream = rate_per_year * swap_cost
        replacement_spend = (
            stream * (1.0 - math.exp(-discount_rate * horizon_years)) / discount_rate
        )
        replacement_spend = max(0.0, replacement_spend - swap_cost)
    initial = strategy.unit_cost_usd + strategy.install_usd
    total = initial + replacement_spend
    return LifecycleCost(
        strategy=strategy.name,
        horizon_years=horizon_years,
        expected_replacements=replacements,
        total_usd=total,
        usd_per_sensing_year=total / horizon_years,
    )


def breakeven_premium(
    battery: DeviceStrategy,
    harvesting_lifetime_years: float,
    horizon_years: float,
    costs: CostParameters = CostParameters(),
) -> float:
    """Unit-price ratio at which a long-lived device matches the cheap one.

    Solves for the harvesting unit cost whose lifecycle cost equals the
    battery strategy's, returned as a multiple of the battery unit cost.
    A result of e.g. 4.0 means planners can pay 4x per unit for
    harvesting hardware and still break even over the horizon — §1's
    ROI argument in one number.
    """
    if harvesting_lifetime_years <= 0.0:
        raise ValueError("harvesting_lifetime_years must be positive")
    target = strategy_cost(battery, horizon_years, costs).total_usd
    lo, hi = 0.0, 10_000.0 * max(battery.unit_cost_usd, 1.0)
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        candidate = DeviceStrategy(
            name="harvesting",
            unit_cost_usd=mid,
            mean_lifetime_years=harvesting_lifetime_years,
            install_usd=battery.install_usd,
        )
        if strategy_cost(candidate, horizon_years, costs).total_usd < target:
            lo = mid
        else:
            hi = mid
    if battery.unit_cost_usd == 0.0:
        return float("inf")
    return 0.5 * (lo + hi) / battery.unit_cost_usd
