"""Data-credit economics for prepaid third-party transport (§4.4).

The paper's arithmetic, exactly: "For one device to send one (up to
24-byte) packet every one hour for 50 years will cost 438,000 data
credits.  We can provision a dedicated wallet today with a conservative
500,000 data credits for just $5 USD."  438,000 = 50 yr × 365 d × 24 h,
i.e. 365-day years; credits are $1e-5 each.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.helium import USD_PER_CREDIT

#: Hours in the paper's (365-day) year.
PAPER_HOURS_PER_YEAR: int = 365 * 24


def paper_credit_count(
    years: float = 50.0, packets_per_hour: float = 1.0, credits_per_packet: int = 1
) -> int:
    """Credits for the paper's schedule using its 365-day-year arithmetic.

    >>> paper_credit_count()
    438000
    """
    if years <= 0.0:
        raise ValueError("years must be positive")
    if packets_per_hour <= 0.0:
        raise ValueError("packets_per_hour must be positive")
    if credits_per_packet < 1:
        raise ValueError("credits_per_packet must be >= 1")
    return int(round(years * PAPER_HOURS_PER_YEAR * packets_per_hour * credits_per_packet))


@dataclass(frozen=True)
class PrepayQuote:
    """A prepaid-transport quote for one device."""

    credits_needed: int
    credits_provisioned: int
    cost_usd: float
    margin_fraction: float

    @property
    def covers_schedule(self) -> bool:
        """True if the provisioned wallet covers the planned schedule."""
        return self.credits_provisioned >= self.credits_needed


def paper_prepay_quote(
    years: float = 50.0,
    packets_per_hour: float = 1.0,
    credits_per_packet: int = 1,
    headroom: float = 0.1415,
) -> PrepayQuote:
    """The §4.4 wallet quote.

    The default ``headroom`` reproduces the paper's conservative round-up
    from 438,000 needed to 500,000 provisioned ($5.00).

    >>> q = paper_prepay_quote()
    >>> q.credits_needed, q.credits_provisioned, round(q.cost_usd, 2)
    (438000, 500000, 5.0)
    """
    if headroom < 0.0:
        raise ValueError("headroom must be non-negative")
    needed = paper_credit_count(years, packets_per_hour, credits_per_packet)
    provisioned = int(round(needed * (1.0 + headroom), -4))  # round to 10k
    return PrepayQuote(
        credits_needed=needed,
        credits_provisioned=provisioned,
        cost_usd=provisioned * USD_PER_CREDIT,
        margin_fraction=provisioned / needed - 1.0,
    )


def cost_per_device_per_year(
    packets_per_hour: float = 1.0, credits_per_packet: int = 1
) -> float:
    """Steady-state transport cost in USD per device-year."""
    if packets_per_hour <= 0.0:
        raise ValueError("packets_per_hour must be positive")
    credits = PAPER_HOURS_PER_YEAR * packets_per_hour * credits_per_packet
    return credits * USD_PER_CREDIT


def fleet_prepay_usd(
    devices: int,
    years: float = 50.0,
    packets_per_hour: float = 1.0,
    credits_per_packet: int = 1,
    headroom: float = 0.1415,
) -> float:
    """Wallet provisioning cost for a whole fleet.

    The striking §4.4 observation at scale: prepaying 50 years of
    transport for 10,000 devices costs about $50k — noise next to the
    hardware.
    """
    if devices <= 0:
        raise ValueError("devices must be positive")
    quote = paper_prepay_quote(years, packets_per_hour, credits_per_packet, headroom)
    return devices * quote.cost_usd
