"""Gateway sharing economics and coverage (§3.2).

"Manufacturers often lock down their software ecosystem, so that their
sensors can only work with their specific gateways.  Consequently,
today's cities end up containing several ad-hoc wireless systems that
are redundant (e.g. co-located 802.15.4 gateways that serve devices
from different manufacturers)."

Boolean (Poisson) coverage model: gateways dropped at density λ each
cover a disc of radius R; the covered fraction is ``1 - exp(-λπR²)``.
Under vendor silos each vendor's devices see only that vendor's
gateways; with open gateways every device sees all of them.  Sharing
therefore converts the *same* hardware spend into exponentially better
coverage — or, dually, hits a coverage target with ``1/V`` the
gateways.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .costs import CostParameters


def coverage_fraction(gateways: int, area_km2: float, radius_m: float) -> float:
    """Boolean-model covered fraction for randomly-placed gateways.

    >>> round(coverage_fraction(100, 10.0, 200.0), 2)
    0.72
    """
    if gateways < 0:
        raise ValueError("gateways must be non-negative")
    if area_km2 <= 0.0:
        raise ValueError("area_km2 must be positive")
    if radius_m <= 0.0:
        raise ValueError("radius_m must be positive")
    disc_km2 = math.pi * (radius_m / 1000.0) ** 2
    return 1.0 - math.exp(-gateways * disc_km2 / area_km2)


def gateways_for_coverage(
    target: float, area_km2: float, radius_m: float
) -> int:
    """Gateways needed to cover ``target`` of the area.

    Inverts the Boolean model: ``n = -ln(1-target) * A / (pi R^2)``.
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0, 1)")
    disc_km2 = math.pi * (radius_m / 1000.0) ** 2
    return math.ceil(-math.log(1.0 - target) * area_km2 / disc_km2)


@dataclass(frozen=True)
class SharingComparison:
    """Vendor-siloed vs open gateway deployment at the same target."""

    vendors: int
    target_coverage: float
    gateways_siloed: int        # every vendor builds its own layer
    gateways_shared: int        # one open layer serves everyone
    capex_siloed_usd: float
    capex_shared_usd: float

    @property
    def hardware_saving(self) -> float:
        """Fractional gateway-count saving from sharing."""
        if self.gateways_siloed == 0:
            return 0.0
        return 1.0 - self.gateways_shared / self.gateways_siloed

    @property
    def coverage_if_pooled(self) -> float:
        """What the siloed hardware would cover if opened up.

        The §3.2 dual: keep the spend, multiply the coverage odds.
        """
        return 1.0 - (1.0 - self.target_coverage) ** self.vendors


def compare_sharing(
    vendors: int,
    target_coverage: float = 0.95,
    area_km2: float = 50.0,
    radius_m: float = 300.0,
    costs: CostParameters = CostParameters(),
) -> SharingComparison:
    """Cost a city's gateway layer with and without vendor silos.

    Each of ``vendors`` ecosystems must independently hit
    ``target_coverage`` for its own devices in the siloed world; one
    open layer suffices in the shared world.
    """
    if vendors < 1:
        raise ValueError("vendors must be >= 1")
    per_layer = gateways_for_coverage(target_coverage, area_km2, radius_m)
    siloed = vendors * per_layer
    shared = per_layer
    unit = costs.gateway_hardware_usd + costs.gateway_install_usd
    return SharingComparison(
        vendors=vendors,
        target_coverage=target_coverage,
        gateways_siloed=siloed,
        gateways_shared=shared,
        capex_siloed_usd=siloed * unit,
        capex_shared_usd=shared * unit,
    )
