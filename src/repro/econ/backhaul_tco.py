"""Total-cost-of-ownership comparison: fiber vs cellular backhaul (§3.3).

Fiber is capex-heavy (trenching) with tiny opex and no sunset; cellular
is capex-free but pays a per-gateway subscription forever *and* forces a
re-deployment at every generation sunset.  The TCO curves cross — where
they cross, and how trench-sharing moves the crossing, is experiment E5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class FiberCosts:
    """Fiber build for a gateway constellation.

    ``trench_share`` is the fraction of trenching cost actually borne by
    the sensing programme — the §3.3.1 amortization: municipalities
    coordinate digs with road works, and capacity is resold (community
    WiFi, business service) to offset cost.
    """

    trench_usd_per_km: float = 50_000.0
    km_per_gateway: float = 0.3   # urban gateways sit near existing conduit
    terminal_usd_per_gateway: float = 1_500.0
    opex_usd_per_gateway_year: float = 120.0
    transceiver_refresh_years: float = 12.0
    transceiver_usd: float = 600.0
    trench_share: float = 0.5     # coordinated digs split the trench (§3.3.1)

    def __post_init__(self) -> None:
        if not 0.0 < self.trench_share <= 1.0:
            raise ValueError("trench_share must be in (0, 1]")

    def capex(self, gateways: int) -> float:
        """Up-front build cost."""
        if gateways < 0:
            raise ValueError("gateways must be non-negative")
        trench = self.trench_usd_per_km * self.km_per_gateway * self.trench_share
        return gateways * (trench + self.terminal_usd_per_gateway)

    def cumulative(self, gateways: int, years: float) -> float:
        """Total spend from build-out through ``years`` of operation.

        Transceiver refreshes land every ``transceiver_refresh_years``;
        "fiber optic cable capacity depends more on the end transceiver
        equipment than the actual fiber itself" — the glass never needs
        replacing.
        """
        if years < 0.0:
            raise ValueError("years must be non-negative")
        refreshes = int(years // self.transceiver_refresh_years)
        return (
            self.capex(gateways)
            + gateways * self.opex_usd_per_gateway_year * years
            + gateways * refreshes * self.transceiver_usd
        )


@dataclass(frozen=True)
class CellularCosts:
    """Carrier-subscription backhaul for a gateway constellation.

    Every ``sunset_interval_years`` the serving generation is retired
    and each gateway needs a modem swap (hardware + truck roll).
    """

    modem_usd_per_gateway: float = 250.0
    subscription_usd_per_gateway_year: float = 600.0  # ~$50/mo municipal IoT plan
    sunset_interval_years: float = 18.0
    sunset_swap_usd_per_gateway: float = 430.0  # new modem + visit

    def capex(self, gateways: int) -> float:
        """Up-front cost (modems only; towers are the carrier's)."""
        if gateways < 0:
            raise ValueError("gateways must be non-negative")
        return gateways * self.modem_usd_per_gateway

    def cumulative(self, gateways: int, years: float) -> float:
        """Total spend through ``years`` of operation, sunsets included."""
        if years < 0.0:
            raise ValueError("years must be non-negative")
        sunsets = int(years // self.sunset_interval_years)
        return (
            self.capex(gateways)
            + gateways * self.subscription_usd_per_gateway_year * years
            + gateways * sunsets * self.sunset_swap_usd_per_gateway
        )


@dataclass(frozen=True)
class TcoPoint:
    """One row of the TCO comparison series."""

    years: float
    fiber_usd: float
    cellular_usd: float

    @property
    def fiber_wins(self) -> bool:
        """True once fiber's cumulative cost is lower."""
        return self.fiber_usd < self.cellular_usd


def tco_series(
    gateways: int,
    horizon_years: float = 50.0,
    step_years: float = 1.0,
    fiber: FiberCosts = FiberCosts(),
    cellular: CellularCosts = CellularCosts(),
) -> List[TcoPoint]:
    """Cumulative-cost series for both technologies over the horizon."""
    if gateways <= 0:
        raise ValueError("gateways must be positive")
    if horizon_years <= 0.0 or step_years <= 0.0:
        raise ValueError("horizon_years and step_years must be positive")
    points = []
    for years in np.arange(0.0, horizon_years + step_years, step_years):
        points.append(
            TcoPoint(
                years=float(years),
                fiber_usd=fiber.cumulative(gateways, float(years)),
                cellular_usd=cellular.cumulative(gateways, float(years)),
            )
        )
    return points


def crossover_year(
    gateways: int,
    horizon_years: float = 50.0,
    fiber: FiberCosts = FiberCosts(),
    cellular: CellularCosts = CellularCosts(),
) -> float:
    """First year at which fiber's cumulative TCO beats cellular's.

    Returns ``inf`` if fiber never wins inside the horizon (e.g. tiny
    constellations where trenching can't amortize).
    """
    points = tco_series(gateways, horizon_years, step_years=0.25, fiber=fiber, cellular=cellular)
    for point in points:
        if point.years > 0.0 and point.fiber_wins:
            return point.years
    return float("inf")
