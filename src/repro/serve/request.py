"""Canonical scenario-service requests and their content digests.

The whole serving layer rests on one fact: a scenario run is a pure
function of its request.  ``(scenario, seed(s), horizon, cadence,
overrides, fault plan, audit flag)`` fully determine the simulation, so
two requests with the same *content* must produce the same response
bytes — and the cache can key on content alone.

:class:`ServeRequest` is that content, normalized: JSON payloads are
validated field by field, numerics are coerced to their declared types
(``2``, ``2.0``, and ``2.00e0`` for a float field all normalize to the
same value), override keys are sorted, and the fault plan is parsed
through the version-checked :class:`~repro.faults.FaultPlan` loader.
The canonical form is a *fixed point*: parsing the serialization of a
request yields the identical request (the property suite asserts this),
which is what makes the digest stable under JSON key reordering and
float formatting.

The digest itself reuses :func:`repro.runtime.shard.task_fingerprint` —
the same machinery that decides whether two shard artifacts came from
the same study decides whether two HTTP requests are the same
computation.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core import units
from ..faults import FaultPlan, FaultPlanError
from ..runtime.runner import ScenarioTask
from ..runtime.shard import task_fingerprint

#: The request format version; bumped with any canonical-form change.
REQUEST_FORMAT_VERSION = 1

#: Per-endpoint defaults, mirroring the ``run`` / ``mc`` CLI defaults so
#: a served response stays byte-comparable to its offline counterpart.
RUN_DEFAULTS = {"seed": 2021, "years": 10.0, "report_days": 1.0}
MC_DEFAULTS = {
    "runs": 10,
    "base_seed": 100,
    "years": 25.0,
    "report_days": 2.0,
}

#: Hard ceilings: a public endpoint must bound the work one request can
#: demand.  Both are generous for the paper's studies and adjustable at
#: service construction.
MAX_YEARS = 100.0
MAX_RUNS = 10_000


class RequestError(ValueError):
    """A malformed or out-of-bounds service request (HTTP 400)."""


def _require_type(name: str, value: object, kind: type, type_name: str):
    # bool is an int subclass; an explicit true/false for a numeric
    # field is always a mistake, never a coercion.
    if isinstance(value, bool) or not isinstance(value, kind):
        raise RequestError(
            f"field {name!r} must be {type_name}, "
            f"got {type(value).__name__}"
        )
    return value


def _as_int(name: str, value: object) -> int:
    return int(_require_type(name, value, int, "an integer"))


def _as_float(name: str, value: object) -> float:
    # JSON spells 2, 2.0, and 2.00e0 differently but a float field
    # means the same number; normalizing here is what makes the cache
    # key stable under float formatting.
    return float(_require_type(name, value, (int, float), "a number"))


def _as_bool(name: str, value: object) -> bool:
    if not isinstance(value, bool):
        raise RequestError(
            f"field {name!r} must be a boolean, got {type(value).__name__}"
        )
    return value


def _normalize_override(field: dataclasses.Field, value: object) -> object:
    """Coerce one override value to its config field's declared shape."""
    default = field.default
    if isinstance(default, bool):
        if not isinstance(value, bool):
            raise RequestError(
                f"override {field.name!r} must be a boolean, "
                f"got {type(value).__name__}"
            )
        return value
    if isinstance(default, float):
        return _as_float(f"overrides.{field.name}", value)
    if isinstance(default, int):
        return _as_int(f"overrides.{field.name}", value)
    if isinstance(default, str):
        if not isinstance(value, str):
            raise RequestError(
                f"override {field.name!r} must be a string, "
                f"got {type(value).__name__}"
            )
        return value
    raise RequestError(
        f"override {field.name!r} is not a servable config field "
        f"(only bool/int/float/str fields accept overrides)"
    )


def _config_fields() -> Dict[str, dataclasses.Field]:
    from ..experiment.fifty_year import FiftyYearConfig

    return {f.name: f for f in dataclasses.fields(FiftyYearConfig)}


#: Config fields a request may never override: identity and cadence are
#: first-class request fields, and letting an override alias them would
#: give one computation two distinct canonical forms (two cache keys).
RESERVED_OVERRIDES = frozenset({"seed", "horizon", "report_interval"})


@dataclass(frozen=True)
class ServeRequest:
    """One validated, canonical scenario-service request.

    Frozen and picklable: the same object travels from the HTTP parser
    through the single-flight table into a pool worker.  Field order is
    part of the canonical form; ``overrides`` is a sorted tuple of
    ``(field, value)`` pairs (the ScenarioTask representation).
    """

    endpoint: str  # "run" | "mc"
    scenario: str
    years: float
    report_days: float
    seed: int = 0            # run endpoint only
    runs: int = 0            # mc endpoint only
    base_seed: int = 0       # mc endpoint only
    overrides: Tuple[Tuple[str, object], ...] = ()
    faults: Optional[FaultPlan] = None
    audit: bool = False

    def to_task(self) -> ScenarioTask:
        """The existing Monte-Carlo task this request executes as."""
        return ScenarioTask(
            scenario=self.scenario,
            horizon=units.years(self.years),
            report_interval=units.days(self.report_days),
            overrides=self.overrides,
            faults=self.faults,
            audit=self.audit,
        )

    def digest(self) -> str:
        """The content digest (``sha256:…``) that keys the cache.

        Reuses the shard-artifact fingerprint machinery: the dataclass
        fields — endpoint, scenario, seeds, normalized numerics, sorted
        overrides, the fault plan's ``to_dict`` — are projected to
        canonical JSON and hashed.  Equal content ⇒ equal digest, no
        matter how the wire JSON spelled it.
        """
        return task_fingerprint(self)

    def cache_key(self) -> str:
        """The bare hex digest used as the cache/file key."""
        return self.digest().split(":", 1)[1]

    def to_payload(self) -> dict:
        """The canonical JSON payload (parse ∘ serialize is identity)."""
        payload: dict = {
            "version": REQUEST_FORMAT_VERSION,
            "scenario": self.scenario,
            "years": self.years,
            "report_days": self.report_days,
            "overrides": {name: value for name, value in self.overrides},
            "faults": None if self.faults is None else self.faults.to_dict(),
            "audit": self.audit,
        }
        if self.endpoint == "run":
            payload["seed"] = self.seed
        else:
            payload["runs"] = self.runs
            payload["base_seed"] = self.base_seed
        return payload

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators."""
        return json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        )


def parse_request(
    payload: object,
    endpoint: str,
    max_years: float = MAX_YEARS,
    max_runs: int = MAX_RUNS,
) -> ServeRequest:
    """Validate a decoded JSON body into a :class:`ServeRequest`.

    Raises :class:`RequestError` (→ HTTP 400) with a field-level message
    on anything malformed: unknown fields, wrong types, out-of-range
    values, unknown scenarios, bad fault plans, reserved overrides.
    """
    if endpoint not in ("run", "mc"):
        raise RequestError(f"unknown endpoint {endpoint!r}")
    if not isinstance(payload, dict):
        raise RequestError(
            f"request body must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    defaults = RUN_DEFAULTS if endpoint == "run" else MC_DEFAULTS
    known = {"version", "scenario", "years", "report_days", "overrides",
             "faults", "audit", *defaults}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise RequestError(
            f"unknown field(s) {unknown} for /v1/{endpoint} "
            f"(accepted: {sorted(known)})"
        )

    version = payload.get("version", REQUEST_FORMAT_VERSION)
    if version != REQUEST_FORMAT_VERSION:
        raise RequestError(
            f"unsupported request version {version!r} "
            f"(this build serves version {REQUEST_FORMAT_VERSION})"
        )

    from ..experiment.scenarios import SCENARIOS

    scenario = payload.get("scenario")
    if not isinstance(scenario, str) or scenario not in SCENARIOS:
        raise RequestError(
            f"unknown scenario {scenario!r}; options: {sorted(SCENARIOS)}"
        )

    years = _as_float("years", payload.get("years", defaults["years"]))
    if not 0.0 < years <= max_years:
        raise RequestError(
            f"years must be in (0, {max_years:g}], got {years!r}"
        )
    report_days = _as_float(
        "report_days", payload.get("report_days", defaults["report_days"])
    )
    if not 0.0 < report_days <= years * 366.0:
        raise RequestError(
            f"report_days must be in (0, horizon], got {report_days!r}"
        )

    raw_overrides = payload.get("overrides", {})
    if not isinstance(raw_overrides, dict):
        raise RequestError("overrides must be a JSON object of field: value")
    fields = _config_fields()
    pairs = []
    for name in sorted(raw_overrides):
        if name in RESERVED_OVERRIDES:
            raise RequestError(
                f"override {name!r} is reserved; use the request's "
                f"first-class fields instead"
            )
        field = fields.get(name)
        if field is None:
            raise RequestError(
                f"unknown override field {name!r} "
                f"(not a FiftyYearConfig field)"
            )
        pairs.append((name, _normalize_override(field, raw_overrides[name])))

    raw_faults = payload.get("faults")
    plan: Optional[FaultPlan] = None
    if raw_faults is not None:
        try:
            plan = FaultPlan.from_dict(raw_faults)
        except FaultPlanError as exc:
            raise RequestError(f"bad fault plan: {exc}") from exc

    audit = _as_bool("audit", payload.get("audit", False))

    if endpoint == "run":
        seed = _as_int("seed", payload.get("seed", defaults["seed"]))
        return ServeRequest(
            endpoint="run",
            scenario=scenario,
            years=years,
            report_days=report_days,
            seed=seed,
            overrides=tuple(pairs),
            faults=plan,
            audit=audit,
        )
    runs = _as_int("runs", payload.get("runs", defaults["runs"]))
    if not 1 <= runs <= max_runs:
        raise RequestError(f"runs must be in [1, {max_runs}], got {runs}")
    base_seed = _as_int(
        "base_seed", payload.get("base_seed", defaults["base_seed"])
    )
    return ServeRequest(
        endpoint="mc",
        scenario=scenario,
        years=years,
        report_days=report_days,
        runs=runs,
        base_seed=base_seed,
        overrides=tuple(pairs),
        faults=plan,
        audit=audit,
    )


def parse_request_json(body: bytes, endpoint: str, **limits) -> ServeRequest:
    """Decode raw body bytes and validate (→ HTTP 400 on any failure)."""
    try:
        payload = json.loads(body or b"{}")
    except json.JSONDecodeError as exc:
        raise RequestError(f"invalid JSON body: {exc}") from None
    return parse_request(payload, endpoint, **limits)


__all__ = [
    "MAX_RUNS",
    "MAX_YEARS",
    "MC_DEFAULTS",
    "REQUEST_FORMAT_VERSION",
    "RUN_DEFAULTS",
    "RequestError",
    "ServeRequest",
    "parse_request",
    "parse_request_json",
]
