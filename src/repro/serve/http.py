"""A dependency-free asyncio HTTP/1.1 front end for the scenario service.

The paper's experiment is judged as a *public data endpoint* with a
weekly-uptime metric; this module is our reproduction's front door.  It
is deliberately a minimal, bounded HTTP/1.1 implementation over
``asyncio.start_server`` — no framework, no thread-per-connection, no
dependency the container would have to bake in:

* ``POST /v1/run`` — one scenario run (canonical JSON request).
* ``POST /v1/mc``  — a Monte-Carlo study.
* ``GET /metrics`` — Prometheus exposition via :mod:`repro.obs`.
* ``GET /healthz`` — liveness (503 while draining).

Connections are keep-alive (the load harness sustains thousands of
cache-hit requests per second over a handful of sockets); request
heads and bodies are size-bounded; parse errors answer 400 and close.
``SIGTERM``/``SIGINT`` trigger a graceful drain: stop accepting, finish
every in-flight run, then exit — the behavior that turns a deploy into
a non-event instead of a weekly-uptime incident.

Cache provenance travels in headers (``X-Cache: hit|miss|coalesced``,
``X-Request-Digest: sha256:…``) so the body stays exactly the canonical
artifact bytes — the byte-identity contract with offline ``--metrics``
files would not survive an envelope.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Dict, Optional, Tuple

from .request import RequestError, parse_request_json
from .service import ScenarioService, ServeResponse, _error_body

#: Bounds on what one request may send; beyond them: 400/413 and close.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    """Protocol-level failure: answer and close the connection."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def _read_head(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str]]]:
    """Read one request head; None on clean EOF between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal keep-alive end
        raise _BadRequest(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _BadRequest(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _BadRequest(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


async def _read_body(
    reader: asyncio.StreamReader, headers: Dict[str, str]
) -> bytes:
    if "transfer-encoding" in headers:
        raise _BadRequest(400, "chunked bodies are not supported")
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise _BadRequest(400, f"bad Content-Length {raw!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest(413, f"body of {length} bytes exceeds the limit")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise _BadRequest(400, "truncated request body") from None


def _render(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


class HttpServer:
    """The asyncio front end binding a :class:`ScenarioService`."""

    def __init__(
        self,
        service: ScenarioService,
        host: str = "127.0.0.1",
        port: int = 8351,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        # Created lazily inside the running loop: on 3.9 an Event built
        # outside asyncio.run() binds to the wrong loop.
        self._stopping: Optional[asyncio.Event] = None
        self._stop_requested = False

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (``port=0`` picks a free port)."""
        self._server = await asyncio.start_server(
            self._on_client,
            self.host,
            self.port,
            limit=MAX_HEADER_BYTES + MAX_BODY_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Signal-safe shutdown trigger (SIGTERM/SIGINT handler)."""
        self._stop_requested = True
        if self._stopping is not None:
            self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`request_stop`, then drain gracefully."""
        if self._server is None:
            await self.start()
        self._stopping = asyncio.Event()
        if self._stop_requested:
            self._stopping.set()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal support: stop via method
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful drain: no new connections, finish in-flight runs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()
        self.service.close()

    # -- connection handling -------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await _read_head(reader)
                except _BadRequest as exc:
                    writer.write(
                        _render(
                            exc.status,
                            _error_body(exc.status, str(exc)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if head is None:
                    break
                method, target, headers = head
                try:
                    body = await _read_body(reader, headers)
                except _BadRequest as exc:
                    writer.write(
                        _render(
                            exc.status,
                            _error_body(exc.status, str(exc)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                payload = await self._dispatch(method, target, body)
                writer.write(payload)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, method: str, target: str, body: bytes) -> bytes:
        target = target.split("?", 1)[0]
        if target == "/healthz":
            if method != "GET":
                return _render(405, _error_body(405, "use GET"))
            if self.service.draining:
                return _render(
                    503, b"draining\n", content_type="text/plain"
                )
            return _render(200, b"ok\n", content_type="text/plain")
        if target == "/metrics":
            if method != "GET":
                return _render(405, _error_body(405, "use GET"))
            return _render(
                200,
                self.service.metrics_text().encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if target in ("/v1/run", "/v1/mc"):
            if method != "POST":
                return _render(405, _error_body(405, "use POST"))
            endpoint = target.rsplit("/", 1)[1]
            try:
                request = parse_request_json(body, endpoint)
            except RequestError as exc:
                return _render(400, _error_body(400, str(exc)))
            response = await self.service.handle(request)
            return self._render_service(response)
        return _render(404, _error_body(404, f"no route for {target!r}"))

    @staticmethod
    def _render_service(response: ServeResponse) -> bytes:
        extra = []
        if response.cache:
            extra.append(("X-Cache", response.cache))
        if response.digest:
            extra.append(("X-Request-Digest", response.digest))
        return _render(
            response.status,
            response.body,
            content_type=response.content_type,
            extra=tuple(extra),
        )


async def serve_forever(
    service: ScenarioService, host: str, port: int
) -> HttpServer:
    """CLI entry: start, announce, and serve until SIGTERM/SIGINT."""
    server = HttpServer(service, host=host, port=port)
    await server.start()
    print(
        f"repro serve: listening on http://{server.host}:{server.port} "
        f"({service.workers} worker(s), queue limit "
        f"{service.queue_limit}, timeout {service.timeout_s:g} s)",
        flush=True,
    )
    await server.serve_until_stopped()
    print("repro serve: drained, bye", flush=True)
    return server


__all__ = [
    "HttpServer",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "serve_forever",
]
