"""The scenario service: single-flight execution over a bounded pool.

:class:`ScenarioService` is the transport-independent core of
``repro.serve`` — the HTTP layer (:mod:`repro.serve.http`) is a thin
codec around :meth:`ScenarioService.handle`.  Responsibilities:

* **Exact memoization** — responses are cached under the request's
  content digest (:meth:`~repro.serve.request.ServeRequest.digest`).
  Determinism makes the cache perfect: a hit never touches the worker
  pool and is byte-identical to what a cold run would produce.
* **Single-flight** — N concurrent identical requests trigger exactly
  one execution; late arrivals await the first one's future.  The
  thundering-herd behavior a public endpoint needs on the morning a
  dataset goes viral.
* **Backpressure** — at most ``queue_limit`` executions may be queued
  or running; beyond that a *new* computation is refused with 429
  (cache hits and coalesced waits are always served).
* **Timeouts** — a waiter that exceeds ``timeout_s`` gets a clean 504.
  The underlying run keeps going and may still populate the cache;
  only *successful, complete* bodies are ever inserted, so a timeout
  can never poison the cache.
* **Graceful drain** — :meth:`drain` stops new work, waits for
  in-flight runs, and leaves every accepted request answered.

Response bodies are computed by :func:`compute_response`, a picklable
module-level function: ``/v1/run`` bodies are exactly the canonical
metrics JSONL that ``python -m repro run --metrics`` writes offline,
and ``/v1/mc`` bodies are exactly the ``mc --metrics`` file — the
byte-identity the acceptance tests assert.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..obs import MetricsRegistry, snapshot_json, to_prometheus
from ..runtime.queue import resolve_workers
from ..runtime.runner import (
    MonteCarloRunner,
    _execute,
    study_metrics_entries,
)
from .cache import ResponseCache
from .request import ServeRequest

#: Latency histogram edges (seconds): sub-ms cache hits up to
#: multi-minute Monte-Carlo studies, fixed at registration.
LATENCY_EDGES = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def run_response_body(request: ServeRequest) -> bytes:
    """The ``/v1/run`` response: one canonical metrics JSONL line.

    Byte-identical to the file ``python -m repro run <scenario> --seed S
    --metrics PATH`` writes for the same parameters — same meta keys,
    same canonical serialization, same trailing newline.
    """
    result = _execute(request.to_task(), 0, request.seed)
    line = snapshot_json(
        result.metrics, scenario=request.scenario, seed=request.seed
    )
    return (line + "\n").encode("utf-8")


def mc_response_body(request: ServeRequest, workers: int = 1) -> bytes:
    """The ``/v1/mc`` response: the study's canonical metrics JSONL.

    One line per run plus the merged line (failure count included) —
    byte-identical to ``python -m repro mc … --metrics PATH`` at any
    worker count, because snapshots merge order-independently.
    """
    study = MonteCarloRunner(
        request.to_task(),
        runs=request.runs,
        base_seed=request.base_seed,
        workers=workers,
    ).run()
    per_run, merged = study_metrics_entries(study)
    pieces = [
        snapshot_json(snapshot, **meta) + "\n"
        for meta, snapshot in (*per_run, merged)
    ]
    return "".join(pieces).encode("utf-8")


def compute_response(request: ServeRequest) -> bytes:
    """Compute one request's full response body (picklable; runs in a
    pool worker).  MC studies execute serially *inside* their worker —
    the service's pool is the only fan-out, so concurrency stays
    bounded by ``workers`` no matter the request mix."""
    if request.endpoint == "run":
        return run_response_body(request)
    return mc_response_body(request, workers=1)


@dataclass(frozen=True)
class ServeResponse:
    """One answered request: HTTP status, body, and cache provenance."""

    status: int
    body: bytes
    #: "hit" | "miss" | "coalesced" | "" (non-cacheable outcomes).
    cache: str = ""
    digest: str = ""
    content_type: str = "application/json"

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def _error_body(status: int, message: str) -> bytes:
    return (
        json.dumps(
            {"error": message, "status": status},
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    ).encode("utf-8")


class ScenarioService:
    """Deterministic scenario results over a bounded worker pool."""

    def __init__(
        self,
        workers: int = 0,
        queue_limit: Optional[int] = None,
        timeout_s: float = 300.0,
        cache: Optional[ResponseCache] = None,
        compute: Callable[[ServeRequest], bytes] = compute_response,
        executor: Optional[Executor] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        #: Beyond this many queued-or-running executions, new
        #: computations are refused with 429.  Cache hits never count.
        self.queue_limit = (
            4 * self.workers if queue_limit is None else int(queue_limit)
        )
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.timeout_s = float(timeout_s)
        self.cache = cache if cache is not None else ResponseCache()
        self._compute = compute
        self._executor = executor
        self._owns_executor = executor is None
        self._inflight: Dict[str, "asyncio.Task[bytes]"] = {}
        self._jobs = 0
        self._draining = False

        registry = MetricsRegistry()
        self.registry = registry
        self._hits = registry.counter("serve_cache_hits_total")
        self._misses = registry.counter("serve_cache_misses_total")
        self._coalesced = registry.counter("serve_coalesced_total")
        self._executions = registry.counter("serve_executions_total")
        self._failures = registry.counter("serve_compute_failures_total")
        registry.gauge_fn("serve_queue_depth", lambda: self._jobs, agg="max")
        self._latency = registry.histogram(
            "serve_request_latency_seconds", edges=LATENCY_EDGES
        )

    # -- lifecycle ------------------------------------------------------
    def _ensure_executor(self) -> Executor:
        """The worker pool, created on first use and after breakage.

        Prefers processes (a scenario run is CPU-bound Python); falls
        back to threads on platforms that cannot host a process pool —
        same responses, just slower, mirroring the runner's fallback.
        """
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ImportError, NotImplementedError):
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    async def _run_in_pool(self, request: ServeRequest) -> bytes:
        """Dispatch a computation, recovering the pool once if needed.

        A broken process pool (dead worker) or a platform that refuses
        one at first submit degrades to a fresh pool / thread executor
        for the retry; the request fails only if the retry does.
        """
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._ensure_executor(), self._compute, request
            )
        except BrokenProcessPool:
            if self._owns_executor:
                self._executor.shutdown(wait=False)
                self._executor = None
            return await loop.run_in_executor(
                self._ensure_executor(), self._compute, request
            )
        except (OSError, PermissionError, NotImplementedError):
            if not self._owns_executor:
                raise
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
            return await loop.run_in_executor(
                self._executor, self._compute, request
            )

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight_jobs(self) -> int:
        return self._jobs

    async def drain(self) -> None:
        """Refuse new executions, then wait for in-flight ones.

        Every request already accepted is answered; ``healthz`` flips
        to 503 so load balancers stop routing here.  Idempotent.
        """
        self._draining = True
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight.values()), return_exceptions=True
            )
            # Let completion callbacks run before re-checking.
            await asyncio.sleep(0)

    def close(self) -> None:
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- metrics --------------------------------------------------------
    def metrics_text(self) -> str:
        """The Prometheus exposition body for ``GET /metrics``."""
        stats = self.cache.stats
        registry = self.registry
        registry.gauge("serve_cache_memory_bytes", agg="max").set(
            self.cache.memory_bytes
        )
        registry.gauge("serve_cache_disk_bytes", agg="max").set(
            self.cache.disk_bytes
        )
        registry.gauge("serve_cache_entries", agg="max").set(len(self.cache))
        for tier, hits, evictions in (
            ("memory", stats.memory_hits, stats.memory_evictions),
            ("disk", stats.disk_hits, stats.disk_evictions),
        ):
            registry.gauge(
                "serve_cache_tier_hits", agg="sum", tier=tier
            ).set(hits)
            registry.gauge(
                "serve_cache_tier_evictions", agg="sum", tier=tier
            ).set(evictions)
        registry.gauge("serve_cache_verify_failures", agg="sum").set(
            stats.verify_failures
        )
        return to_prometheus(registry.snapshot())

    # -- the request path ----------------------------------------------
    async def handle(self, request: ServeRequest) -> ServeResponse:
        """Answer one validated request; never raises."""
        started = time.perf_counter()
        response = await self._handle(request)
        self._latency.observe(time.perf_counter() - started)
        self.registry.counter(
            "serve_requests_total",
            endpoint=request.endpoint,
            status=str(response.status),
        ).inc()
        return response

    async def _handle(self, request: ServeRequest) -> ServeResponse:
        digest = request.digest()
        key = digest.split(":", 1)[1]

        body = self.cache.get(key)
        if body is not None:
            self._hits.inc()
            return ServeResponse(200, body, cache="hit", digest=digest)
        self._misses.inc()

        shared = self._inflight.get(key)
        if shared is not None:
            # Single-flight: ride the execution already in progress.
            self._coalesced.inc()
            return await self._await_job(shared, digest, cache="coalesced")

        if self._draining:
            return ServeResponse(
                503,
                _error_body(503, "service is draining"),
                digest=digest,
            )
        if self._jobs >= self.queue_limit:
            return ServeResponse(
                429,
                _error_body(
                    429,
                    f"execution queue is full "
                    f"({self._jobs} of {self.queue_limit} slots in use); "
                    f"retry later",
                ),
                digest=digest,
            )

        loop = asyncio.get_running_loop()
        self._jobs += 1
        job: "asyncio.Task[bytes]" = loop.create_task(
            self._execute_job(request, key)
        )
        self._inflight[key] = job
        job.add_done_callback(lambda fut: self._finish_job(key, fut))
        return await self._await_job(job, digest, cache="miss")

    async def _execute_job(self, request: ServeRequest, key: str) -> bytes:
        self._executions.inc()
        body = await self._run_in_pool(request)
        # Only a complete, successful body is ever cached — waiter
        # timeouts and compute failures cannot poison future hits.
        self.cache.put(key, body)
        return body

    def _finish_job(self, key: str, fut: "asyncio.Task[bytes]") -> None:
        self._inflight.pop(key, None)
        self._jobs -= 1
        # Every waiter may have timed out before the job failed; retrieve
        # the exception so the loop never logs an unconsumed one.
        if not fut.cancelled() and fut.exception() is not None:
            self._failures.inc()

    async def _await_job(
        self,
        job: "asyncio.Task[bytes]",
        digest: str,
        cache: str,
    ) -> ServeResponse:
        try:
            body = await asyncio.wait_for(
                asyncio.shield(job), timeout=self.timeout_s
            )
        except asyncio.TimeoutError:
            # The run continues in the background (it may still finish
            # and warm the cache); this waiter gets a clean 504 now.
            return ServeResponse(
                504,
                _error_body(
                    504,
                    f"run exceeded the {self.timeout_s:g} s request "
                    f"timeout; it continues in the background — retry "
                    f"to pick up the cached result",
                ),
                digest=digest,
            )
        except Exception as exc:
            return ServeResponse(
                500,
                _error_body(500, f"{type(exc).__name__}: {exc}"),
                digest=digest,
            )
        return ServeResponse(200, body, cache=cache, digest=digest)


__all__ = [
    "LATENCY_EDGES",
    "ScenarioService",
    "ServeResponse",
    "compute_response",
    "mc_response_body",
    "run_response_body",
]
