"""repro.serve — scenario-as-a-service with a perfect content-keyed cache.

The paper's century-scale experiment is ultimately a public data
endpoint judged by weekly uptime (§4.5); ROADMAP item 4 asks for the
reproduction's analogue.  This package serves scenario runs and
Monte-Carlo studies over HTTP, exploiting the platform's one structural
advantage over a generic inference stack: **determinism**.  A request's
content — scenario, seed(s), horizon, cadence, overrides, fault plan,
audit flag — fully determines the response bytes, so memoization is
*exact*: a cache hit is provably byte-identical to a cold run, and both
are byte-identical to the offline ``--metrics`` artifacts.

Four modules:

* :mod:`repro.serve.request` — canonical request model; content digest
  via the shard-artifact ``task_fingerprint`` machinery.
* :mod:`repro.serve.cache`   — memory-LRU + sealed-disk response cache.
* :mod:`repro.serve.service` — single-flight execution on a bounded
  process pool, 429 backpressure, per-request timeouts, graceful drain,
  Prometheus metrics via :mod:`repro.obs`.
* :mod:`repro.serve.http`    — stdlib asyncio HTTP/1.1 front end
  (``POST /v1/run``, ``POST /v1/mc``, ``GET /metrics``,
  ``GET /healthz``).

Run it::

    python -m repro serve --port 8351 --workers 4
    curl -s -XPOST localhost:8351/v1/run \\
         -d '{"scenario":"owned-only","seed":2021,"years":1}'
"""

from .cache import CacheStats, ResponseCache
from .http import HttpServer, serve_forever
from .request import (
    REQUEST_FORMAT_VERSION,
    RequestError,
    ServeRequest,
    parse_request,
    parse_request_json,
)
from .service import (
    ScenarioService,
    ServeResponse,
    compute_response,
    mc_response_body,
    run_response_body,
)

__all__ = [
    "CacheStats",
    "HttpServer",
    "REQUEST_FORMAT_VERSION",
    "RequestError",
    "ResponseCache",
    "ScenarioService",
    "ServeRequest",
    "ServeResponse",
    "compute_response",
    "mc_response_body",
    "parse_request",
    "parse_request_json",
    "run_response_body",
    "serve_forever",
]
