"""Content-addressed response cache: memory LRU over sealed disk files.

Determinism makes this cache *perfect*: the request digest fully
determines the response bytes, so an entry can never be stale — the
only reasons to evict are capacity.  Two tiers:

* **Memory** — an ``OrderedDict`` LRU bounded by total body bytes.
  A hit is a dict probe plus a move-to-end; this is the tier that
  serves thousands of requests per second.
* **Disk** — one sealed file per digest (``<hex>.rsp``), also
  LRU+size-bounded.  Sealed means self-verifying, like the shard
  artifacts: a header line carries the body's SHA-256 and byte count,
  and a read that fails verification deletes the file and reports a
  miss — truncation or bit rot can only cost a recomputation, never a
  wrong response.

Writes are atomic (temp file + ``os.replace``), so a crashed service
never leaves a half-written entry where the next boot would find it.
The disk tier is optional (``disk_dir=None`` keeps the cache purely in
memory, the test default).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

#: Disk entry format version (read == written, like the .mcr artifacts).
CACHE_FORMAT_VERSION = 1

#: Suffix for sealed response files.
CACHE_SUFFIX = ".rsp"


def body_sha256(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()


@dataclass
class CacheStats:
    """Per-tier accounting, surfaced at ``GET /metrics``."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    insertions: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    verify_failures: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class ResponseCache:
    """LRU + size-bounded two-tier cache keyed by request digest."""

    def __init__(
        self,
        max_memory_bytes: int = 64 * 1024 * 1024,
        disk_dir: Optional[str] = None,
        max_disk_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        if max_memory_bytes < 0 or max_disk_bytes < 0:
            raise ValueError("cache size bounds must be >= 0")
        self.max_memory_bytes = int(max_memory_bytes)
        self.max_disk_bytes = int(max_disk_bytes)
        self.disk_dir = str(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._memory_bytes = 0
        #: digest -> on-disk file size (header + body), LRU order.
        self._disk: "OrderedDict[str, int]" = OrderedDict()
        self._disk_bytes = 0
        if self.disk_dir is not None:
            os.makedirs(self.disk_dir, exist_ok=True)
            self._index_disk()

    # -- sizing ---------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        return self._memory_bytes

    @property
    def disk_bytes(self) -> int:
        return self._disk_bytes

    def __len__(self) -> int:
        return len(self._memory)

    # -- lookup ---------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The response bytes for ``key``, or None (a true miss).

        Memory first; on a disk hit the entry is verified against its
        seal and promoted back into the memory tier.
        """
        body = self._memory.get(key)
        if body is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return body
        if self.disk_dir is not None and key in self._disk:
            body = self._read_sealed(key)
            if body is not None:
                self._disk.move_to_end(key)
                self.stats.disk_hits += 1
                self._put_memory(key, body)
                return body
        self.stats.misses += 1
        return None

    def put(self, key: str, body: bytes) -> None:
        """Insert a computed response under its digest (idempotent)."""
        if not isinstance(body, bytes):
            raise TypeError(
                f"cache stores response bytes, got {type(body).__name__}"
            )
        self.stats.insertions += 1
        self._put_memory(key, body)
        if self.disk_dir is not None:
            self._put_disk(key, body)

    # -- memory tier ----------------------------------------------------
    def _put_memory(self, key: str, body: bytes) -> None:
        if len(body) > self.max_memory_bytes:
            return  # larger than the whole tier: disk-only entry
        previous = self._memory.pop(key, None)
        if previous is not None:
            self._memory_bytes -= len(previous)
        self._memory[key] = body
        self._memory_bytes += len(body)
        while self._memory_bytes > self.max_memory_bytes and self._memory:
            _evicted, old = self._memory.popitem(last=False)
            self._memory_bytes -= len(old)
            self.stats.memory_evictions += 1

    # -- disk tier ------------------------------------------------------
    def _path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, key + CACHE_SUFFIX)

    def _index_disk(self) -> None:
        """Adopt entries left by a previous process.

        Files are indexed in name order (deterministic given a
        directory's contents); verification happens lazily at read
        time, so boot cost is one ``listdir``, not a full re-hash.
        """
        assert self.disk_dir is not None
        for name in sorted(os.listdir(self.disk_dir)):
            if not name.endswith(CACHE_SUFFIX):
                continue
            path = os.path.join(self.disk_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            self._disk[name[: -len(CACHE_SUFFIX)]] = size
            self._disk_bytes += size

    def _put_disk(self, key: str, body: bytes) -> None:
        header = json.dumps(
            {
                "kind": "serve-cache",
                "version": CACHE_FORMAT_VERSION,
                "key": key,
                "body_sha256": body_sha256(body),
                "body_bytes": len(body),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8") + b"\n"
        total = len(header) + len(body)
        if total > self.max_disk_bytes:
            return
        path = self._path(key)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(body)
        os.replace(tmp, path)
        previous = self._disk.pop(key, None)
        if previous is not None:
            self._disk_bytes -= previous
        self._disk[key] = total
        self._disk_bytes += total
        while self._disk_bytes > self.max_disk_bytes and self._disk:
            evicted, size = self._disk.popitem(last=False)
            self._disk_bytes -= size
            self.stats.disk_evictions += 1
            try:
                os.remove(self._path(evicted))
            except OSError:
                pass

    def _read_sealed(self, key: str) -> Optional[bytes]:
        """Read and verify one sealed file; purge it on any defect."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                header_line = handle.readline()
                body = handle.read()
            header = json.loads(header_line)
            ok = (
                header.get("kind") == "serve-cache"
                and header.get("version") == CACHE_FORMAT_VERSION
                and header.get("key") == key
                and header.get("body_bytes") == len(body)
                and header.get("body_sha256") == body_sha256(body)
            )
        except (OSError, ValueError):
            ok = False
            body = None
        if not ok:
            self.stats.verify_failures += 1
            size = self._disk.pop(key, None)
            if size is not None:
                self._disk_bytes -= size
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        return body


__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_SUFFIX",
    "CacheStats",
    "ResponseCache",
    "body_sha256",
]
