"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic future-event-list design: callbacks scheduled at
absolute simulation times, executed in (time, priority, sequence) order.
Sequence numbers break ties deterministically, which matters for
reproducibility when many events share a timestamp (e.g. a fleet
deployed at t=0).

Hot-path layout (PR 3): the heap holds ``(time, priority, sequence,
event)`` tuples, so every sift comparison is a C-level tuple compare
that never reaches the :class:`Event` object — the unique sequence
number settles any tie before the fourth element is looked at.  The
``Event`` itself is a ``__slots__`` class (no dataclass machinery, no
per-instance ``__dict__``).  Cancelled events are lazily deleted on pop,
with threshold compaction so a 50-year horizon of
``PeriodicTask.stop()``/device-death cancellations cannot accumulate as
dead heap weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

EventCallback = Callable[[], None]

#: Compact the heap once at least this many cancelled entries linger
#: *and* they outnumber the live ones (see ``EventQueue._discard_live``).
#: The floor keeps small queues from compacting on every cancel; the
#: ratio bounds wasted heap memory and sift depth to a constant factor.
COMPACTION_MIN_DEAD = 64


class Event:
    """A scheduled callback in the future event list.

    Events execute in ``(time, priority, sequence)`` order.  Lower
    priority values run first among same-time events.  Ordering lives in
    the queue's heap entries, not on the event (no ``__lt__`` here — the
    object is never compared during heap sifts).  Cancelled events stay
    in the heap but are skipped on pop (lazy deletion).  ``popped``
    records that the owning queue already handed the event out, so a
    late cancel cannot corrupt the queue's live-event accounting.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "label",
        "cancelled",
        "popped",
        "_queue",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: EventCallback,
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.popped = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark this event so the engine skips it when popped.

        Idempotent, and safe after the event has already executed: the
        owning queue's live count is adjusted exactly once, and only if
        the event was still pending.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        self._queue = None
        if queue is not None and not self.popped:
            queue._discard_live()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, label={self.label!r}, {state})"


#: One heap entry: the three ordering keys, then the payload object the
#: keys were copied from.  The unique sequence guarantees the tuple
#: compare never falls through to the Event.
HeapEntry = Tuple[float, int, int, Event]


class EventQueue:
    """A future event list with deterministic tie-breaking.

    >>> q = EventQueue()
    >>> order = []
    >>> _ = q.push(2.0, lambda: order.append("b"))
    >>> _ = q.push(1.0, lambda: order.append("a"))
    >>> while not q.empty():
    ...     q.pop().callback()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._heap: List[HeapEntry] = []
        self._next_sequence = 0
        self._live = 0
        self._dead = 0  # cancelled entries still occupying the heap
        self._peak = 0
        #: Heap rebuilds triggered by cancelled-entry pressure.  A plain
        #: int (not a registry instrument) because the queue must stay
        #: usable standalone; the owning Simulation exposes it through
        #: its metrics registry as a lazy gauge.
        self.compactions = 0
        #: Live events cancelled out from under the queue (cancel churn).
        self.cancels = 0

    def push(
        self,
        time: float,
        callback: EventCallback,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its Event."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(time, priority, sequence, callback, label)
        event._queue = self
        heappush(self._heap, (time, priority, sequence, event))
        self._live += 1
        if self._live > self._peak:
            self._peak = self._live
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises ``IndexError`` if the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heappop(heap)[3]
            if event.cancelled:
                self._dead -= 1
                continue
            event.popped = True
            event._queue = None
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def pop_until(self, end_time: float) -> Optional[Event]:
        """Pop the earliest live event at or before ``end_time``.

        Returns None once the next live event lies beyond ``end_time``
        (the event is re-queued untouched and stays pending) or the
        queue is empty.  This fuses the engine's old peek-then-pop pair
        into one heap traversal per executed event.
        """
        heap = self._heap
        while heap:
            entry = heappop(heap)
            event = entry[3]
            if event.cancelled:
                self._dead -= 1
                continue
            if entry[0] > end_time:
                # Not due yet: put the entry straight back.  Same keys,
                # same event — pending state and accounting untouched.
                heappush(heap, entry)  # simlint: ignore[SL007]
                return None
            event.popped = True
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest live event, or None if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel ``event``; popping will silently skip it.

        Equivalent to ``event.cancel()`` — both paths share the same
        accounting, so cancelling twice, or cancelling an event that was
        already popped and executed, leaves ``len(queue)`` untouched.
        """
        event.cancel()

    def empty(self) -> bool:
        """True if no live events remain.

        O(1): an entry is live iff it is in the heap and not cancelled,
        which is exactly what ``_live`` counts — no peek needed.
        """
        return self._live == 0

    def __len__(self) -> int:
        return self._live

    @property
    def peak_live(self) -> int:
        """High-water mark of simultaneously pending live events."""
        return self._peak

    @property
    def dead_entries(self) -> int:
        """Cancelled entries currently occupying heap slots (observability)."""
        return self._dead

    def clear(self) -> None:
        """Drop all events.  The peak high-water mark is preserved."""
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live = 0
        self._dead = 0

    def _discard_live(self) -> None:
        """Internal: a pending event was cancelled out from under us.

        Converts one live entry into dead heap weight; once the dead
        outnumber the live (past a small floor) the heap is rebuilt
        without them, so cancel-heavy workloads stay O(live) instead of
        accreting every cancellation ever made.
        """
        self._live -= 1
        self._dead += 1
        self.cancels += 1
        if self._dead >= COMPACTION_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapify(self._heap)
        self._dead = 0
        self.compactions += 1


@dataclass
class TraceRecord:
    """One executed event, as recorded by an engine trace."""

    time: float
    label: str
    detail: Any = None
