"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic future-event-list design: callbacks scheduled at
absolute simulation times, executed in (time, priority, sequence) order.
Sequence numbers break ties deterministically, which matters for
reproducibility when many events share a timestamp (e.g. a fleet
deployed at t=0).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

EventCallback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback in the future event list.

    Events sort by ``(time, priority, sequence)``.  Lower priority values
    run first among same-time events.  Cancelled events stay in the heap
    but are skipped on pop (lazy deletion).  ``popped`` records that the
    owning queue already handed the event out, so a late cancel cannot
    corrupt the queue's live-event accounting.
    """

    time: float
    priority: int
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    popped: bool = field(compare=False, default=False)
    _queue: Optional["EventQueue"] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark this event so the engine skips it when popped.

        Idempotent, and safe after the event has already executed: the
        owning queue's live count is adjusted exactly once, and only if
        the event was still pending.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        self._queue = None
        if queue is not None and not self.popped:
            queue._discard_live()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, label={self.label!r}, {state})"


class EventQueue:
    """A future event list with deterministic tie-breaking.

    >>> q = EventQueue()
    >>> order = []
    >>> _ = q.push(2.0, lambda: order.append("b"))
    >>> _ = q.push(1.0, lambda: order.append("a"))
    >>> while not q.empty():
    ...     q.pop().callback()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._peak = 0

    def push(
        self,
        time: float,
        callback: EventCallback,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its Event."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        if self._live > self._peak:
            self._peak = self._live
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises ``IndexError`` if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.popped = True
            event._queue = None
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel ``event``; popping will silently skip it.

        Equivalent to ``event.cancel()`` — both paths share the same
        accounting, so cancelling twice, or cancelling an event that was
        already popped and executed, leaves ``len(queue)`` untouched.
        """
        event.cancel()

    def empty(self) -> bool:
        """True if no live events remain."""
        return self.peek_time() is None

    def __len__(self) -> int:
        return self._live

    @property
    def peak_live(self) -> int:
        """High-water mark of simultaneously pending live events."""
        return self._peak

    def clear(self) -> None:
        """Drop all events.  The peak high-water mark is preserved."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live = 0

    def _discard_live(self) -> None:
        """Internal: a pending event was cancelled out from under us."""
        self._live -= 1


@dataclass
class TraceRecord:
    """One executed event, as recorded by an engine trace."""

    time: float
    label: str
    detail: Any = None
