"""Simulation entities: anything with an identity and a service life.

``Entity`` is the common base for devices, gateways, backhauls, and the
cloud endpoint.  It tracks deployment/failure/retirement times so that
lifetime analysis is uniform across the hierarchy, and it carries the
dependency links used by :mod:`repro.core.hierarchy`.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional

from .engine import Simulation

_ids = itertools.count(1)


def fresh_id(prefix: str) -> str:
    """Return a process-unique id like ``dev-17``.

    For ad-hoc labelling only.  Entities name themselves from their
    simulation's own counter (:meth:`Simulation.next_entity_id`), so a
    run's names are a function of the run, not of whatever else the
    process created first — a process-global counter here once made
    golden traces depend on test execution order.
    """
    return f"{prefix}-{next(_ids)}"


class EntityState(enum.Enum):
    """Lifecycle states shared by all infrastructure tiers."""

    PLANNED = "planned"
    ACTIVE = "active"
    FAILED = "failed"
    RETIRED = "retired"  # removed deliberately (obsolescence, decommission)


class Entity:
    """A named participant in the deployment hierarchy.

    Subclasses call :meth:`deploy` when entering service and
    :meth:`fail`/:meth:`retire` when leaving it.  ``depends_on`` links
    point *up* the hierarchy (device → gateway → backhaul → cloud).

    Every lifecycle transition and dependency rewiring bumps
    ``sim.topology_version``, the invalidation signal for caches derived
    from the entity graph (e.g. per-device candidate gateway lists).
    """

    TIER = "entity"  # subclasses override: device | gateway | backhaul | cloud

    def __init__(self, sim: Simulation, name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name or f"{self.TIER}-{sim.next_entity_id()}"
        self.state = EntityState.PLANNED
        self.deployed_at: Optional[float] = None
        self.ended_at: Optional[float] = None
        self.depends_on: List["Entity"] = []
        self.dependents: List["Entity"] = []
        self.tags: Dict[str, str] = {}
        #: Count of active forced service degradations (fault injection).
        #: Nonzero means the entity is alive but refuses service; see
        #: :meth:`force_degrade`.  A counter, not a flag, so overlapping
        #: degrade windows compose (each restore undoes one degrade).
        self.forced_degradations: int = 0
        sim.register_entity(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def deploy(self) -> None:
        """Enter service at the current simulation time."""
        if self.state is not EntityState.PLANNED:
            raise RuntimeError(f"{self.name} deployed from state {self.state}")
        self.state = EntityState.ACTIVE
        self.deployed_at = self.sim.now
        self.sim.topology_version += 1
        self.sim.record("deploy", self.name, tier=self.TIER)
        self.on_deploy()

    def fail(self, reason: str = "") -> None:
        """Leave service due to a fault."""
        if self.state is not EntityState.ACTIVE:
            return
        self.state = EntityState.FAILED
        self.ended_at = self.sim.now
        self.sim.topology_version += 1
        self.sim.record("fail", self.name, tier=self.TIER, reason=reason)
        self.on_end(reason)

    def retire(self, reason: str = "") -> None:
        """Leave service deliberately (upgrade, obsolescence, decommission)."""
        if self.state is not EntityState.ACTIVE:
            return
        self.state = EntityState.RETIRED
        self.ended_at = self.sim.now
        self.sim.topology_version += 1
        self.sim.record("retire", self.name, tier=self.TIER, reason=reason)
        self.on_end(reason)

    def on_deploy(self) -> None:
        """Hook for subclasses; runs after state transition to ACTIVE."""

    def on_end(self, reason: str) -> None:
        """Hook for subclasses; runs after FAILED/RETIRED transition."""

    # ------------------------------------------------------------------
    # Forced degradation (fault injection)
    # ------------------------------------------------------------------
    def force_degrade(self, reason: str = "") -> None:
        """Suspend service without killing the entity (injected fault).

        The entity stays ACTIVE — its failure clocks, renewal processes,
        and churn timers keep running — but service checks
        (:meth:`Gateway.hears`, :meth:`Backhaul.carries_traffic`,
        :meth:`CloudEndpoint.accepting`, the device duty cycle) refuse
        while any degradation is in force.  Degradations stack; each
        :meth:`restore_degrade` lifts one.
        """
        self.forced_degradations += 1
        self.sim.topology_version += 1
        self.sim.record("degrade", self.name, tier=self.TIER, reason=reason)

    def restore_degrade(self, reason: str = "") -> None:
        """Lift one forced degradation (no-op if none are in force)."""
        if self.forced_degradations <= 0:
            return
        self.forced_degradations -= 1
        self.sim.topology_version += 1
        self.sim.record("restore", self.name, tier=self.TIER, reason=reason)

    @property
    def degraded(self) -> bool:
        """True while at least one forced degradation is in force."""
        return self.forced_degradations > 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the entity itself is in service."""
        return self.state is EntityState.ACTIVE

    def service_life(self) -> Optional[float]:
        """Seconds spent in service, or None if never deployed.

        For entities still active, measures up to the current clock.
        """
        if self.deployed_at is None:
            return None
        end = self.ended_at if self.ended_at is not None else self.sim.now
        return end - self.deployed_at

    # ------------------------------------------------------------------
    # Hierarchy wiring
    # ------------------------------------------------------------------
    def add_dependency(self, upstream: "Entity") -> None:
        """Declare that this entity relies on ``upstream`` for service."""
        if upstream is self:
            raise ValueError(f"{self.name} cannot depend on itself")
        if upstream not in self.depends_on:
            self.depends_on.append(upstream)
            upstream.dependents.append(self)
            self.sim.topology_version += 1

    def remove_dependency(self, upstream: "Entity") -> None:
        """Sever a dependency link (e.g. when re-homing to a new gateway)."""
        if upstream in self.depends_on:
            self.depends_on.remove(upstream)
            upstream.dependents.remove(self)
            self.sim.topology_version += 1

    def effective_alive(self) -> bool:
        """True if this entity is in service *and* can reach the top tier.

        Implements the paper's dependency rule: "the lifetime of the
        device is limited by the lifetime and availability of its
        gateway" — an entity with upstream dependencies is effectively
        alive only if at least one upstream path is effectively alive.
        """
        if not self.alive:
            return False
        if not self.depends_on:
            return True
        return any(up.effective_alive() for up in self.depends_on)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"
