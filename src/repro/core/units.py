"""Time, energy, and data-size units used throughout centurysim.

All simulation state is kept in SI base units:

* time — seconds (``float``)
* energy — joules
* power — watts
* data — bytes

These helpers exist so that call sites read in the units the paper uses
("50 months", "one packet every one hour for 50 years") while the engine
stays unit-consistent.  A year is the Julian year (365.25 days), which is
the convention used for long-horizon service-life arithmetic.
"""

from __future__ import annotations

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0
WEEK: float = 7.0 * DAY
MONTH: float = 365.25 / 12.0 * DAY
YEAR: float = 365.25 * DAY


def seconds(value: float) -> float:
    """Identity helper; lets call sites state units explicitly."""
    return float(value)


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return float(value) * MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return float(value) * DAY


def weeks(value: float) -> float:
    """Convert weeks to seconds."""
    return float(value) * WEEK


def months(value: float) -> float:
    """Convert mean Julian months (30.4375 days) to seconds."""
    return float(value) * MONTH


def years(value: float) -> float:
    """Convert Julian years (365.25 days) to seconds."""
    return float(value) * YEAR


def as_hours(t: float) -> float:
    """Convert seconds to hours."""
    return t / HOUR


def as_days(t: float) -> float:
    """Convert seconds to days."""
    return t / DAY


def as_weeks(t: float) -> float:
    """Convert seconds to weeks."""
    return t / WEEK


def as_months(t: float) -> float:
    """Convert seconds to mean months."""
    return t / MONTH


def as_years(t: float) -> float:
    """Convert seconds to Julian years."""
    return t / YEAR


# Energy.
JOULE: float = 1.0
MILLIJOULE: float = 1e-3
MICROJOULE: float = 1e-6
WATT_HOUR: float = 3600.0


def watt_hours(value: float) -> float:
    """Convert watt-hours to joules."""
    return float(value) * WATT_HOUR


def milliamp_hours(value: float, volts: float) -> float:
    """Convert a battery capacity in mAh at ``volts`` to joules."""
    if volts <= 0.0:
        raise ValueError(f"volts must be positive, got {volts}")
    return float(value) * 1e-3 * volts * 3600.0


# Data sizes.
BYTE: int = 1
KILOBYTE: int = 1000
MEGABYTE: int = 1000 * 1000


def format_duration(t: float) -> str:
    """Render a duration in seconds as a short human-readable string.

    >>> format_duration(90.0)
    '1.5min'
    >>> format_duration(86400.0 * 730.5)
    '2.00yr'
    """
    if t < 0.0:
        return "-" + format_duration(-t)
    if t < MINUTE:
        return f"{t:.3g}s"
    if t < HOUR:
        return f"{t / MINUTE:.3g}min"
    if t < DAY:
        return f"{t / HOUR:.3g}h"
    if t < 2.0 * WEEK:
        return f"{t / DAY:.3g}d"
    if t < YEAR:
        return f"{t / WEEK:.3g}wk"
    return f"{t / YEAR:.2f}yr"
