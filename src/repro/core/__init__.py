"""Core discrete-event kernel and hierarchy/lifetime models.

The ``core`` package has no dependencies on the rest of ``repro``; every
other subsystem builds on it.
"""

from . import units
from .engine import LogRecord, PeriodicTask, Simulation, SimulationError
from .entity import Entity, EntityState, fresh_id
from .events import Event, EventQueue
from .hierarchy import Hierarchy, TierStats, wire_by_fanout
from .lifetime import (
    Cohort,
    FleetTimeline,
    LifetimeSummary,
    en_masse_fleet,
    pipelined_fleet,
    replacement_rate,
    summarize,
)
from .policy import (
    AttachmentPolicy,
    DeploymentPolicy,
    GatewayRole,
    InfrastructureOwnership,
)
from .rng import RandomStreams

__all__ = [
    "units",
    "Simulation",
    "SimulationError",
    "PeriodicTask",
    "LogRecord",
    "Entity",
    "EntityState",
    "fresh_id",
    "Event",
    "EventQueue",
    "Hierarchy",
    "TierStats",
    "wire_by_fanout",
    "Cohort",
    "FleetTimeline",
    "LifetimeSummary",
    "en_masse_fleet",
    "pipelined_fleet",
    "replacement_rate",
    "summarize",
    "AttachmentPolicy",
    "DeploymentPolicy",
    "GatewayRole",
    "InfrastructureOwnership",
    "RandomStreams",
]
