"""Aggregate system lifetime: the Ship of Theseus argument, quantified.

The paper's central claim: even if no individual device lasts multiple
decades, a municipal-scale *system* whose device cohorts are pipelined —
"some 15-year sensors are 10 years into their service life while others
are being freshly deployed" — has an aggregate lifetime reaching the
century scale.  This module gives the cohort bookkeeping and the
coverage-over-time mathematics behind that claim, independent of the
event-driven machinery (so benchmarks can sweep it cheaply).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from . import units


@dataclass(frozen=True)
class Cohort:
    """A batch of identical devices entering service together.

    ``lifetimes`` holds per-device service lives in seconds, sampled by
    the caller from whatever reliability model applies.
    """

    deployed_at: float
    lifetimes: Tuple[float, ...]

    @property
    def size(self) -> int:
        """Number of devices in the cohort."""
        return len(self.lifetimes)

    def alive_at(self, t: float) -> int:
        """How many of the cohort's devices are in service at time ``t``."""
        if t < self.deployed_at:
            return 0
        age = t - self.deployed_at
        return sum(1 for life in self.lifetimes if life > age)


@dataclass
class FleetTimeline:
    """A pipelined sequence of cohorts forming one logical system.

    The system is "up" while its live-device coverage stays at or above
    ``coverage_floor`` (a fraction of the nominal fleet size).  The
    aggregate system lifetime is the time until coverage first drops
    below the floor with no replacement cohort arriving.
    """

    nominal_size: int
    coverage_floor: float = 0.5
    cohorts: List[Cohort] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.nominal_size <= 0:
            raise ValueError(f"nominal_size must be positive, got {self.nominal_size}")
        if not 0.0 < self.coverage_floor <= 1.0:
            raise ValueError(
                f"coverage_floor must be in (0, 1], got {self.coverage_floor}"
            )

    def add_cohort(self, cohort: Cohort) -> None:
        """Append a deployment batch (cohorts may arrive out of order)."""
        self.cohorts.append(cohort)
        self.cohorts.sort(key=lambda c: c.deployed_at)

    def alive_at(self, t: float) -> int:
        """Total devices in service across all cohorts at time ``t``."""
        return sum(c.alive_at(t) for c in self.cohorts)

    def coverage_at(self, t: float) -> float:
        """Fraction of the nominal fleet in service at time ``t``."""
        return self.alive_at(t) / self.nominal_size

    def coverage_series(
        self, horizon: float, step: float = units.MONTH
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, coverage) sampled every ``step`` seconds up to ``horizon``."""
        if horizon <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        times = np.arange(0.0, horizon + step, step)
        coverage = np.array([self.coverage_at(t) for t in times])
        return times, coverage

    def system_lifetime(self, horizon: float, step: float = units.MONTH) -> float:
        """Time at which coverage first drops below the floor.

        Returns ``horizon`` if coverage held for the whole window — i.e.
        the system outlived the study, which is the paper's aspiration.
        Sampling is at ``step`` resolution; within-step dips shorter than
        ``step`` are not detected (acceptable at month resolution against
        multi-year lifetimes).
        """
        times, coverage = self.coverage_series(horizon, step)
        started = False
        for t, c in zip(times, coverage):
            if c >= self.coverage_floor:
                started = True
            elif started:
                return float(t)
        if not started:
            return 0.0
        return float(horizon)


def pipelined_fleet(
    nominal_size: int,
    lifetime_sampler: Callable[[int], np.ndarray],
    refresh_interval: float,
    horizon: float,
    batches: int = 8,
    coverage_floor: float = 0.5,
    stop_replacing_after: Optional[float] = None,
) -> FleetTimeline:
    """Build a fleet timeline of staggered geographic-batch refreshes.

    The city is divided into ``batches`` geographic batches ("one project
    repaves a block, installs its traffic sensors").  Each batch's
    devices are wholesale-refreshed every ``refresh_interval`` (the
    infrastructure project cycle), and the batches are staggered evenly
    across that interval — so at any moment some cohorts are old and
    some freshly deployed, the paper's pipelined Ship-of-Theseus
    picture.  If ``stop_replacing_after`` is set, refresh ceases at that
    time (programme abandonment) and the fleet decays naturally.

    ``lifetime_sampler(n)`` must return ``n`` sampled service lives in
    seconds.
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    if refresh_interval <= 0.0:
        raise ValueError("refresh_interval must be positive")
    timeline = FleetTimeline(nominal_size=nominal_size, coverage_floor=coverage_floor)
    batch_size = max(1, nominal_size // batches)
    stagger = refresh_interval / batches
    for batch_index in range(batches):
        t0 = batch_index * stagger
        while t0 < horizon:
            if (
                stop_replacing_after is not None
                and t0 > stop_replacing_after
                and t0 > batch_index * stagger
            ):
                break
            # A wholesale refresh retires the previous cohort's survivors,
            # so a cohort's devices serve at most one refresh interval
            # (unless the programme stops and the cohort decays naturally).
            refresh_happens = (
                stop_replacing_after is None
                or t0 + refresh_interval <= stop_replacing_after
            )
            raw = lifetime_sampler(batch_size)
            if refresh_happens:
                lives = tuple(min(float(x), refresh_interval) for x in raw)
            else:
                lives = tuple(float(x) for x in raw)
            timeline.add_cohort(Cohort(deployed_at=t0, lifetimes=lives))
            t0 += refresh_interval
    return timeline


def en_masse_fleet(
    nominal_size: int,
    lifetime_sampler: Callable[[int], np.ndarray],
    coverage_floor: float = 0.5,
) -> FleetTimeline:
    """A single-shot deployment with no replacement — the anti-pattern.

    Used as the baseline in the Ship-of-Theseus benchmark: the system
    dies when enough of the one-and-only cohort has worn out.
    """
    timeline = FleetTimeline(nominal_size=nominal_size, coverage_floor=coverage_floor)
    lives = tuple(float(x) for x in lifetime_sampler(nominal_size))
    timeline.add_cohort(Cohort(deployed_at=0.0, lifetimes=lives))
    return timeline


def replacement_rate(
    timeline: FleetTimeline, horizon: float
) -> float:
    """Mean device replacements per year over ``horizon``.

    Counts every cohort device deployed after t=0 as a replacement.
    """
    deployed_later = sum(
        c.size for c in timeline.cohorts if c.deployed_at > 0.0 and c.deployed_at <= horizon
    )
    return deployed_later / units.as_years(horizon)


@dataclass(frozen=True)
class LifetimeSummary:
    """Headline numbers comparing fleet strategies."""

    strategy: str
    system_lifetime_years: float
    mean_coverage: float
    replacements_per_year: float


def summarize(
    strategy: str, timeline: FleetTimeline, horizon: float, step: float = units.MONTH
) -> LifetimeSummary:
    """Compute the benchmark row for one fleet strategy."""
    __, coverage = timeline.coverage_series(horizon, step)
    return LifetimeSummary(
        strategy=strategy,
        system_lifetime_years=units.as_years(timeline.system_lifetime(horizon, step)),
        mean_coverage=float(np.mean(coverage)),
        replacements_per_year=replacement_rate(timeline, horizon),
    )
