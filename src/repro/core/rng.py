"""Deterministic, named random-number streams.

Long-horizon Monte-Carlo studies need reproducibility *and* stream
independence: adding a new stochastic subsystem must not perturb the draw
sequence of existing ones.  ``RandomStreams`` derives one independent
``numpy.random.Generator`` per (seed, name) pair using ``SeedSequence``
spawning keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator

import numpy as np


class RandomStreams:
    """A family of independent, reproducible random generators.

    Each named stream is seeded from the root seed combined with a CRC32
    of the stream name, so the stream a subsystem sees depends only on
    the root seed and its own name — never on which other subsystems
    exist or the order in which they were created.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("devices").random()
    >>> b = RandomStreams(seed=42).get("devices").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if not name:
            raise ValueError("stream name must be non-empty")
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, index: int) -> "RandomStreams":
        """Derive a distinct stream family, e.g. one per Monte-Carlo run.

        Forked families are decorrelated from the parent and from each
        other by mixing the fork index into the root seed.
        """
        if index < 0:
            raise ValueError(f"fork index must be non-negative, got {index}")
        mixed = zlib.crc32(f"fork:{self.seed}:{index}".encode("utf-8"))
        return RandomStreams(seed=mixed)

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"
