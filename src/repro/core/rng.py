"""Deterministic, named random-number streams.

Long-horizon Monte-Carlo studies need reproducibility *and* stream
independence: adding a new stochastic subsystem must not perturb the draw
sequence of existing ones.  ``RandomStreams`` derives one independent
``numpy.random.Generator`` per (seed, name) pair by feeding the name
bytes themselves into ``SeedSequence`` entropy, so distinct names are
provably distinct — no lossy 32-bit hashing in between.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import numpy as np


class RandomStreams:
    """A family of independent, reproducible random generators.

    Each named stream is seeded from the root seed combined with the raw
    bytes of the stream name, so the stream a subsystem sees depends only
    on the root seed and its own name — never on which other subsystems
    exist or the order in which they were created.  Because the full name
    enters the seed material (length-prefixed, not hashed to 32 bits),
    two distinct names can never alias the same generator.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("devices").random()
    >>> b = RandomStreams(seed=42).get("devices").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if not name:
            raise ValueError("stream name must be non-empty")
        generator = self._streams.get(name)
        if generator is None:
            raw = name.encode("utf-8")
            # The length word keeps names with leading NUL bytes distinct
            # from their stripped forms.
            sequence = np.random.SeedSequence(
                entropy=(self.seed, len(raw), int.from_bytes(raw, "big"))
            )
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, index: int) -> "RandomStreams":
        """Derive a distinct stream family, e.g. one per Monte-Carlo run.

        The child seed is a 128-bit SHA-256 digest of the parent seed and
        the fork index.  Because the parent seed already encodes *its*
        lineage the same way, fork-of-fork chains stay distinct: two
        different fork paths collide only with ~2**-64 probability,
        unlike a 32-bit mix.  The child is fully described by its integer
        ``seed``, so a family can be reconstructed in another process
        from that one number.
        """
        if index < 0:
            raise ValueError(f"fork index must be non-negative, got {index}")
        material = f"fork:{self.seed}:{index}".encode("utf-8")
        mixed = int.from_bytes(hashlib.sha256(material).digest()[:16], "big")
        return RandomStreams(seed=mixed)

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"
