"""The deployment hierarchy of Figure 1.

Devices rely on one or two gateways; gateways rely on one or two
backhauls; backhauls reach the cloud.  Moving *up* the hierarchy, more
devices depend on each interface; moving *down*, stable interfaces let
heterogeneous devices deploy without planning.  ``Hierarchy`` gives a
queryable view over a set of :class:`~repro.core.entity.Entity` objects:
fan-out statistics per tier, reachability, and the
effective-lifetime-=-min(self, upstream) rule evaluated over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from .entity import Entity

TIER_ORDER: Sequence[str] = ("device", "gateway", "backhaul", "cloud")


@dataclass
class TierStats:
    """Fan-out and survival summary for one hierarchy tier."""

    tier: str
    count: int
    alive: int
    effectively_alive: int
    mean_dependents: float
    max_dependents: int
    mean_dependencies: float


@dataclass
class Hierarchy:
    """A snapshot view over entities arranged per Figure 1."""

    entities: List[Entity] = field(default_factory=list)

    def add(self, entity: Entity) -> None:
        """Register an entity with the hierarchy view."""
        if entity not in self.entities:
            self.entities.append(entity)

    def extend(self, entities: Iterable[Entity]) -> None:
        """Register many entities."""
        for entity in entities:
            self.add(entity)

    def tier(self, name: str) -> List[Entity]:
        """All registered entities on tier ``name``."""
        return [e for e in self.entities if e.TIER == name]

    def tier_stats(self, name: str) -> TierStats:
        """Fan-out and survival statistics for one tier."""
        members = self.tier(name)
        count = len(members)
        if count == 0:
            return TierStats(name, 0, 0, 0, 0.0, 0, 0.0)
        alive = sum(1 for e in members if e.alive)
        effective = sum(1 for e in members if e.effective_alive())
        dependents = [len(e.dependents) for e in members]
        dependencies = [len(e.depends_on) for e in members]
        return TierStats(
            tier=name,
            count=count,
            alive=alive,
            effectively_alive=effective,
            mean_dependents=sum(dependents) / count,
            max_dependents=max(dependents),
            mean_dependencies=sum(dependencies) / count,
        )

    def all_stats(self) -> Dict[str, TierStats]:
        """Statistics for every tier in Figure 1 order."""
        return {name: self.tier_stats(name) for name in TIER_ORDER}

    def reachable_devices(self) -> List[Entity]:
        """Devices whose data can currently reach the top of the hierarchy."""
        return [e for e in self.tier("device") if e.effective_alive()]

    def stranded_devices(self) -> List[Entity]:
        """Devices that are alive but cut off by upstream failures.

        These are the paper's core concern: functional hardware rendered
        useless by the loss of supporting infrastructure.
        """
        return [
            e for e in self.tier("device") if e.alive and not e.effective_alive()
        ]

    def blast_radius(self, entity: Entity) -> List[Entity]:
        """Devices that would lose service if ``entity`` went dark *now*.

        Computed by hypothetically marking ``entity`` failed and checking
        which currently-reachable devices become unreachable.  The higher
        in the hierarchy, the larger the radius — the quantitative form
        of Figure 1's "lifetime variability" arrow.
        """
        before = {e.name for e in self.reachable_devices()}
        saved_state = entity.state
        from .entity import EntityState

        # Bump topology_version around the counterfactual flip (SL011):
        # any cache keyed on the version that is built while the entity
        # is hypothetically FAILED must not survive the restore.
        entity.state = EntityState.FAILED
        entity.sim.topology_version += 1
        try:
            after = {e.name for e in self.reachable_devices()}
        finally:
            entity.state = saved_state
            entity.sim.topology_version += 1
        lost = before - after
        return [e for e in self.tier("device") if e.name in lost]

    def describe(self) -> str:
        """Multi-line textual rendering of the current hierarchy state."""
        lines = ["tier        count  alive  reach  dep/ent  fanout(max)"]
        for name in TIER_ORDER:
            s = self.tier_stats(name)
            lines.append(
                f"{name:<10} {s.count:>6} {s.alive:>6} {s.effectively_alive:>6}"
                f" {s.mean_dependencies:>8.2f} {s.mean_dependents:>7.1f}"
                f" ({s.max_dependents})"
            )
        return "\n".join(lines)


def wire_by_fanout(
    devices: Sequence[Entity],
    gateways: Sequence[Entity],
    redundancy: int = 1,
) -> None:
    """Attach each device to ``redundancy`` gateways, round-robin.

    A structural helper for synthetic hierarchies; radio-coverage-based
    association lives in :mod:`repro.net.topology`.
    """
    if not gateways:
        raise ValueError("cannot wire devices to an empty gateway set")
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    redundancy = min(redundancy, len(gateways))
    for index, device in enumerate(devices):
        for k in range(redundancy):
            gateway = gateways[(index + k) % len(gateways)]
            device.add_dependency(gateway)
