"""Deployment policies encoding the paper's takeaways.

Each takeaway in §3 is a testable policy choice.  This module names them
as first-class objects so scenario code and the policy-ablation bench
(E13) can toggle each one and measure its effect:

* ``AttachmentPolicy`` — "Devices should rely on properties of
  infrastructure, but not specific instances of infrastructure."
* ``GatewayRole`` — "Gateways should primarily act only as routers."
* ``InfrastructureOwnership`` — "Stakeholders ... should reserve the
  option of vertical integration."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AttachmentPolicy(enum.Enum):
    """How a device binds to the gateway layer."""

    #: Device speaks a standard protocol; any compatible in-range gateway
    #: can forward it.  The takeaway-compliant choice.
    ANY_COMPATIBLE = "any-compatible"

    #: Device is vendor-locked / authenticated to one specific gateway
    #: instance; it is stranded the moment that instance goes dark.
    INSTANCE_BOUND = "instance-bound"


class GatewayRole(enum.Enum):
    """What the gateway layer is responsible for."""

    #: Forward packets only, defer decisions to other system components.
    ROUTER_ONLY = "router-only"

    #: Gateway holds per-device connection keys and application logic
    #: (the traffic-light closed-loop-control case); replacing it
    #: requires re-commissioning every attached device.
    STATEFUL_CONTROLLER = "stateful-controller"


class InfrastructureOwnership(enum.Enum):
    """Who operates gateways and backhaul for a deployment."""

    OWNED = "owned"              # vertical integration from day one
    THIRD_PARTY = "third-party"  # rely entirely on commercial service
    HEDGED = "hedged"            # third-party now, option to self-deploy
                                 # later (the Helium semi-federated bet)


@dataclass(frozen=True)
class DeploymentPolicy:
    """A bundle of the three policy axes for one scenario.

    ``takeaway_compliant()`` is the configuration the paper recommends;
    ``worst_practice()`` is the configuration the paper warns against.
    """

    attachment: AttachmentPolicy = AttachmentPolicy.ANY_COMPATIBLE
    gateway_role: GatewayRole = GatewayRole.ROUTER_ONLY
    ownership: InfrastructureOwnership = InfrastructureOwnership.HEDGED

    @staticmethod
    def takeaway_compliant() -> "DeploymentPolicy":
        """The configuration §3's takeaways recommend."""
        return DeploymentPolicy(
            attachment=AttachmentPolicy.ANY_COMPATIBLE,
            gateway_role=GatewayRole.ROUTER_ONLY,
            ownership=InfrastructureOwnership.HEDGED,
        )

    @staticmethod
    def worst_practice() -> "DeploymentPolicy":
        """Vendor lock-in at every layer — the cautionary baseline."""
        return DeploymentPolicy(
            attachment=AttachmentPolicy.INSTANCE_BOUND,
            gateway_role=GatewayRole.STATEFUL_CONTROLLER,
            ownership=InfrastructureOwnership.THIRD_PARTY,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"attachment={self.attachment.value}, "
            f"gateway={self.gateway_role.value}, "
            f"ownership={self.ownership.value}"
        )

    @property
    def devices_rehome(self) -> bool:
        """Can devices migrate to another live gateway without touch?"""
        return self.attachment is AttachmentPolicy.ANY_COMPATIBLE

    @property
    def gateway_swap_cost_factor(self) -> float:
        """Relative cost of replacing a gateway under this policy.

        Router-only gateways swap for 1x; stateful controllers require
        re-keying every attached device, modelled as a 4x multiplier
        (truck roll + per-device commissioning effort).
        """
        if self.gateway_role is GatewayRole.ROUTER_ONLY:
            return 1.0
        return 4.0

    @property
    def can_self_deploy_infrastructure(self) -> bool:
        """Whether the stakeholder retains the vertical-integration option."""
        return self.ownership in (
            InfrastructureOwnership.OWNED,
            InfrastructureOwnership.HEDGED,
        )
