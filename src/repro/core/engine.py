"""The discrete-event simulation engine.

``Simulation`` owns the clock, the future event list, the named RNG
streams, and an ordered log of recorded observations.  Subsystems
schedule callbacks (absolute or relative), and long-running behaviours
are expressed as self-rescheduling callbacks or via :meth:`every`.

The engine is deliberately synchronous and single-threaded: century
horizons are covered by the sparsity of events (a sensor transmitting
hourly for 50 years is ~438k events), not by parallelism.  Parallelism
lives one layer up: :mod:`repro.runtime` fans independent runs (one
engine per seed) across worker processes.

The run loop is the innermost hot path of every Monte-Carlo study, so
:meth:`run_until` drives :meth:`EventQueue.pop_until` directly — one
heap traversal per executed event instead of the peek-then-pop pair —
and the log keeps a per-channel index so :meth:`records` never scans
the full run log.  Both fast paths preserve the determinism contract:
execution order is exactly ``(time, priority, sequence)`` and all
randomness flows through :class:`~repro.core.rng.RandomStreams`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..obs import MetricsRegistry
from .events import Event, EventQueue
from .rng import RandomStreams


class LogRecord:
    """A timestamped observation recorded during a run.

    A plain ``__slots__`` class: fifty-year runs record tens of
    thousands of observations, so per-record ``__dict__`` overhead and
    dataclass dispatch are measurable.
    """

    __slots__ = ("time", "channel", "message", "data")

    def __init__(
        self,
        time: float,
        channel: str,
        message: str = "",
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.channel = channel
        self.message = message
        self.data = {} if data is None else data

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogRecord):
            return NotImplemented
        return (
            # Value equality for a recorded observation, not a schedule
            # comparison: exact float match is the correct semantics.
            self.time == other.time  # simlint: ignore[SL005]
            and self.channel == other.channel
            and self.message == other.message
            and self.data == other.data
        )

    def __repr__(self) -> str:
        return (
            f"LogRecord(time={self.time!r}, channel={self.channel!r}, "
            f"message={self.message!r}, data={self.data!r})"
        )


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Simulation:
    """A single simulation run.

    Parameters
    ----------
    seed:
        Root seed for all named random streams.
    start_time:
        Initial clock value in seconds (default 0.0).

    >>> sim = Simulation(seed=1)
    >>> hits = []
    >>> _ = sim.call_at(10.0, lambda: hits.append(sim.now))
    >>> sim.run_until(100.0)
    >>> hits
    [10.0]
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self.events = EventQueue()
        self.streams = RandomStreams(seed=seed)
        self.log: List[LogRecord] = []
        #: Monotone counter bumped by entity lifecycle transitions and
        #: dependency rewiring (see :mod:`repro.core.entity`).  Consumers
        #: that cache topology-derived views (e.g. a device's candidate
        #: gateway list) compare against it to know when to rebuild.
        self.topology_version: int = 0
        #: Optional hook called with each :class:`Event` immediately
        #: before its callback runs — the golden-trace tests use it to
        #: pin the exact execution order.  Must not mutate the event.
        self.trace_executed: Optional[Callable[[Event], None]] = None
        #: Optional hook called (with no arguments) after each executed
        #: event — :class:`repro.faults.InvariantAuditor` uses it to run
        #: always-on runtime checks.  Must not schedule events or draw
        #: randomness, so enabling it never perturbs a trace.
        self.audit_hook: Optional[Callable[[], None]] = None
        #: Every entity ever constructed against this simulation, in
        #: construction order (see :meth:`register_entity`).  Fault
        #: selectors and the invariant auditor scan this registry.
        self.entities: List[Any] = []
        #: Named non-entity targets (e.g. the prepaid data-credit
        #: wallet) that fault specs may act on.  Populated by experiment
        #: builders; absent keys make the corresponding fault a no-op.
        self.resources: Dict[str, Any] = {}
        #: The fault controller, set by :meth:`install_faults`.
        #: Maintenance paths consult it for no-show suppression windows.
        self.fault_controller: Optional[Any] = None
        #: The run's one metrics registry (see :mod:`repro.obs`): every
        #: subsystem registers its instruments here, and the runtime
        #: snapshots it into the :class:`RunResult`.  Deterministic by
        #: construction — instruments only record what the simulation
        #: itself computes.
        self.metrics = MetricsRegistry()
        self._log_index: Dict[str, List[LogRecord]] = {}
        self._entity_id = 0
        self._executed_counter = self.metrics.counter("sim_events_executed_total")
        events = self.events
        self.metrics.gauge_fn(
            "sim_peak_pending_events", lambda: events.peak_live, agg="max"
        )
        self.metrics.gauge_fn(
            "sim_queue_compactions", lambda: events.compactions, agg="sum"
        )
        self.metrics.gauge_fn(
            "sim_queue_cancels", lambda: events.cancels, agg="sum"
        )
        self._stopped = False

    def register_entity(self, entity: Any) -> None:
        """Add ``entity`` to this run's registry (called by Entity.__init__)."""
        self.entities.append(entity)

    def install_faults(self, plan: Any) -> Any:
        """Install a :class:`repro.faults.FaultPlan`; returns the controller.

        May be called more than once — later plans extend the same
        controller, so composed plans share one fault event stream.
        """
        return plan.install(self)

    def next_entity_id(self) -> int:
        """Allocate the next auto-naming id for this run's entities.

        Per-simulation (not process-global) so a run's entity names are
        reproducible regardless of what the process simulated before.
        """
        self._entity_id += 1
        return self._entity_id

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        return self.events.push(time, callback, priority=priority, label=label)

    def call_in(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.now + delay, callback, priority=priority, label=label)

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
        label: str = "",
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds.

        ``start`` is the absolute time of the first call (defaults to
        ``now + interval``); ``until`` bounds the last call time.
        Returns a handle whose :meth:`PeriodicTask.stop` halts the cycle.
        """
        if interval <= 0.0:
            raise SimulationError(f"interval must be positive, got {interval}")
        first = self.now + interval if start is None else start
        task = PeriodicTask(self, interval, callback, until, label)
        task.schedule(first)
        return task

    def stop(self) -> None:
        """Halt the current :meth:`run_until` after the active event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False when none remain."""
        try:
            event = self.events.pop()
        except IndexError:
            return False
        if event.time < self.now:
            raise SimulationError(
                f"event queue yielded past event at t={event.time} < now={self.now}"
            )
        self.now = event.time
        if self.trace_executed is not None:
            self.trace_executed(event)
        event.callback()
        self._executed_counter.value += 1
        if self.audit_hook is not None:
            self.audit_hook()
        return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run events until the clock would pass ``end_time``.

        The clock is left at exactly ``end_time`` (or at the stop point if
        :meth:`stop` was called).  ``max_events`` is a safety valve for
        runaway self-scheduling loops.
        """
        if end_time < self.now:
            raise SimulationError(
                f"end_time {end_time} is before current time {self.now}"
            )
        self._stopped = False
        executed = 0
        pop_until = self.events.pop_until
        # The executed-events counter is the innermost observable write:
        # hoist the instrument so each iteration pays one slot store, not
        # a registry lookup.
        executed_counter = self._executed_counter
        while not self._stopped:
            event = pop_until(end_time)
            if event is None:
                break
            if event.time < self.now:
                raise SimulationError(
                    f"event queue yielded past event at t={event.time} "
                    f"< now={self.now}"
                )
            self.now = event.time
            if self.trace_executed is not None:
                self.trace_executed(event)
            event.callback()
            executed_counter.value += 1
            if self.audit_hook is not None:
                self.audit_hook()
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"run_until exceeded max_events={max_events}"
                )
        if not self._stopped:
            self.now = end_time

    @property
    def executed_events(self) -> int:
        """Total number of events executed so far.

        Compatibility read of the registry-backed counter
        (``sim_events_executed_total``) — the registry is the single
        source; this property just names it conveniently.
        """
        return self._executed_counter.value

    @property
    def peak_pending_events(self) -> int:
        """High-water mark of the future event list over the run.

        Compatibility read of the same value the registry's lazy
        ``sim_peak_pending_events`` gauge samples.
        """
        return self.events.peak_live

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def record(self, channel: str, message: str = "", **data: Any) -> None:
        """Append a timestamped observation to the run log."""
        record = LogRecord(self.now, channel, message, dict(data))
        self.log.append(record)
        index = self._log_index.get(channel)
        if index is None:
            index = []
            self._log_index[channel] = index
        index.append(record)

    def records(self, channel: str) -> List[LogRecord]:
        """All log records on ``channel``, in time order.

        Served from the per-channel index — O(matches), not a scan of
        the whole run log.  Returns a fresh list; mutating it does not
        affect the log.
        """
        index = self._log_index.get(channel)
        return list(index) if index is not None else []

    def rng(self, name: str):
        """Shorthand for ``self.streams.get(name)``."""
        return self.streams.get(name)

    def __repr__(self) -> str:
        return (
            f"Simulation(now={self.now:.6g}, pending={len(self.events)}, "
            f"executed={self._executed_counter.value})"
        )


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulation.every`."""

    def __init__(
        self,
        sim: Simulation,
        interval: float,
        callback: Callable[[], None],
        until: Optional[float],
        label: str,
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._until = until
        self._label = label
        self._event: Optional[Event] = None
        self._stopped = False
        self.fired = 0

    def schedule(self, time: float) -> None:
        """Arm the next firing at absolute ``time`` (internal)."""
        if self._stopped:
            return
        if self._until is not None and time > self._until:
            return
        self._event = self._sim.call_at(time, self._fire, label=self._label)

    def _fire(self) -> None:
        self._event = None
        if self._stopped:
            return
        self._callback()
        self.fired += 1
        self.schedule(self._sim.now + self._interval)

    def stop(self) -> None:
        """Stop the cycle; any armed firing is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._sim.events.cancel(self._event)
            self._event = None

    @property
    def active(self) -> bool:
        """True while the task still has a scheduled next firing."""
        return not self._stopped and self._event is not None
