"""Lifetime distributions and hazard models for long-lived electronics.

Everything a failure process needs: sampling, survival/hazard functions,
and composition.  The bathtub model composes an infant-mortality Weibull
(shape < 1), a constant random-failure rate, and a wear-out Weibull
(shape > 1) — the standard reliability-engineering decomposition used for
the paper's claim that low-power design points are "more robust to
long-term failures" (they shrink the wear-out term).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..core import units


class LifetimeDistribution(Protocol):
    """Interface every lifetime model implements (times in seconds)."""

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` lifetimes."""
        ...

    def survival(self, t: float) -> float:
        """P(lifetime > t)."""
        ...

    def hazard(self, t: float) -> float:
        """Instantaneous failure rate at age ``t`` (per second)."""
        ...

    def mean(self) -> float:
        """Expected lifetime in seconds."""
        ...


@dataclass(frozen=True)
class Exponential:
    """Memoryless lifetime with constant hazard.

    ``scale`` is the mean lifetime in seconds.
    """

    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.exponential(self.scale, size=n)

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        return math.exp(-t / self.scale)

    def hazard(self, t: float) -> float:
        return 1.0 / self.scale

    def mean(self) -> float:
        return self.scale


@dataclass(frozen=True)
class Weibull:
    """Weibull lifetime; ``shape`` < 1 is infant mortality, > 1 wear-out.

    ``scale`` is the characteristic life (63.2 % failed) in seconds.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        return math.exp(-((t / self.scale) ** self.shape))

    def hazard(self, t: float) -> float:
        if t <= 0.0:
            # Limit as t->0+: infinite for shape<1, 0 for shape>1.
            t = 1e-12 * self.scale
        return (self.shape / self.scale) * (t / self.scale) ** (self.shape - 1.0)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


@dataclass(frozen=True)
class LogNormal:
    """Log-normal lifetime, common for corrosion / diffusion wear-out.

    ``median`` in seconds; ``sigma`` is the log-space standard deviation.
    """

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median <= 0.0:
            raise ValueError(f"median must be positive, got {self.median}")
        if self.sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.lognormal(math.log(self.median), self.sigma, size=n)

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        z = (math.log(t) - math.log(self.median)) / self.sigma
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    def hazard(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        s = self.survival(t)
        if s <= 1e-300:
            return float("inf")
        z = (math.log(t) - math.log(self.median)) / self.sigma
        pdf = math.exp(-0.5 * z * z) / (t * self.sigma * math.sqrt(2.0 * math.pi))
        return pdf / s

    def mean(self) -> float:
        return self.median * math.exp(0.5 * self.sigma * self.sigma)


@dataclass(frozen=True)
class Deterministic:
    """A fixed lifetime — planned obsolescence, warranties, leases."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0.0:
            raise ValueError(f"value must be positive, got {self.value}")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return np.full(n, self.value)

    def survival(self, t: float) -> float:
        return 1.0 if t < self.value else 0.0

    def hazard(self, t: float) -> float:
        return 0.0 if t < self.value else float("inf")

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class CompetingRisks:
    """Series system: fails when the *first* constituent risk fires.

    The survival function is the product of constituent survivals; this
    is how a device composed of battery + capacitors + PCB + radio is
    modelled, and how the bathtub curve is assembled.
    """

    risks: Sequence[LifetimeDistribution]

    def __post_init__(self) -> None:
        if not self.risks:
            raise ValueError("CompetingRisks needs at least one risk")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        draws = np.stack([risk.sample(rng, n) for risk in self.risks])
        return draws.min(axis=0)

    def survival(self, t: float) -> float:
        result = 1.0
        for risk in self.risks:
            result *= risk.survival(t)
        return result

    def hazard(self, t: float) -> float:
        return sum(risk.hazard(t) for risk in self.risks)

    def mean(self) -> float:
        """Numerical mean via survival-function integration."""
        horizon = 4.0 * max(risk.mean() for risk in self.risks)
        ts = np.linspace(0.0, horizon, 4096)
        values = np.array([self.survival(float(t)) for t in ts])
        return float(np.trapezoid(values, ts))


def bathtub(
    infant_scale: float = units.years(30.0),
    infant_shape: float = 0.5,
    random_mean: float = units.years(80.0),
    wearout_scale: float = units.years(20.0),
    wearout_shape: float = 4.0,
) -> CompetingRisks:
    """The classic three-phase bathtub hazard as competing risks.

    Defaults describe commodity electronics: rare early defects, a low
    constant random-failure floor, and wear-out concentrating around
    ``wearout_scale``.
    """
    return CompetingRisks(
        risks=(
            Weibull(shape=infant_shape, scale=infant_scale),
            Exponential(scale=random_mean),
            Weibull(shape=wearout_shape, scale=wearout_scale),
        )
    )


def mean_lifetime_years(dist: LifetimeDistribution) -> float:
    """Convenience: expected lifetime expressed in Julian years."""
    return units.as_years(dist.mean())
