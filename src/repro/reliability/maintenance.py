"""Maintenance accounting: person-hours, truck rolls, and attention budgets.

§3.1's scaling argument is about labor: "there are a finite number of
person-hours available for the maintenance and upkeep of sensing
systems; as the number of devices grows, the available hours per device
falls."  ``MaintenanceLedger`` records every intervention; ``AttentionBudget``
inverts the argument to compute the maximum sustainable fleet size for a
given staff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import units

#: The paper's "very generous" per-device total replacement time
#: including travel (§1): 20 minutes.
PAPER_REPLACEMENT_MINUTES: float = 20.0


@dataclass(frozen=True)
class Intervention:
    """One human touch of the system."""

    time: float
    tier: str          # device | gateway | backhaul | cloud
    target: str        # entity name
    action: str        # replace | repair | upgrade | inspect | commission
    labor_hours: float
    cost_usd: float = 0.0


@dataclass
class MaintenanceLedger:
    """Append-only record of interventions for one deployment/study."""

    interventions: List[Intervention] = field(default_factory=list)

    def log(
        self,
        time: float,
        tier: str,
        target: str,
        action: str,
        labor_hours: float,
        cost_usd: float = 0.0,
    ) -> None:
        """Record an intervention."""
        if labor_hours < 0.0:
            raise ValueError(f"labor_hours must be non-negative, got {labor_hours}")
        self.interventions.append(
            Intervention(time, tier, target, action, labor_hours, cost_usd)
        )

    def total_hours(self, tier: Optional[str] = None) -> float:
        """Total person-hours, optionally restricted to one tier."""
        return sum(
            i.labor_hours
            for i in self.interventions
            if tier is None or i.tier == tier
        )

    def total_cost(self, tier: Optional[str] = None) -> float:
        """Total intervention cost in USD."""
        return sum(
            i.cost_usd for i in self.interventions if tier is None or i.tier == tier
        )

    def count(self, tier: Optional[str] = None, action: Optional[str] = None) -> int:
        """Number of interventions matching the filters."""
        return sum(
            1
            for i in self.interventions
            if (tier is None or i.tier == tier)
            and (action is None or i.action == action)
        )

    def by_tier(self) -> Dict[str, float]:
        """Person-hours broken down per hierarchy tier."""
        totals: Dict[str, float] = {}
        for i in self.interventions:
            totals[i.tier] = totals.get(i.tier, 0.0) + i.labor_hours
        return totals

    def hours_per_year(self, horizon: float) -> float:
        """Mean person-hours per year over ``horizon`` seconds."""
        if horizon <= 0.0:
            raise ValueError("horizon must be positive")
        return self.total_hours() / units.as_years(horizon)

    def device_touches(self) -> int:
        """Interventions at the device tier — the paper's experiment
        stipulates this stays at zero."""
        return self.count(tier="device")


def fleet_replacement_hours(
    device_count: int, minutes_per_device: float = PAPER_REPLACEMENT_MINUTES
) -> float:
    """Person-hours to replace an entire fleet once (the §1 arithmetic).

    >>> round(fleet_replacement_hours(591_315))
    197105
    """
    if device_count < 0:
        raise ValueError(f"device_count must be non-negative, got {device_count}")
    if minutes_per_device <= 0.0:
        raise ValueError("minutes_per_device must be positive")
    return device_count * minutes_per_device / 60.0


@dataclass(frozen=True)
class AttentionBudget:
    """A fixed maintenance staff, inverted into sustainable fleet size.

    ``staff`` full-time technicians at ``hours_per_year`` each give the
    total annual attention supply; dividing by the per-device annual
    demand gives the ceiling on fleet size that staff can sustain.
    """

    staff: int
    hours_per_year: float = 1800.0

    def annual_supply(self) -> float:
        """Total person-hours available per year."""
        if self.staff < 0:
            raise ValueError("staff must be non-negative")
        return self.staff * self.hours_per_year

    def sustainable_fleet(
        self,
        device_mtbf_years: float,
        minutes_per_touch: float = PAPER_REPLACEMENT_MINUTES,
    ) -> int:
        """Largest fleet whose steady-state repairs fit the staff budget.

        A device failing on average every ``device_mtbf_years`` demands
        ``minutes_per_touch / mtbf`` minutes per year.
        """
        if device_mtbf_years <= 0.0:
            raise ValueError("device_mtbf_years must be positive")
        hours_per_device_year = (minutes_per_touch / 60.0) / device_mtbf_years
        if hours_per_device_year == 0.0:
            return 0
        return int(self.annual_supply() / hours_per_device_year)

    def hours_per_device(self, fleet_size: int) -> float:
        """Annual attention available per device at a given fleet size —
        the quantity §3.1 observes must fall as fleets grow."""
        if fleet_size <= 0:
            raise ValueError("fleet_size must be positive")
        return self.annual_supply() / fleet_size
