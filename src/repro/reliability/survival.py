"""Non-parametric survival analysis for simulated fleets.

The 50-year experiment is a longitudinal survival study; this module
provides the estimators its analysis needs: Kaplan–Meier with right
censoring (devices still alive when the study window closes), median
survival extraction, and a piecewise-exponential hazard summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SurvivalCurve:
    """A step-function estimate of S(t).

    ``times`` are the event times (sorted); ``survival[i]`` is S(t) for
    t in [times[i], times[i+1]).  S(0) is implicitly 1.
    """

    times: np.ndarray
    survival: np.ndarray
    at_risk: np.ndarray

    def at(self, t: float) -> float:
        """Survival probability at time ``t``."""
        if t < 0.0:
            raise ValueError(f"t must be non-negative, got {t}")
        if len(self.times) == 0 or t < self.times[0]:
            return 1.0
        index = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self.survival[index])

    def median(self) -> Optional[float]:
        """First time S(t) drops to 0.5 or below; None if it never does."""
        below = np.nonzero(self.survival <= 0.5)[0]
        if len(below) == 0:
            return None
        return float(self.times[below[0]])

    def quantile(self, q: float) -> Optional[float]:
        """First time the failed fraction reaches ``q`` (0 < q < 1)."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        below = np.nonzero(self.survival <= 1.0 - q)[0]
        if len(below) == 0:
            return None
        return float(self.times[below[0]])


def kaplan_meier(
    durations: Sequence[float], observed: Optional[Sequence[bool]] = None
) -> SurvivalCurve:
    """Kaplan–Meier estimator with right censoring.

    ``durations[i]`` is the time unit *i* was observed; ``observed[i]``
    is True if it failed at that time, False if it was censored (still
    alive at study end).  Omitting ``observed`` treats every duration as
    a failure.

    >>> curve = kaplan_meier([1.0, 2.0, 3.0], [True, True, False])
    >>> round(curve.at(2.5), 3)
    0.333
    """
    durations = np.asarray(durations, dtype=float)
    if durations.ndim != 1 or len(durations) == 0:
        raise ValueError("durations must be a non-empty 1-D sequence")
    if np.any(durations < 0.0):
        raise ValueError("durations must be non-negative")
    if observed is None:
        events = np.ones(len(durations), dtype=bool)
    else:
        events = np.asarray(observed, dtype=bool)
        if events.shape != durations.shape:
            raise ValueError("observed must match durations in length")

    order = np.argsort(durations, kind="stable")
    durations = durations[order]
    events = events[order]

    unique_times = np.unique(durations[events])
    n = len(durations)
    survival = []
    at_risk_out = []
    s = 1.0
    for t in unique_times:
        at_risk = int(np.sum(durations >= t))
        # `t` iterates over np.unique(durations[...]): the values compared
        # are bit-identical floats from the same array, so equality is an
        # exact group-by, not an accumulated-time comparison.
        deaths = int(np.sum((durations == t) & events))  # simlint: ignore[SL005]
        if at_risk > 0:
            s *= 1.0 - deaths / at_risk
        survival.append(s)
        at_risk_out.append(at_risk)
    return SurvivalCurve(
        times=unique_times,
        survival=np.asarray(survival),
        at_risk=np.asarray(at_risk_out),
    )


def restricted_mean_survival(
    curve: SurvivalCurve, horizon: float
) -> float:
    """Area under S(t) up to ``horizon`` — mean lifetime within a window.

    The natural summary for a study whose window (50 years) is shorter
    than some units' lives.
    """
    if horizon <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    grid_times = [0.0]
    grid_values = [1.0]
    for t, s in zip(curve.times, curve.survival):
        if t > horizon:
            break
        grid_times.append(float(t))
        grid_values.append(float(s))
    grid_times.append(horizon)
    grid_values.append(curve.at(horizon))
    total = 0.0
    for i in range(len(grid_times) - 1):
        width = grid_times[i + 1] - grid_times[i]
        total += width * grid_values[i]  # step function: left value holds
    return total


def piecewise_hazard(
    durations: Sequence[float],
    observed: Sequence[bool],
    bin_edges: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Piecewise-constant hazard estimate over ``bin_edges``.

    Returns ``(edges, hazard_per_bin)`` where hazard is events per unit
    exposure time within each bin — the empirical bathtub curve.
    """
    durations = np.asarray(durations, dtype=float)
    events = np.asarray(observed, dtype=bool)
    edges = np.asarray(bin_edges, dtype=float)
    if len(edges) < 2 or np.any(np.diff(edges) <= 0.0):
        raise ValueError("bin_edges must be increasing with >= 2 entries")
    hazards = np.zeros(len(edges) - 1)
    for i in range(len(edges) - 1):
        lo, hi = edges[i], edges[i + 1]
        exposure = np.clip(np.minimum(durations, hi) - lo, 0.0, None).sum()
        deaths = int(np.sum((durations >= lo) & (durations < hi) & events))
        hazards[i] = deaths / exposure if exposure > 0.0 else 0.0
    return edges, hazards
