"""Component-level lifetime models for embedded devices and gateways.

The paper (§1) cites conventional wisdom that batteries, electrolytic
capacitors, and PCB substrates bound mean device lifetime to 10–15
years, while energy-harvesting design points remove the battery and, by
running cool and simple, extend the rest.  Each component here maps to a
named lifetime distribution with parameters drawn from reliability
handbooks (IPC-6012 for PCBs, Arrhenius scaling for electrolytics), and
:func:`device_lifetime_model` composes a device as competing risks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core import units
from .distributions import (
    CompetingRisks,
    Exponential,
    LifetimeDistribution,
    LogNormal,
    Weibull,
)


@dataclass(frozen=True)
class Component:
    """A named physical part with a lifetime model."""

    name: str
    model: LifetimeDistribution

    def mean_years(self) -> float:
        """Expected lifetime in years."""
        return units.as_years(self.model.mean())


def primary_battery(nominal_years: float = 10.0) -> Component:
    """A primary (non-rechargeable) cell; dominated by self-discharge
    and electrolyte depletion, concentrating failures near nominal life."""
    return Component(
        name="primary-battery",
        model=Weibull(shape=6.0, scale=units.years(nominal_years)),
    )


def rechargeable_battery(
    cycle_life: int = 2000, cycles_per_day: float = 1.0
) -> Component:
    """A secondary cell whose life is cycle-count bound.

    ``cycle_life`` full cycles at ``cycles_per_day`` gives the
    characteristic life; a shape of 5 reflects tight manufacturing
    control around the rated cycle count.
    """
    if cycles_per_day <= 0.0:
        raise ValueError("cycles_per_day must be positive")
    life = units.days(cycle_life / cycles_per_day)
    return Component(name="rechargeable-battery", model=Weibull(shape=5.0, scale=life))


def electrolytic_capacitor(
    rated_hours_at_rated_temp: float = 5000.0,
    rated_temp_c: float = 105.0,
    ambient_temp_c: float = 35.0,
) -> Component:
    """Aluminium electrolytic capacitor with Arrhenius-law derating.

    Life doubles per 10 °C below the rated temperature — the standard
    industry rule.  At 35 °C ambient, a 5,000 h @ 105 °C part rates
    around 73 years characteristic life, but real field populations show
    wide dispersion (log-normal sigma 0.6).
    """
    doublings = (rated_temp_c - ambient_temp_c) / 10.0
    life_hours = rated_hours_at_rated_temp * (2.0 ** doublings)
    return Component(
        name="electrolytic-capacitor",
        model=LogNormal(median=units.hours(life_hours), sigma=0.6),
    )


def ceramic_capacitor() -> Component:
    """MLCC — the low-power design-point replacement for electrolytics.

    No wet electrolyte to dry out; field failures are dominated by rare
    flex cracks, modelled as a long constant-hazard floor.
    """
    return Component(name="ceramic-capacitor", model=Exponential(scale=units.years(400.0)))


def pcb_substrate(quality_class: int = 2) -> Component:
    """Rigid PCB per IPC-6012 quality classes.

    Class 1 (consumer) wears out fastest via CAF and delamination; class
    3 (high-reliability) is built for long service.  Medians: 20 / 40 /
    80 years with log-normal dispersion.
    """
    medians = {1: 20.0, 2: 40.0, 3: 80.0}
    if quality_class not in medians:
        raise ValueError(f"quality_class must be 1, 2, or 3, got {quality_class}")
    return Component(
        name=f"pcb-class{quality_class}",
        model=LogNormal(median=units.years(medians[quality_class]), sigma=0.5),
    )


def solder_joints(thermal_cycles_per_day: float = 2.0) -> Component:
    """Solder fatigue under thermal cycling (Coffin–Manson shaped).

    Low-power devices cycle less and shallower; characteristic life is
    inversely proportional to daily cycle count around a 30k-cycle
    rating.
    """
    if thermal_cycles_per_day <= 0.0:
        raise ValueError("thermal_cycles_per_day must be positive")
    life = units.days(30000.0 / thermal_cycles_per_day)
    return Component(name="solder-joints", model=Weibull(shape=2.5, scale=life))


def mcu_flash(write_cycles_per_day: float = 24.0, endurance: float = 1e5) -> Component:
    """MCU flash endurance for devices that journal state.

    Transmit-only sensors that never rewrite flash effectively remove
    this risk; pass a tiny ``write_cycles_per_day`` for them.
    """
    if write_cycles_per_day <= 0.0:
        raise ValueError("write_cycles_per_day must be positive")
    life = units.days(endurance / write_cycles_per_day)
    return Component(name="mcu-flash", model=Weibull(shape=3.0, scale=life))


def radio_frontend() -> Component:
    """RF front-end: random ESD/surge events plus slow PA degradation."""
    return Component(
        name="radio-frontend",
        model=CompetingRisks(
            risks=(
                Exponential(scale=units.years(120.0)),
                Weibull(shape=3.0, scale=units.years(60.0)),
            )
        ),
    )


def harvester_transducer(kind: str = "cathodic") -> Component:
    """The energy-harvesting transducer itself.

    ``cathodic`` (rebar-corrosion ambient battery, refs [20, 21]) lasts
    as long as the structure corrodes — modelled on concrete service
    life.  ``solar`` degrades ~0.5 %/yr with encapsulant failure around
    30 years; ``vibration`` piezo elements fatigue sooner.
    """
    models: Dict[str, LifetimeDistribution] = {
        "cathodic": LogNormal(median=units.years(60.0), sigma=0.4),
        "solar": Weibull(shape=4.0, scale=units.years(32.0)),
        "vibration": Weibull(shape=3.0, scale=units.years(25.0)),
        "thermal": LogNormal(median=units.years(45.0), sigma=0.5),
    }
    if kind not in models:
        raise ValueError(f"unknown harvester kind {kind!r}; options: {sorted(models)}")
    return Component(name=f"harvester-{kind}", model=models[kind])


def enclosure_sealing(embedded_in_concrete: bool = False) -> Component:
    """Ingress protection; embedding in the concrete matrix shields the
    package from UV and handling at the cost of zero reparability."""
    median = 70.0 if embedded_in_concrete else 35.0
    return Component(
        name="enclosure",
        model=LogNormal(median=units.years(median), sigma=0.45),
    )


def battery_powered_device(nominal_battery_years: float = 12.0) -> CompetingRisks:
    """Composite lifetime model for a conventional battery IoT node.

    Battery + electrolytic caps + consumer PCB + solder + flash + radio:
    the configuration whose mean the paper pegs at 10–15 years.
    """
    parts = [
        primary_battery(nominal_battery_years),
        electrolytic_capacitor(),
        pcb_substrate(quality_class=1),
        solder_joints(thermal_cycles_per_day=2.0),
        mcu_flash(write_cycles_per_day=4.0),
        radio_frontend(),
    ]
    return CompetingRisks(risks=tuple(p.model for p in parts))


def energy_harvesting_device(
    harvester_kind: str = "cathodic", embedded: bool = True
) -> CompetingRisks:
    """Composite lifetime model for a batteryless harvesting node.

    No battery, ceramic caps instead of electrolytic, class-3 PCB, cool
    operation (few thermal cycles), no flash journaling — the design
    points the paper argues "make them more robust to long-term
    failures".
    """
    parts = [
        harvester_transducer(harvester_kind),
        ceramic_capacitor(),
        pcb_substrate(quality_class=3),
        solder_joints(thermal_cycles_per_day=0.5),
        mcu_flash(write_cycles_per_day=0.05),
        radio_frontend(),
        enclosure_sealing(embedded_in_concrete=embedded),
    ]
    return CompetingRisks(risks=tuple(p.model for p in parts))


def gateway_platform(networked: bool = True) -> CompetingRisks:
    """Raspberry-Pi-class gateway: SD-card wear dominates, plus PSU
    electrolytics and the board itself.

    The paper notes one non-networked Pi ran unattended for nearly eight
    years; our median time-to-first-fault for a networked unit is ~7
    years, dominated by storage wear and power-supply capacitors.
    """
    sd_card = Weibull(shape=2.0, scale=units.years(8.0 if networked else 12.0))
    psu = electrolytic_capacitor(ambient_temp_c=45.0).model
    board = pcb_substrate(quality_class=2).model
    return CompetingRisks(risks=(sd_card, psu, board))


def device_lifetime_model(kind: str) -> CompetingRisks:
    """Factory keyed by the device archetypes used across benchmarks."""
    factories = {
        "battery": lambda: battery_powered_device(),
        "battery-premium": lambda: battery_powered_device(nominal_battery_years=15.0),
        "harvesting": lambda: energy_harvesting_device(),
        "harvesting-solar": lambda: energy_harvesting_device("solar", embedded=False),
        "gateway": lambda: gateway_platform(),
    }
    if kind not in factories:
        raise ValueError(f"unknown device kind {kind!r}; options: {sorted(factories)}")
    return factories[kind]()


def dominant_risk(
    model: CompetingRisks, rng, n: int = 2000
) -> List[Tuple[int, float]]:
    """Empirically rank which constituent risk fires first.

    Returns ``(risk_index, fraction_of_failures)`` sorted descending —
    useful for the battery-vs-harvesting benchmark narrative.
    """
    import numpy as np

    draws = np.stack([risk.sample(rng, n) for risk in model.risks])
    winners = draws.argmin(axis=0)
    counts = np.bincount(winners, minlength=len(model.risks))
    ranked = sorted(
        ((int(i), float(c) / n) for i, c in enumerate(counts)),
        key=lambda pair: -pair[1],
    )
    return ranked
