"""Failure processes: wiring lifetime distributions into the DES engine.

``FailureProcess`` arms a one-shot failure event for an entity when it
deploys.  ``RenewalProcess`` models repair-and-replace maintenance: each
failure triggers a replacement after a logistics delay, accumulating the
person-hours ledger used by the E1 labor benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core import units
from ..core.engine import Simulation
from ..core.entity import Entity
from ..core.events import Event
from .distributions import LifetimeDistribution


class FailureProcess:
    """Schedules a single stochastic failure for one entity.

    The failure time is drawn when :meth:`arm` is called (normally at
    deployment).  :meth:`disarm` cancels a pending failure, e.g. when the
    entity is retired first.
    """

    def __init__(
        self,
        sim: Simulation,
        entity: Entity,
        model: LifetimeDistribution,
        stream: str = "failures",
        reason: str = "wearout",
    ) -> None:
        self.sim = sim
        self.entity = entity
        self.model = model
        self.stream = stream
        self.reason = reason
        self.scheduled_at: Optional[float] = None
        self._event: Optional[Event] = None

    def arm(self) -> float:
        """Draw a lifetime and schedule the failure.  Returns the time."""
        if self._event is not None:
            raise RuntimeError(f"failure already armed for {self.entity.name}")
        rng = self.sim.rng(self.stream)
        lifetime = float(self.model.sample(rng, 1)[0])
        when = self.sim.now + lifetime
        self.scheduled_at = when
        self._event = self.sim.call_at(
            when, self._fire, label=f"fail:{self.entity.name}"
        )
        return when

    def disarm(self) -> None:
        """Cancel the pending failure (entity retired or replaced)."""
        if self._event is not None:
            self.sim.events.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.entity.fail(reason=self.reason)


@dataclass
class Replacement:
    """One completed replacement in a renewal process."""

    failed_at: float
    replaced_at: float
    entity_name: str
    labor_hours: float


class RenewalProcess:
    """Failure → (delay) → replacement, repeated over the horizon.

    ``entity_factory`` builds and deploys the successor entity; the
    renewal re-arms itself on the new entity.  ``labor_hours_per_swap``
    feeds the person-hours ledger (the paper's 20-minute-per-device
    figure is ``labor_hours_per_swap=1/3``).
    """

    def __init__(
        self,
        sim: Simulation,
        entity: Entity,
        model: LifetimeDistribution,
        entity_factory: Callable[[], Entity],
        logistics_delay: float = units.days(14.0),
        labor_hours_per_swap: float = 1.0 / 3.0,
        stream: str = "renewals",
    ) -> None:
        if logistics_delay < 0.0:
            raise ValueError("logistics_delay must be non-negative")
        self.sim = sim
        self.model = model
        self.entity_factory = entity_factory
        self.logistics_delay = logistics_delay
        self.labor_hours_per_swap = labor_hours_per_swap
        self.stream = stream
        self.history: List[Replacement] = []
        self.current = entity
        self._process: Optional[FailureProcess] = None
        self.stopped = False

    def start(self) -> None:
        """Arm the failure process on the current entity."""
        self._process = FailureProcess(
            self.sim, self.current, self.model, stream=self.stream
        )
        original_on_end = self.current.on_end
        renewal = self

        def on_end(reason: str, _original=original_on_end) -> None:
            _original(reason)
            renewal._on_failure()

        # Bind per-instance so we observe this entity's end-of-life.
        self.current.on_end = on_end  # type: ignore[method-assign]
        self._process.arm()

    def stop(self) -> None:
        """Cease replacing; the current entity runs to natural failure."""
        self.stopped = True
        if self._process is not None:
            self._process.disarm()
            self._process = None

    def _on_failure(self) -> None:
        if self.stopped:
            return
        failed_at = self.sim.now
        failed_name = self.current.name
        self.sim.call_in(
            self.logistics_delay,
            lambda: self._replace(failed_at, failed_name),
            label=f"replace:{failed_name}",
        )

    def _replace(self, failed_at: float, failed_name: str) -> None:
        if self.stopped:
            return
        controller = self.sim.fault_controller
        if controller is not None and controller.maintenance_suppressed(
            self.sim.now
        ):
            # Injected maintenance no-show window: the visit slips to
            # the window's end rather than silently executing.
            self.sim.call_at(
                controller.suppression_ends(self.sim.now),
                lambda: self._replace(failed_at, failed_name),
                label=f"replace:{failed_name}",
            )
            return
        successor = self.entity_factory()
        if successor.deployed_at is None:
            successor.deploy()
        self.history.append(
            Replacement(
                failed_at=failed_at,
                replaced_at=self.sim.now,
                entity_name=failed_name,
                labor_hours=self.labor_hours_per_swap,
            )
        )
        self.current = successor
        self.start()

    @property
    def total_labor_hours(self) -> float:
        """Person-hours spent on replacements so far."""
        return sum(r.labor_hours for r in self.history)

    @property
    def replacement_count(self) -> int:
        """Number of completed replacements."""
        return len(self.history)


def sample_fleet_lifetimes(
    model: LifetimeDistribution, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` lifetimes — the bridge between reliability models and
    the vectorised cohort machinery in :mod:`repro.core.lifetime`."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return model.sample(rng, n)
