"""Snapshot exporters: canonical JSONL and Prometheus text format.

The JSONL writer is byte-deterministic: ``json.dumps`` with sorted keys
and compact separators, no timestamps, no host information.  A
Monte-Carlo study exports one line per run (in run-index order) followed
by one merged line, so the file produced at ``--workers 4`` is
byte-identical to the ``--workers 1`` file — the acceptance check of the
whole observability layer.

The Prometheus exporter emits the familiar text exposition format
(``# TYPE`` headers, ``name{label="v"} value``) for humans and scrape
tooling; it shares the same canonical ordering.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List, Optional, Tuple

from .snapshot import LabelPairs, MetricsSnapshot


def snapshot_json(snapshot: MetricsSnapshot, **meta: object) -> str:
    """One canonical JSON line for ``snapshot`` (no trailing newline).

    ``meta`` rides along at the top level (run index, seed, scenario…);
    keys are sorted, so identical content is identical bytes.
    """
    payload = dict(meta)
    payload["metrics"] = snapshot.to_dict()
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def load_snapshot_line(line: str) -> Tuple[dict, MetricsSnapshot]:
    """Parse one JSONL line back into (meta, snapshot)."""
    payload = json.loads(line)
    snapshot = MetricsSnapshot.from_dict(payload.pop("metrics"))
    return payload, snapshot


class SnapshotStreamWriter:
    """Incremental canonical-JSONL snapshot writer.

    Streams one line per ``(meta, snapshot)`` entry the moment it is
    written — O(1) memory regardless of study size, which is what lets
    a 10k-run shard export its per-run snapshots without holding them.
    Bytes are identical to a batch :func:`write_jsonl` of the same
    entries in the same order.  Usable as a context manager.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.lines = 0
        self._closed = False

    def write(self, meta: dict, snapshot: MetricsSnapshot) -> None:
        """Append one canonical snapshot line."""
        self._handle.write(snapshot_json(snapshot, **meta))
        self._handle.write("\n")
        self.lines += 1

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "SnapshotStreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_jsonl(
    path: str, entries: Iterable[Tuple[dict, MetricsSnapshot]]
) -> int:
    """Write ``(meta, snapshot)`` entries as canonical JSONL; returns
    the number of lines written."""
    with SnapshotStreamWriter(path) as writer:
        for meta, snapshot in entries:
            writer.write(meta, snapshot)
        return writer.lines


def read_jsonl(path: str) -> Iterator[Tuple[dict, MetricsSnapshot]]:
    """Lazily yield ``(meta, snapshot)`` entries back from a JSONL file.

    The streaming counterpart of :class:`SnapshotStreamWriter`: one
    line is parsed at a time, so merging arbitrarily large metric files
    holds a single snapshot resident.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                yield load_snapshot_line(line)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _format_labels(labels: LabelPairs) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_escape(value)}"' for key, value in labels
    )
    return "{" + rendered + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: object) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(snapshot: MetricsSnapshot, prefix: str = "") -> str:
    """Render ``snapshot`` in the Prometheus text exposition format.

    Histograms follow the convention: cumulative ``_bucket`` series with
    an ``le`` label (last bucket ``le="+Inf"``) plus a ``_count`` series.
    There is deliberately no ``_sum`` series — the layer does not keep a
    float sum, because exact cross-worker merging forbids it.
    """
    lines: List[str] = []
    seen_types = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {prefix}{name} {kind}")

    for name, labels, value in snapshot.counters:
        type_line(name, "counter")
        lines.append(f"{prefix}{name}{_format_labels(labels)} {_format_number(value)}")
    for name, labels, _agg, value in snapshot.gauges:
        type_line(name, "gauge")
        lines.append(f"{prefix}{name}{_format_labels(labels)} {_format_number(value)}")
    for name, labels, edges, buckets, count in snapshot.histograms:
        type_line(name, "histogram")
        cumulative = 0
        for edge, bucket in zip(edges, buckets):
            cumulative += bucket
            le_labels = labels + (("le", repr(float(edge))),)
            lines.append(
                f"{prefix}{name}_bucket{_format_labels(tuple(sorted(le_labels)))} "
                f"{cumulative}"
            )
        cumulative += buckets[-1]
        inf_labels = tuple(sorted(labels + (("le", "+Inf"),)))
        lines.append(f"{prefix}{name}_bucket{_format_labels(inf_labels)} {cumulative}")
        lines.append(f"{prefix}{name}_count{_format_labels(labels)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(
    path: str,
    per_run: Iterable[Tuple[dict, MetricsSnapshot]],
    merged: Optional[Tuple[dict, MetricsSnapshot]] = None,
    fmt: str = "jsonl",
) -> int:
    """Write a study's metrics in the chosen format.

    ``jsonl``: one line per run plus (when given) a final merged line.
    ``prom``: the merged snapshot only (or the sole run), since the
    exposition format has no per-run framing.
    """
    if fmt == "jsonl":
        entries = list(per_run)
        if merged is not None:
            entries.append(merged)
        return write_jsonl(path, entries)
    if fmt == "prom":
        if merged is not None:
            snapshot = merged[1]
        else:
            runs = list(per_run)
            if not runs:
                snapshot = MetricsSnapshot()
            else:
                snapshot = runs[-1][1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(snapshot))
        return 1
    raise ValueError(f"unknown metrics format {fmt!r} (choose jsonl or prom)")
