"""repro.obs — the deterministic telemetry layer.

One instrumentation substrate for every subsystem (§4.5: a system whose
custodians turn over for fifty years must be legible from its telemetry
alone).  Three pieces:

* :mod:`repro.obs.metrics` — typed Counter / Gauge / Histogram
  instruments in a :class:`MetricsRegistry`, keyed by name + label
  tuple, with hot-path bumps that are plain attribute stores.
* :mod:`repro.obs.snapshot` — picklable :class:`MetricsSnapshot` with a
  commutative, associative ``merge`` so per-worker snapshots reassemble
  bit-identically at any worker count.
* :mod:`repro.obs.trace` — :class:`EventTracer` spans sampled by event
  sequence (never by wall clock), so traces are as reproducible as the
  runs they observe.
* :mod:`repro.obs.export` — canonical JSONL and Prometheus text
  exporters.

Layer contract: ``obs`` sits below everything (even ``core`` imports
it) and imports only the standard library; nothing here reads a clock,
draws randomness, or schedules events.
"""

from .export import (
    SnapshotStreamWriter,
    load_snapshot_line,
    read_jsonl,
    snapshot_json,
    to_prometheus,
    write_jsonl,
    write_metrics,
)
from .metrics import (
    GAUGE_AGGS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .snapshot import (
    EMPTY_SNAPSHOT,
    MetricsSnapshot,
    canonical_labels,
    merge_all,
)
from .trace import EventTracer, Span

__all__ = [
    "Counter",
    "EMPTY_SNAPSHOT",
    "EventTracer",
    "GAUGE_AGGS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SnapshotStreamWriter",
    "Span",
    "canonical_labels",
    "load_snapshot_line",
    "read_jsonl",
    "merge_all",
    "snapshot_json",
    "to_prometheus",
    "write_jsonl",
    "write_metrics",
]
