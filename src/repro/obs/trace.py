"""Deterministic event spans: tracing sampled by sequence, not by clock.

A conventional tracer samples by wall time ("one span per 100 ms"),
which makes two runs of the same seed produce different traces.
:class:`EventTracer` samples by the event's *sequence number* —
``sequence % every == 0`` — a pure function of the schedule, so the
trace of a run is as reproducible as the run itself.

The tracer **chains** with any hook already installed on
``Simulation.trace_executed`` (the golden-trace fixtures own that hook
in tests) and is opt-in: nothing constructs one unless asked, so the
default hot loop keeps its ``trace_executed is None`` fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional


@dataclass(frozen=True)
class Span:
    """One sampled event execution."""

    sequence: int
    time: float
    priority: int
    label: str


class EventTracer:
    """Collect sampled :class:`Span` records from a simulation run.

    Parameters
    ----------
    every:
        Keep one span per ``every`` sequence numbers (1 = every event).
    limit:
        Optional hard cap on retained spans; once reached, further
        samples are counted in :attr:`dropped` but not stored, so a
        fifty-year run cannot balloon memory.
    """

    def __init__(self, every: int = 1000, limit: Optional[int] = None) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.every = every
        self.limit = limit
        self.spans: List[Span] = []
        self.sampled = 0
        self.dropped = 0
        self._chained: Optional[Callable[[Any], None]] = None
        self._sim: Optional[Any] = None

    def install(self, sim: Any) -> "EventTracer":
        """Attach to ``sim.trace_executed``, chaining any existing hook."""
        if self._sim is not None:
            raise RuntimeError("tracer already installed")
        self._sim = sim
        self._chained = sim.trace_executed
        sim.trace_executed = self._on_event
        return self

    def uninstall(self) -> None:
        """Restore the previously installed hook."""
        if self._sim is None:
            return
        self._sim.trace_executed = self._chained
        self._sim = None
        self._chained = None

    def _on_event(self, event: Any) -> None:
        if self._chained is not None:
            self._chained(event)
        if event.sequence % self.every:
            return
        self.sampled += 1
        if self.limit is not None and len(self.spans) >= self.limit:
            self.dropped += 1
            return
        self.spans.append(
            Span(
                sequence=event.sequence,
                time=event.time,
                priority=event.priority,
                label=event.label,
            )
        )

    def as_tuples(self):
        """Spans as plain tuples — picklable, diffable, hashable."""
        return tuple(
            (s.sequence, s.time, s.priority, s.label) for s in self.spans
        )
