"""Typed, deterministic metric instruments and their registry.

Three instrument kinds, mirroring the Prometheus vocabulary but with a
determinism contract Prometheus does not need:

* :class:`Counter` — a monotone integer.  The hot paths (the engine's
  run loop, a device's duty cycle) hold a direct reference to the
  instrument and bump ``counter.value += 1``: a plain attribute store on
  a ``__slots__`` object, no per-event dict lookup.
* :class:`Gauge` — a point-in-time numeric value with an explicit merge
  aggregation (``"sum"``, ``"max"``, or ``"min"`` — never "last", which
  would make cross-worker merges order-dependent).  A gauge may be
  *lazy*: backed by a zero-argument callable sampled at snapshot time,
  so observing a value (a queue's high-water mark, a wallet balance)
  costs nothing until someone asks.
* :class:`Histogram` — integer counts over **fixed** bucket edges chosen
  at registration.  No adaptive bucketing, no float sum field: bucket
  counts are integers, so merging is exact and order-independent.

Instruments are keyed by ``(name, sorted label tuple)`` in a
:class:`MetricsRegistry`; :meth:`MetricsRegistry.snapshot` freezes the
whole registry into a picklable
:class:`~repro.obs.snapshot.MetricsSnapshot`.

Nothing here reads a clock or draws randomness: every value is a pure
function of the simulation's execution, which is what lets per-worker
snapshots reassemble bit-identically at any worker count.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Tuple, Union

from .snapshot import (
    LabelPairs,
    MetricsSnapshot,
    canonical_labels,
)

Number = Union[int, float]

#: The gauge merge aggregations that keep ``MetricsSnapshot.merge``
#: order-independent.  ("last" is deliberately absent: it would make the
#: merged value depend on worker scheduling.)
GAUGE_AGGS = ("sum", "max", "min")


class Counter:
    """A monotone event count.

    Hot paths bump :attr:`value` directly — ``self._c.value += 1`` is a
    slot store, the cheapest observable write Python offers.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (cold-path convenience; hot paths bump value)."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {dict(self.labels)!r}, value={self.value})"


class Gauge:
    """A point-in-time value with an explicit merge aggregation.

    Either *set* (``gauge.set(v)`` / ``gauge.value = v``) or *lazy*
    (constructed with ``fn``, sampled when the registry snapshots).
    """

    __slots__ = ("name", "labels", "agg", "value", "fn")

    def __init__(
        self,
        name: str,
        labels: LabelPairs,
        agg: str = "max",
        fn: Optional[Callable[[], Number]] = None,
    ) -> None:
        if agg not in GAUGE_AGGS:
            raise ValueError(f"agg must be one of {GAUGE_AGGS}, got {agg!r}")
        self.name = name
        self.labels = labels
        self.agg = agg
        self.value: Number = 0
        self.fn = fn

    def set(self, value: Number) -> None:
        self.value = value

    def read(self) -> Number:
        """Current value — the callable's if lazy, the stored one otherwise."""
        if self.fn is not None:
            return self.fn()
        return self.value

    def __repr__(self) -> str:
        kind = "lazy" if self.fn is not None else "set"
        return f"Gauge({self.name!r}, {dict(self.labels)!r}, agg={self.agg!r}, {kind})"


class Histogram:
    """Integer counts over fixed, registration-time bucket edges.

    ``edges`` are the upper-inclusive bucket boundaries; observations
    above the last edge land in the implicit overflow bucket, so
    ``len(bucket_counts) == len(edges) + 1`` and
    ``sum(bucket_counts) == count`` always.  Fixed edges + integer
    counts make merging exact and invariant under observation order.
    """

    __slots__ = ("name", "labels", "edges", "bucket_counts")

    def __init__(
        self, name: str, labels: LabelPairs, edges: Tuple[float, ...]
    ) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"edges must be strictly increasing, got {edges}")
        self.name = name
        self.labels = labels
        self.edges = tuple(float(e) for e in edges)
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)

    def observe(self, value: float) -> None:
        """Count one observation (upper-inclusive, Prometheus ``le``)."""
        self.bucket_counts[bisect_left(self.edges, value)] += 1

    @property
    def count(self) -> int:
        """Total observations — derived, so ``observe`` stays one store."""
        return sum(self.bucket_counts)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, {dict(self.labels)!r}, "
            f"edges={self.edges}, count={self.count})"
        )


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All instruments of one simulation run, keyed by (name, labels).

    Registration is lazy and idempotent: asking for an existing
    ``(name, labels)`` key returns the same instrument, so owners can
    hold direct references (the hot-path contract) while late readers
    find the instrument by name.  A name is bound to one instrument
    kind — re-registering ``x`` as a counter after it was a gauge is a
    programming error and raises immediately.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelPairs], Instrument] = {}
        self._kinds: Dict[str, type] = {}
        self._gauge_aggs: Dict[str, str] = {}
        self._histogram_edges: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Registration (get-or-create)
    # ------------------------------------------------------------------
    def _claim(self, name: str, kind: type) -> None:
        bound = self._kinds.setdefault(name, kind)
        if bound is not kind:
            raise ValueError(
                f"metric {name!r} already registered as {bound.__name__}, "
                f"cannot re-register as {kind.__name__}"
            )

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter at ``(name, labels)``."""
        self._claim(name, Counter)
        key = (name, canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Counter(name, key[1])
            self._instruments[key] = instrument
        return instrument  # type: ignore[return-value]

    def gauge(self, name: str, agg: str = "max", **labels: str) -> Gauge:
        """Get or create a settable gauge at ``(name, labels)``."""
        self._claim(name, Gauge)
        key = (name, canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            self._check_agg(name, agg)
            instrument = Gauge(name, key[1], agg=agg)
            self._instruments[key] = instrument
        return instrument  # type: ignore[return-value]

    def gauge_fn(
        self, name: str, fn: Callable[[], Number], agg: str = "max", **labels: str
    ) -> Gauge:
        """Register a lazy gauge sampled at snapshot time.

        Re-registering the same key replaces the callable — entity
        rebuilds (a replacement gateway taking a dead one's name) must
        not leave a gauge reading a corpse.
        """
        key = (name, canonical_labels(labels))
        self._claim(name, Gauge)
        self._check_agg(name, agg)
        instrument = Gauge(name, key[1], agg=agg, fn=fn)
        self._instruments[key] = instrument
        return instrument

    def _check_agg(self, name: str, agg: str) -> None:
        bound = self._gauge_aggs.setdefault(name, agg)
        if bound != agg:
            raise ValueError(
                f"gauge {name!r} already registered with agg={bound!r}, "
                f"cannot re-register with agg={agg!r}"
            )

    def histogram(
        self, name: str, edges: Tuple[float, ...] = (), **labels: str
    ) -> Histogram:
        """Get or create the histogram at ``(name, labels)``.

        All label sets of one histogram name share the edges fixed at
        first registration (required for cross-label and cross-run
        merging); a later conflicting ``edges`` raises.
        """
        self._claim(name, Histogram)
        key = (name, canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if edges and tuple(float(e) for e in edges) != instrument.edges:  # type: ignore[union-attr]
                raise ValueError(
                    f"histogram {name!r} already registered with edges "
                    f"{instrument.edges}, got {tuple(edges)}"  # type: ignore[union-attr]
                )
            return instrument  # type: ignore[return-value]
        bound = self._histogram_edges.get(name)
        if bound is not None:
            if edges and tuple(float(e) for e in edges) != bound:
                raise ValueError(
                    f"histogram {name!r} already registered with edges "
                    f"{bound}, got {tuple(edges)}"
                )
            edges = bound
        elif not edges:
            raise ValueError(f"first registration of histogram {name!r} needs edges")
        instrument = Histogram(name, key[1], tuple(edges))
        self._histogram_edges[name] = instrument.edges
        self._instruments[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def total(self, name: str, **label_filter: str) -> Number:
        """Sum of all counter values under ``name`` matching the filter.

        The per-tier aggregation the auditor and run summaries read —
        e.g. ``total("net_reports_delivered_total", tier="device")``.
        """
        wanted = sorted(label_filter.items())
        out: Number = 0
        for (iname, labels), instrument in self._instruments.items():
            if iname != name or not isinstance(instrument, Counter):
                continue
            if all(pair in labels for pair in wanted):
                out += instrument.value
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Freeze every instrument into an immutable, picklable snapshot.

        Lazy gauges are sampled here.  Entries are sorted by
        ``(name, labels)``, so two registries holding the same values
        snapshot to equal — and identically serialized — objects no
        matter what order their instruments were registered in.
        """
        counters = []
        gauges = []
        histograms = []
        for (name, labels), instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                counters.append((name, labels, instrument.value))
            elif isinstance(instrument, Gauge):
                gauges.append((name, labels, instrument.agg, instrument.read()))
            else:
                histograms.append(
                    (
                        name,
                        labels,
                        instrument.edges,
                        tuple(instrument.bucket_counts),
                        instrument.count,
                    )
                )
        return MetricsSnapshot(
            counters=tuple(sorted(counters)),
            gauges=tuple(sorted(gauges)),
            histograms=tuple(sorted(histograms)),
        )
