"""Immutable metric snapshots with an order-independent ``merge``.

A :class:`MetricsSnapshot` is the frozen state of one
:class:`~repro.obs.metrics.MetricsRegistry`: plain tuples of plain
values, picklable across process boundaries, hashable, and canonically
sorted so equal contents always serialize to equal bytes.

``merge`` is the cross-worker reassembly primitive.  Its algebra is
deliberately restricted so that it is **commutative and associative**
(the hypothesis suite asserts both):

* counters are integers and add;
* gauges carry their aggregation (``sum``/``max``/``min``) in the data,
  so any two snapshots agree on how a name combines;
* histograms have fixed edges and integer bucket counts, which add.

That algebra is why a Monte-Carlo study's per-worker snapshots reduce
to the same merged snapshot at any worker count and in any completion
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple, Union

Number = Union[int, float]

#: Canonical label encoding: a sorted tuple of (key, value) pairs.
LabelPairs = Tuple[Tuple[str, str], ...]

#: (name, labels, value)
CounterEntry = Tuple[str, LabelPairs, int]
#: (name, labels, agg, value)
GaugeEntry = Tuple[str, LabelPairs, str, Number]
#: (name, labels, edges, bucket_counts, count)
HistogramEntry = Tuple[str, LabelPairs, Tuple[float, ...], Tuple[int, ...], int]


def canonical_labels(labels: Mapping[str, str]) -> LabelPairs:
    """Sort a label mapping into the canonical tuple key."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricsSnapshot:
    """The frozen contents of a metrics registry.  See module docstring."""

    counters: Tuple[CounterEntry, ...] = ()
    gauges: Tuple[GaugeEntry, ...] = ()
    histograms: Tuple[HistogramEntry, ...] = ()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **label_filter: str) -> int:
        """Sum of matching counter entries (0 when none match)."""
        wanted = sorted(label_filter.items())
        total = 0
        for cname, labels, value in self.counters:
            if cname == name and all(pair in labels for pair in wanted):
                total += value
        return total

    def gauge_value(self, name: str, **label_filter: str) -> Number:
        """Matching gauge entries combined by their own aggregation.

        Returns 0 when nothing matches — absent instrumentation reads
        as zero, like a counter that never fired.
        """
        wanted = sorted(label_filter.items())
        values = []
        agg = "sum"
        for gname, labels, gagg, value in self.gauges:
            if gname == name and all(pair in labels for pair in wanted):
                values.append(value)
                agg = gagg
        if not values:
            return 0
        if agg == "sum":
            return sum(values)
        return max(values) if agg == "max" else min(values)

    def histogram_buckets(
        self, name: str, **label_filter: str
    ) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
        """(edges, summed bucket counts) for matching histogram entries."""
        wanted = sorted(label_filter.items())
        edges: Tuple[float, ...] = ()
        summed: list = []
        for hname, labels, hedges, buckets, _count in self.histograms:
            if hname != name or not all(pair in labels for pair in wanted):
                continue
            if not summed:
                edges = hedges
                summed = list(buckets)
            else:
                if hedges != edges:
                    raise ValueError(
                        f"histogram {name!r} has mismatched edges across "
                        f"label sets: {edges} vs {hedges}"
                    )
                summed = [a + b for a, b in zip(summed, buckets)]
        return edges, tuple(summed)

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots; commutative and associative.

        Counters and histogram buckets add; gauges combine by the
        aggregation recorded in the entry.  Merging the same name with
        different gauge aggregations or histogram edges is a contract
        violation and raises ``ValueError``.
        """
        counters: Dict[Tuple[str, LabelPairs], int] = {}
        for name, labels, value in self.counters + other.counters:
            key = (name, labels)
            counters[key] = counters.get(key, 0) + value

        gauges: Dict[Tuple[str, LabelPairs], Tuple[str, Number]] = {}
        for name, labels, agg, value in self.gauges + other.gauges:
            key = (name, labels)
            held = gauges.get(key)
            if held is None:
                gauges[key] = (agg, value)
                continue
            held_agg, held_value = held
            if held_agg != agg:
                raise ValueError(
                    f"gauge {name!r} merged with conflicting aggregations "
                    f"{held_agg!r} vs {agg!r}"
                )
            if agg == "sum":
                merged = held_value + value
            elif agg == "max":
                merged = max(held_value, value)
            else:
                merged = min(held_value, value)
            gauges[key] = (agg, merged)

        histograms: Dict[
            Tuple[str, LabelPairs], Tuple[Tuple[float, ...], Tuple[int, ...], int]
        ] = {}
        for name, labels, edges, buckets, count in (
            self.histograms + other.histograms
        ):
            key = (name, labels)
            held = histograms.get(key)
            if held is None:
                histograms[key] = (edges, buckets, count)
                continue
            held_edges, held_buckets, held_count = held
            if held_edges != edges:
                raise ValueError(
                    f"histogram {name!r} merged with conflicting edges "
                    f"{held_edges} vs {edges}"
                )
            histograms[key] = (
                edges,
                tuple(a + b for a, b in zip(held_buckets, buckets)),
                held_count + count,
            )

        return MetricsSnapshot(
            counters=tuple(
                sorted((name, labels, value) for (name, labels), value in counters.items())
            ),
            gauges=tuple(
                sorted(
                    (name, labels, agg, value)
                    for (name, labels), (agg, value) in gauges.items()
                )
            ),
            histograms=tuple(
                sorted(
                    (name, labels, edges, buckets, count)
                    for (name, labels), (edges, buckets, count) in histograms.items()
                )
            ),
        )

    # ------------------------------------------------------------------
    # Serialization (canonical: equal snapshots -> equal bytes)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-ready dict; round-trips through :meth:`from_dict`."""
        return {
            "counters": [
                {"name": name, "labels": [list(p) for p in labels], "value": value}
                for name, labels, value in self.counters
            ],
            "gauges": [
                {
                    "name": name,
                    "labels": [list(p) for p in labels],
                    "agg": agg,
                    "value": value,
                }
                for name, labels, agg, value in self.gauges
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": [list(p) for p in labels],
                    "edges": list(edges),
                    "buckets": list(buckets),
                    "count": count,
                }
                for name, labels, edges, buckets, count in self.histograms
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        return cls(
            counters=tuple(
                (e["name"], tuple(tuple(p) for p in e["labels"]), int(e["value"]))
                for e in payload.get("counters", ())
            ),
            gauges=tuple(
                (
                    e["name"],
                    tuple(tuple(p) for p in e["labels"]),
                    e["agg"],
                    e["value"],
                )
                for e in payload.get("gauges", ())
            ),
            histograms=tuple(
                (
                    e["name"],
                    tuple(tuple(p) for p in e["labels"]),
                    tuple(float(x) for x in e["edges"]),
                    tuple(int(x) for x in e["buckets"]),
                    int(e["count"]),
                )
                for e in payload.get("histograms", ())
            ),
        )


#: The canonical empty snapshot — the identity element of ``merge`` and
#: the default ``RunResult.metrics`` for bare-sample tasks.
EMPTY_SNAPSHOT = MetricsSnapshot()


def merge_all(snapshots) -> MetricsSnapshot:
    """Left-fold ``merge`` over an iterable of snapshots.

    The algebra makes the fold order irrelevant for the result; callers
    still pass run-index order so float gauge sums are bit-stable too.
    """
    merged = EMPTY_SNAPSHOT
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged


__all__ = [
    "CounterEntry",
    "EMPTY_SNAPSHOT",
    "GaugeEntry",
    "HistogramEntry",
    "LabelPairs",
    "MetricsSnapshot",
    "canonical_labels",
    "merge_all",
]
