"""Developer tooling that guards centurysim's correctness invariants.

The simulator's headline guarantee — bit-identical Monte-Carlo
statistics at any worker count — rests on conventions (all randomness
flows from :class:`repro.core.rng.RandomStreams`, no wall-clock reads in
sim code, strict layering) that ordinary tests cannot enforce.  The
tools here enforce them statically; see :mod:`repro.devtools.simlint`.
"""
