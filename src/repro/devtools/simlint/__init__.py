"""simlint — AST-based determinism & unit-hygiene analyzer.

PR 1's parallel Monte-Carlo runtime promises bit-identical statistics at
any worker count.  That guarantee rests on conventions no unit test can
see: every generator must descend from
:class:`repro.core.rng.RandomStreams`, sim code must never read wall
clocks or global RNGs, and the sim layers must stay import-clean of
orchestration code.  simlint walks the AST (stdlib ``ast`` only — no new
dependencies) and enforces them:

========  =============================================================
SL001     banned nondeterminism sources (time.time, datetime.now,
          random.*, os.urandom, uuid.uuid4, secrets.*)
SL002     ad-hoc ``np.random.default_rng(...)`` outside core/rng.py
SL003     implicit-Optional annotations (``x: T = None``)
SL004     mutable default arguments
SL005     float ``==``/``!=`` against simulation time
SL006     sim layer importing runtime / cli / analysis.report
SL007     non-tuple ``heappush`` entries
SL008     fault randomness outside RandomStreams
SL009     wall-clock reads inside sim layers
========  =============================================================

A second, *whole-program* pass (``python -m repro lint --project``)
builds a :class:`~.project.ProjectIndex` over every module at once —
symbol tables, a resolved import graph, and extracted contract facts —
and runs the cross-module rules:

========  =============================================================
SL010     one RNG stream name claimed by distinct subsystems
SL011     topology mutation without a ``topology_version`` bump
SL012     metric name registered with conflicting kind / labels / agg /
          edges across modules
SL013     import-time module cycles + the package DAG declared in
          ``[tool.simlint.layers]`` (pyproject.toml)
SL014     unit-suffixed argument (``_s``/``_m``/``_j``/``_w``) feeding
          a parameter with a different unit suffix
========  =============================================================

Suppress a finding in place with ``# simlint: ignore[SL001]`` (or a bare
``# simlint: ignore`` for every rule on that line); opt a whole file out
with ``# simlint: skip-file``.
"""

from .analyzer import (
    PARSE_ERROR_RULE,
    LintCache,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
    ruleset_signature,
)
from .cli import add_lint_arguments, main, run
from .findings import Finding, ModuleContext, module_name_for
from .project import ProjectConfig, ProjectIndex, load_project_config
from .project_rules import (
    PROJECT_RULES,
    ProjectRule,
    get_project_rule,
    lint_index,
    lint_project,
    project_catalog,
)
from .reporters import (
    JSON_SCHEMA_VERSION,
    render,
    render_github,
    render_json,
    render_text,
)
from .rules import RULES, Rule, catalog, get_rule

__all__ = [
    "PARSE_ERROR_RULE",
    "LintCache",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "ruleset_signature",
    "add_lint_arguments",
    "main",
    "run",
    "Finding",
    "ModuleContext",
    "module_name_for",
    "ProjectConfig",
    "ProjectIndex",
    "load_project_config",
    "PROJECT_RULES",
    "ProjectRule",
    "get_project_rule",
    "lint_index",
    "lint_project",
    "project_catalog",
    "JSON_SCHEMA_VERSION",
    "render",
    "render_github",
    "render_json",
    "render_text",
    "RULES",
    "Rule",
    "catalog",
    "get_rule",
]
