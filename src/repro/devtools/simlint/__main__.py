"""``python -m repro.devtools.simlint`` dispatches to the simlint CLI."""

import sys

from .cli import main

sys.exit(main())
