"""Whole-program analysis: the ProjectIndex and its fact extractors.

The per-file rules (SL001–SL009) see one module at a time, but the bug
classes that actually threatened this repo were *cross-module*: RNG
stream aliasing between subsystems (PR 1), topology caches gone stale
because a mutation path forgot the ``topology_version`` bump (PR 3/6),
and metric names registered with incompatible shapes (PR 5).  The
:class:`ProjectIndex` built here is the substrate the cross-module rules
(SL010–SL014, :mod:`.project_rules`) run against: it parses every module
once and extracts

* a resolved import graph (absolute targets, top-level vs. deferred,
  ``TYPE_CHECKING``-only flagged) — SL013;
* every RNG stream claim: string literals (and f-string prefixes) passed
  to ``RandomStreams.get`` / ``Simulation.rng`` / ``*.streams.get`` /
  ``fork`` — SL010;
* every :class:`~repro.obs.metrics.MetricsRegistry` registration
  (name, instrument kind, label keys, literal agg/edges) — SL012;
* every topology mutation site (dependency-list mutation, entity
  ``state`` assignment) and whether the enclosing function bumps
  ``topology_version`` — SL011;
* heap-entry shapes flowing into the event queue (tuple arity per
  ``heappush`` site) — recorded for auditability and future rules;
* unit-suffixed function signatures and the call sites that feed them
  (``_s`` seconds, ``_m`` meters, ``_j`` joules, ``_w`` watts) — SL014.

Everything is stdlib ``ast``; nothing imports the modules under
analysis, so a broken tree still indexes (unparsable files are skipped
here and reported by the per-file pass as SL000).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .analyzer import iter_python_files, parse_suppressions
from .findings import module_name_for
from .rules import import_map, terminal_identifier

#: Parameter/argument suffixes that declare a unit (SI base units used
#: throughout centurysim — see core/units.py).
UNIT_SUFFIXES = frozenset({"s", "m", "j", "w"})

#: Stream-name prefixes reserved for one subsystem (SL010): the fault
#: controller derives ``faults:<content-key>`` streams, and any other
#: subsystem claiming that namespace would alias fault targeting draws.
RESERVED_STREAM_PREFIXES = {"faults:": "faults"}

#: List-mutating method names that count as a dependency-graph mutation
#: when called on ``depends_on`` / ``dependents``.
_LIST_MUTATORS = frozenset({"append", "remove", "clear", "extend", "insert", "pop"})


def unit_suffix(name: Optional[str]) -> Optional[str]:
    """The unit suffix a name carries, or None (``airtime_s`` -> ``s``)."""
    if not name or "_" not in name:
        return None
    tail = name.rsplit("_", 1)[1]
    return tail if tail in UNIT_SUFFIXES else None


# ----------------------------------------------------------------------
# Fact records
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ImportFact:
    """One import statement edge, pre-resolution."""

    module: str              # importer (dotted)
    base: str                # absolute module named by the statement
    names: Tuple[str, ...]   # imported names ("" for plain `import X`)
    line: int
    top_level: bool          # executed at module import time
    type_only: bool          # inside `if TYPE_CHECKING:` — erased at runtime


@dataclass(frozen=True)
class StreamFact:
    """One RNG stream claim (``sim.rng("radio")``, ``streams.get(n)``)."""

    module: str
    path: str
    line: int
    api: str                      # "rng" | "get" | "fork"
    name: Optional[str]           # literal stream name, if statically known
    prefix: Optional[str] = None  # leading literal of an f-string argument


@dataclass(frozen=True)
class MetricFact:
    """One MetricsRegistry registration site."""

    module: str
    path: str
    line: int
    api: str                      # "counter" | "gauge" | "gauge_fn" | "histogram"
    name: Optional[str]           # literal metric name, if statically known
    label_keys: FrozenSet[str]
    dynamic_labels: bool          # **kwargs present: label keys unknowable
    agg: Optional[str] = None     # literal gauge agg ("max" when defaulted)
    edges: Optional[Tuple[float, ...]] = None  # literal histogram edges

    @property
    def kind(self) -> str:
        """Instrument kind the registration binds the name to."""
        return "gauge" if self.api == "gauge_fn" else self.api


@dataclass(frozen=True)
class TopologyMutationFact:
    """One function that mutates the entity graph directly."""

    module: str
    path: str
    line: int                 # first mutating statement
    function: str             # qualname of the nearest enclosing function
    mutations: Tuple[str, ...]  # human-readable mutation descriptions
    bumps_version: bool       # same function writes topology_version


@dataclass(frozen=True)
class HeapEntryFact:
    """Shape of one entry pushed onto a heap (the event queue contract)."""

    module: str
    path: str
    line: int
    arity: Optional[int]      # tuple length, or None for non-tuple entries


@dataclass(frozen=True)
class FunctionFact:
    """A function/method signature carrying unit-suffixed parameters."""

    module: str
    path: str
    line: int
    qualname: str             # "ClassName.method" or "function"
    name: str
    params: Tuple[str, ...]   # positional params, self/cls stripped
    kwonly: Tuple[str, ...]   # keyword-only params
    is_method: bool

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass(frozen=True)
class CallFact:
    """A call feeding at least one unit-suffixed argument somewhere."""

    module: str
    path: str
    line: int
    callee: str                               # terminal identifier
    resolved: Optional[str]                   # dotted name via import map
    is_attribute: bool                        # obj.method(...) style
    positional: Tuple[Optional[str], ...]     # terminal ids (None = expr)
    keywords: Tuple[Tuple[str, Optional[str]], ...]  # (kw name, value id)


@dataclass
class ModuleInfo:
    """Everything the project rules need to know about one module."""

    path: str
    module: str
    is_package: bool
    tree: ast.AST
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    skip_file: bool = False
    imports: List[ImportFact] = field(default_factory=list)
    streams: List[StreamFact] = field(default_factory=list)
    metrics: List[MetricFact] = field(default_factory=list)
    topology_mutations: List[TopologyMutationFact] = field(default_factory=list)
    heap_entries: List[HeapEntryFact] = field(default_factory=list)
    functions: List[FunctionFact] = field(default_factory=list)
    calls: List[CallFact] = field(default_factory=list)

    @property
    def package(self) -> str:
        """Top-level package under the project root ("repro.net.x" -> "net")."""
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else parts[0]

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Same pragma semantics as the per-file pass."""
        if self.skip_file:
            return True
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return not rules or rule in rules


# ----------------------------------------------------------------------
# Project configuration ([tool.simlint] in pyproject.toml)
# ----------------------------------------------------------------------

@dataclass
class ProjectConfig:
    """Declared layering DAG: package -> packages it may import.

    Missing entirely (no pyproject, or no ``[tool.simlint.layers]``
    table) disables the DAG half of SL013; cycle detection always runs.
    """

    layers: Optional[Dict[str, Tuple[str, ...]]] = None
    pyproject_path: Optional[str] = None


_SECTION_RE = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_ARRAY_RE = re.compile(
    r"^\s*(?P<key>[A-Za-z0-9_\-\"']+)\s*=\s*\[(?P<items>[^\]]*)\]\s*$"
)
_ARRAY_OPEN_RE = re.compile(
    r"^\s*(?P<key>[A-Za-z0-9_\-\"']+)\s*=\s*\[(?P<items>[^\]]*)$"
)


def _parse_layers_minimal(text: str) -> Optional[Dict[str, Tuple[str, ...]]]:
    """Extract ``[tool.simlint.layers]`` without a TOML library.

    Understands exactly the subset the table uses: a section header and
    ``key = ["a", "b"]`` string arrays, which may span several lines.
    Python < 3.11 lacks ``tomllib`` and the repo adds no dependencies,
    so this keeps the DAG check alive there too.
    """
    layers: Dict[str, Tuple[str, ...]] = {}
    in_section = False
    found = False
    pending: Optional[Tuple[str, str]] = None  # (key, accumulated items)
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        if pending is not None:
            key, acc = pending
            acc += " " + line.strip()
            if "]" in line:
                layers[key] = _split_array_items(acc.split("]", 1)[0])
                pending = None
            else:
                pending = (key, acc)
            continue
        section = _SECTION_RE.match(line)
        if section:
            in_section = section.group("name").strip() == "tool.simlint.layers"
            found = found or in_section
            continue
        if not in_section or not line.strip():
            continue
        match = _ARRAY_RE.match(line)
        if match is not None:
            key = match.group("key").strip().strip("\"'")
            layers[key] = _split_array_items(match.group("items"))
            continue
        opener = _ARRAY_OPEN_RE.match(line)
        if opener is not None:
            key = opener.group("key").strip().strip("\"'")
            pending = (key, opener.group("items").strip())
    return layers if found else None


def _split_array_items(items: str) -> Tuple[str, ...]:
    return tuple(
        item.strip().strip("\"'") for item in items.split(",") if item.strip()
    )


def load_project_config(start: Path) -> ProjectConfig:
    """Find and parse the nearest ``pyproject.toml`` at or above ``start``."""
    probe = start if start.is_dir() else start.parent
    for directory in [probe, *probe.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return _read_config(candidate)
    return ProjectConfig()


def _read_config(pyproject: Path) -> ProjectConfig:
    text = pyproject.read_text(encoding="utf-8")
    layers: Optional[Dict[str, Tuple[str, ...]]] = None
    try:
        import tomllib  # Python >= 3.11

        table = (
            tomllib.loads(text).get("tool", {}).get("simlint", {}).get("layers")
        )
        if table is not None:
            layers = {
                key: tuple(str(v) for v in values) for key, values in table.items()
            }
    except ImportError:
        layers = _parse_layers_minimal(text)
    return ProjectConfig(layers=layers, pyproject_path=str(pyproject))


# ----------------------------------------------------------------------
# The extraction visitor
# ----------------------------------------------------------------------

class _FactExtractor(ast.NodeVisitor):
    """Single-pass scope-tracking walk filling a :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self.names = import_map(info.tree)
        self._function_depth = 0
        self._type_checking_depth = 0
        self._class_stack: List[str] = []
        #: Per-function mutation accumulation: (qualname, line, descs, bumps)
        self._function_stack: List[List] = []
        self._references_entity_state = self._module_references("EntityState")

    # -- helpers -------------------------------------------------------

    def _module_references(self, identifier: str) -> bool:
        for node in ast.walk(self.info.tree):
            if isinstance(node, ast.Name) and node.id == identifier:
                return True
            if isinstance(node, ast.ImportFrom) and any(
                alias.name == identifier for alias in node.names
            ):
                return True
        return False

    def _resolve_relative(self, level: int, module: Optional[str]) -> Optional[str]:
        base = self.info.module.split(".")
        if not self.info.is_package:
            base = base[:-1]
        drop = level - 1
        if drop > len(base):
            return None
        if drop:
            base = base[:-drop]
        if module:
            base = base + module.split(".")
        return ".".join(base) if base else None

    @staticmethod
    def _is_type_checking_test(test: ast.AST) -> bool:
        return terminal_identifier(test) == "TYPE_CHECKING"

    # -- scope tracking ------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking_test(node.test):
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(self, node) -> None:
        self._record_signature(node)
        qual = ".".join(self._class_stack + [node.name])
        self._function_depth += 1
        self._function_stack.append([qual, None, [], False])
        self.generic_visit(node)
        frame = self._function_stack.pop()
        self._function_depth -= 1
        if frame[2]:
            self.info.topology_mutations.append(
                TopologyMutationFact(
                    module=self.info.module,
                    path=self.info.path,
                    line=frame[1],
                    function=frame[0],
                    mutations=tuple(frame[2]),
                    bumps_version=frame[3],
                )
            )

    def _record_signature(self, node) -> None:
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        is_method = bool(self._class_stack) and self._function_depth == 0
        if is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        kwonly = [a.arg for a in args.kwonlyargs]
        if not any(unit_suffix(p) for p in params + kwonly):
            return
        self.info.functions.append(
            FunctionFact(
                module=self.info.module,
                path=self.info.path,
                line=node.lineno,
                qualname=".".join(self._class_stack + [node.name]),
                name=node.name,
                params=tuple(params),
                kwonly=tuple(kwonly),
                is_method=is_method,
            )
        )

    # -- imports -------------------------------------------------------

    def _add_import(self, base: str, names: Tuple[str, ...], line: int) -> None:
        self.info.imports.append(
            ImportFact(
                module=self.info.module,
                base=base,
                names=names,
                line=line,
                top_level=self._function_depth == 0,
                type_only=self._type_checking_depth > 0,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add_import(alias.name, ("",), node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0:
            base = node.module
        else:
            base = self._resolve_relative(node.level, node.module)
        if base is not None:
            self._add_import(
                base,
                tuple(alias.name for alias in node.names if alias.name != "*"),
                node.lineno,
            )

    # -- statements: topology mutations --------------------------------

    def _current_frame(self) -> Optional[List]:
        return self._function_stack[-1] if self._function_stack else None

    def _note_mutation(self, line: int, desc: str) -> None:
        frame = self._current_frame()
        if frame is None:
            return  # module-level mutation of an entity graph: not seen in
            # practice; functions are the unit the bump contract names.
        if frame[1] is None:
            frame[1] = line
        frame[2].append(desc)

    def _note_bump(self) -> None:
        frame = self._current_frame()
        if frame is not None:
            frame[3] = True

    def _check_assign_target(self, target: ast.AST, line: int) -> None:
        if not isinstance(target, ast.Attribute):
            return
        if target.attr == "topology_version":
            self._note_bump()
            return
        if self._is_constructor_self_init(target):
            # `self.state = ...` inside __init__ initializes a brand-new
            # entity; there is no pre-existing graph state to go stale.
            return
        if target.attr in ("depends_on", "dependents"):
            self._note_mutation(line, f"rebinds .{target.attr}")
        elif target.attr == "state" and self._references_entity_state:
            self._note_mutation(line, "assigns entity .state")

    def _is_constructor_self_init(self, target: ast.Attribute) -> bool:
        frame = self._current_frame()
        return (
            frame is not None
            and frame[0].endswith("__init__")
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_assign_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_assign_target(node.target, node.lineno)
        self.generic_visit(node)

    # -- calls: streams, metrics, heaps, unit args, list mutations -----

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _LIST_MUTATORS and isinstance(func.value, ast.Attribute):
                owner = func.value.attr
                if owner in ("depends_on", "dependents"):
                    self._note_mutation(node.lineno, f".{owner}.{attr}(...)")
            if attr in ("rng", "get", "fork"):
                self._maybe_stream_claim(node, attr)
            if attr in ("counter", "gauge", "gauge_fn", "histogram"):
                self._maybe_metric_registration(node, attr)
        self._maybe_heap_entry(node)
        self._maybe_unit_call(node)
        self.generic_visit(node)

    # RNG stream claims

    @staticmethod
    def _streamsish(node: ast.AST) -> bool:
        """Receiver plausibly a RandomStreams family (not a dict)."""
        name = terminal_identifier(node)
        if name is not None:
            return name.lower().endswith("streams")
        if isinstance(node, ast.Call):
            return terminal_identifier(node.func) == "RandomStreams"
        return False

    def _maybe_stream_claim(self, node: ast.Call, api: str) -> None:
        assert isinstance(node.func, ast.Attribute)
        if api in ("get", "fork") and not self._streamsish(node.func.value):
            return
        if not node.args:
            return
        arg = node.args[0]
        name: Optional[str] = None
        prefix: Optional[str] = None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                prefix = head.value
        elif api == "fork":
            return  # fork(i) with a dynamic index claims no name
        self.info.streams.append(
            StreamFact(
                module=self.info.module,
                path=self.info.path,
                line=node.lineno,
                api=api,
                name=name,
                prefix=prefix,
            )
        )

    # Metric registrations

    _NON_LABEL_KWARGS = frozenset({"agg", "fn", "edges"})

    @staticmethod
    def _metricsish(node: ast.AST) -> bool:
        name = terminal_identifier(node)
        if name is None:
            return False
        return name == "registry" or name.endswith("metrics")

    def _maybe_metric_registration(self, node: ast.Call, api: str) -> None:
        assert isinstance(node.func, ast.Attribute)
        if not self._metricsish(node.func.value):
            return
        name: Optional[str] = None
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            name = node.args[0].value
        label_keys = set()
        dynamic = False
        agg: Optional[str] = "max" if api in ("gauge", "gauge_fn") else None
        edges: Optional[Tuple[float, ...]] = None
        for kw in node.keywords:
            if kw.arg is None:
                dynamic = True
            elif kw.arg == "agg":
                value = kw.value
                agg = (
                    value.value
                    if isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    else None
                )
            elif kw.arg == "edges":
                edges = self._literal_edges(kw.value)
            elif kw.arg not in self._NON_LABEL_KWARGS:
                label_keys.add(kw.arg)
        if api == "histogram" and len(node.args) > 1 and edges is None:
            edges = self._literal_edges(node.args[1])
        self.info.metrics.append(
            MetricFact(
                module=self.info.module,
                path=self.info.path,
                line=node.lineno,
                api=api,
                name=name,
                label_keys=frozenset(label_keys),
                dynamic_labels=dynamic,
                agg=agg,
                edges=edges,
            )
        )

    @staticmethod
    def _literal_edges(node: ast.AST) -> Optional[Tuple[float, ...]]:
        if isinstance(node, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, (int, float))
            for e in node.elts
        ):
            return tuple(float(e.value) for e in node.elts)  # type: ignore[union-attr]
        return None

    # Heap entry shapes

    _PUSH_CALLS = frozenset({"heappush", "heappushpop", "heapreplace"})

    def _maybe_heap_entry(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        resolved = self._resolve(node.func)
        if resolved is None:
            return
        parts = resolved.split(".")
        if parts[0] != "heapq" or parts[-1] not in self._PUSH_CALLS:
            return
        entry = node.args[1]
        arity = len(entry.elts) if isinstance(entry, ast.Tuple) else None
        self.info.heap_entries.append(
            HeapEntryFact(
                module=self.info.module,
                path=self.info.path,
                line=node.lineno,
                arity=arity,
            )
        )

    def _resolve(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.append(self.names.get(cursor.id, cursor.id))
        return ".".join(reversed(parts))

    # Unit-suffixed call arguments

    def _maybe_unit_call(self, node: ast.Call) -> None:
        callee = terminal_identifier(node.func)
        if callee is None:
            return
        positional = tuple(terminal_identifier(a) for a in node.args)
        keywords = tuple(
            (kw.arg, terminal_identifier(kw.value))
            for kw in node.keywords
            if kw.arg is not None
        )
        if not any(unit_suffix(p) for p in positional) and not any(
            unit_suffix(v) for _, v in keywords
        ):
            return
        self.info.calls.append(
            CallFact(
                module=self.info.module,
                path=self.info.path,
                line=node.lineno,
                callee=callee,
                resolved=self._resolve(node.func),
                is_attribute=isinstance(node.func, ast.Attribute),
                positional=positional,
                keywords=keywords,
            )
        )


# ----------------------------------------------------------------------
# The index
# ----------------------------------------------------------------------

class ProjectIndex:
    """Symbol tables, import graph, and contract facts over many modules."""

    def __init__(self, config: Optional[ProjectConfig] = None) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.config = config or ProjectConfig()

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, paths: Iterable) -> "ProjectIndex":
        """Index every python file under ``paths`` (files or directories)."""
        files = iter_python_files(paths)
        config = (
            load_project_config(Path(files[0]).parent) if files else ProjectConfig()
        )
        index = cls(config)
        for file_path in files:
            index.add_file(file_path)
        return index

    def add_file(self, path) -> None:
        file_path = Path(path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return
        module = module_name_for(list(file_path.parts))
        self.add_source(
            source,
            path=str(file_path),
            module=module,
            is_package=file_path.name == "__init__.py",
        )

    def add_source(
        self,
        source: str,
        path: str = "<string>",
        module: Optional[str] = None,
        is_package: bool = False,
    ) -> Optional[ModuleInfo]:
        """Index one in-memory module; returns its ModuleInfo (or None
        if it does not parse — the per-file pass owns SL000)."""
        if module is None:
            module = module_name_for(list(Path(path).parts)) or path
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
        suppressions, skip_file = parse_suppressions(source)
        info = ModuleInfo(
            path=path,
            module=module,
            is_package=is_package,
            tree=tree,
            suppressions=suppressions,
            skip_file=skip_file,
        )
        _FactExtractor(info).visit(tree)
        # First spelling wins on duplicate module names (mirrors the
        # file-discovery dedup; identical content either way).
        self.modules.setdefault(module, info)
        return info

    # -- aggregate views -----------------------------------------------

    def infos(self) -> List[ModuleInfo]:
        """Indexed modules in deterministic (module-name) order."""
        return [self.modules[name] for name in sorted(self.modules)]

    def stream_claims(self) -> List[StreamFact]:
        return [fact for info in self.infos() for fact in info.streams]

    def metric_registrations(self) -> List[MetricFact]:
        return [fact for info in self.infos() for fact in info.metrics]

    def topology_mutations(self) -> List[TopologyMutationFact]:
        return [fact for info in self.infos() for fact in info.topology_mutations]

    def heap_entry_shapes(self) -> List[HeapEntryFact]:
        return [fact for info in self.infos() for fact in info.heap_entries]

    def functions_by_name(self) -> Dict[str, List[FunctionFact]]:
        """Unit-suffixed signatures grouped by bare function name."""
        table: Dict[str, List[FunctionFact]] = {}
        for info in self.infos():
            for fact in info.functions:
                table.setdefault(fact.name, []).append(fact)
        return table

    def resolve_import_target(self, fact: ImportFact, name: str) -> str:
        """Most specific indexed module an imported name binds to.

        ``from repro.core import engine`` resolves to ``repro.core.engine``
        when that module is indexed (importing it executes it), else to
        the base module.
        """
        if name:
            candidate = f"{fact.base}.{name}"
            if candidate in self.modules:
                return candidate
        return fact.base

    def import_graph(
        self, top_level_only: bool = True, include_type_only: bool = False
    ) -> Dict[str, List[str]]:
        """Resolved module-level import edges within the index.

        Only edges between indexed modules are returned; external
        imports (numpy, stdlib) are not graph nodes.  Parent-package
        edges implied by Python's import machinery (importing
        ``repro.core.engine`` runs ``repro.core.__init__``) are *not*
        synthesized: they would put every package in a trivial cycle
        with its own ``__init__``.
        """
        graph: Dict[str, List[str]] = {name: [] for name in sorted(self.modules)}
        for info in self.infos():
            targets = set()
            for fact in info.imports:
                if top_level_only and not fact.top_level:
                    continue
                if fact.type_only and not include_type_only:
                    continue
                for name in fact.names:
                    resolved = self.resolve_import_target(fact, name)
                    if resolved in self.modules and resolved != info.module:
                        targets.add(resolved)
            graph[info.module] = sorted(targets)
        return graph

    def package_edges(
        self, top_level_only: bool = True
    ) -> Dict[Tuple[str, str], List[ImportFact]]:
        """Cross-package runtime import edges with their witness sites."""
        edges: Dict[Tuple[str, str], List[ImportFact]] = {}
        for info in self.infos():
            for fact in info.imports:
                if fact.type_only or (top_level_only and not fact.top_level):
                    continue
                for name in fact.names:
                    resolved = self.resolve_import_target(fact, name)
                    if resolved not in self.modules:
                        continue
                    src = info.package
                    dst = self.modules[resolved].package
                    if src != dst:
                        edges.setdefault((src, dst), []).append(fact)
        return edges

    def import_line(self, module: str, target: str) -> int:
        """Line of the first import in ``module`` that reaches ``target``."""
        info = self.modules.get(module)
        if info is None:
            return 1
        for fact in info.imports:
            for name in fact.names:
                if self.resolve_import_target(fact, name) == target:
                    return fact.line
        return 1

    def __repr__(self) -> str:
        return f"ProjectIndex(modules={len(self.modules)})"
