"""File discovery, suppression parsing, and rule execution for simlint."""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .findings import Finding, ModuleContext, module_name_for
from .rules import RULES

#: ``# simlint: ignore`` silences every rule on the line;
#: ``# simlint: ignore[SL001,SL005]`` silences just those rules.
_IGNORE_RE = re.compile(
    r"simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"simlint:\s*skip-file")

#: Rule id reserved for files the analyzer cannot parse at all.
PARSE_ERROR_RULE = "SL000"


def parse_suppressions(
    source: str,
) -> Tuple[Dict[int, FrozenSet[str]], bool]:
    """Scan comments for suppression pragmas.

    Returns (line -> rule ids, skip_file).  An empty frozenset means the
    whole line is exempt from every rule.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    skip_file = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            if _SKIP_FILE_RE.search(token.string):
                skip_file = True
            match = _IGNORE_RE.search(token.string)
            if match is None:
                continue
            rules = match.group("rules")
            ids = (
                frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
                if rules
                else frozenset()
            )
            line = token.start[0]
            existing = suppressions.get(line)
            if existing is not None and (not existing or not ids):
                ids = frozenset()  # blanket ignore wins
            elif existing is not None:
                ids = existing | ids
            suppressions[line] = ids
    except tokenize.TokenError:
        pass  # half-written file: the ast parse below reports it
    return suppressions, skip_file


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    is_package: bool = False,
) -> List[Finding]:
    """Run every rule over one in-memory module."""
    if module is None:
        module = module_name_for(list(Path(path).parts))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) or 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
            )
        ]
    suppressions, skip_file = parse_suppressions(source)
    ctx = ModuleContext(
        path=path,
        module=module or "",
        is_package=is_package,
        tree=tree,
        source=source,
        suppressions=suppressions,
        skip_file=skip_file,
    )
    findings: List[Finding] = []
    for rule in RULES:
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


def lint_file(path, module: Optional[str] = None) -> List[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    if module is None:
        module = module_name_for(list(file_path.parts))
    return lint_source(
        source,
        path=str(file_path),
        module=module,
        is_package=file_path.name == "__init__.py",
    )


def iter_python_files(paths: Iterable) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen = set()
    ordered: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Sequence[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def lint_paths(paths: Iterable) -> List[Finding]:
    """Lint every python file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path))
    return sorted(findings)
