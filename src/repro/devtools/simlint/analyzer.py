"""File discovery, suppression parsing, rule execution, and the
content-hash result cache for simlint."""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .findings import Finding, ModuleContext, module_name_for
from .rules import RULES

#: ``# simlint: ignore`` silences every rule on the line;
#: ``# simlint: ignore[SL001,SL005]`` silences just those rules.
_IGNORE_RE = re.compile(
    r"simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"simlint:\s*skip-file")

#: Rule id reserved for files the analyzer cannot parse at all.
PARSE_ERROR_RULE = "SL000"


def parse_suppressions(
    source: str,
) -> Tuple[Dict[int, FrozenSet[str]], bool]:
    """Scan comments for suppression pragmas.

    Returns (line -> rule ids, skip_file).  An empty frozenset means the
    whole line is exempt from every rule.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    skip_file = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            if _SKIP_FILE_RE.search(token.string):
                skip_file = True
            # finditer, not search: one comment may carry several pragmas
            # (`# simlint: ignore[SL005] simlint: ignore[SL007]`), and
            # they merge — with a blanket `ignore` absorbing scoped ones.
            for match in _IGNORE_RE.finditer(token.string):
                rules = match.group("rules")
                ids = (
                    frozenset(
                        r.strip().upper() for r in rules.split(",") if r.strip()
                    )
                    if rules
                    else frozenset()
                )
                line = token.start[0]
                existing = suppressions.get(line)
                if existing is not None and (not existing or not ids):
                    ids = frozenset()  # blanket ignore wins
                elif existing is not None:
                    ids = existing | ids
                suppressions[line] = ids
    except tokenize.TokenError:
        pass  # half-written file: the ast parse below reports it
    return suppressions, skip_file


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    is_package: bool = False,
) -> List[Finding]:
    """Run every rule over one in-memory module."""
    if module is None:
        module = module_name_for(list(Path(path).parts))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) or 1,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
            )
        ]
    suppressions, skip_file = parse_suppressions(source)
    ctx = ModuleContext(
        path=path,
        module=module or "",
        is_package=is_package,
        tree=tree,
        source=source,
        suppressions=suppressions,
        skip_file=skip_file,
    )
    findings: List[Finding] = []
    for rule in RULES:
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


class LintCache:
    """Content-addressed per-file result cache.

    Keyed on SHA-256 of (rule-set signature, file path, source bytes), so
    a cache entry is valid exactly as long as neither the file content
    nor any simlint rule code changed — editing a rule module changes the
    package signature and invalidates everything, with no version number
    to forget to bump.  Entries are tiny JSON files under ``root``
    (default ``.simlint_cache/``), sharded by the first two hex digits.

    Only the per-file rules (SL001–SL009) are cacheable; the project
    rules read cross-module state and always run fresh.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key(self, path: str, source: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(ruleset_signature().encode("ascii"))
        digest.update(b"\x00")
        digest.update(path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source)
        return digest.hexdigest()

    def _entry(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[Finding]]:
        entry = self._entry(key)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            findings = [Finding(**item) for item in payload]
        except (OSError, ValueError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, key: str, findings: List[Finding]) -> None:
        entry = self._entry(key)
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            payload = json.dumps([f.to_dict() for f in findings])
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(payload, encoding="utf-8")
            tmp.replace(entry)  # atomic: parallel linters never read torn JSON
        except OSError:
            pass  # a read-only tree just means no warm runs


#: Cached package signature (computed once per process).
_RULESET_SIGNATURE: Optional[str] = None


def ruleset_signature() -> str:
    """SHA-256 over the simlint package's own source files.

    Any edit to the analyzer, a rule, or the project pass changes this,
    which invalidates every :class:`LintCache` entry automatically.
    """
    global _RULESET_SIGNATURE
    if _RULESET_SIGNATURE is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).parent
        for source_file in sorted(package_dir.glob("*.py")):
            digest.update(source_file.name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(source_file.read_bytes())
            digest.update(b"\x00")
        _RULESET_SIGNATURE = digest.hexdigest()
    return _RULESET_SIGNATURE


def lint_file(
    path, module: Optional[str] = None, cache: Optional[LintCache] = None
) -> List[Finding]:
    """Lint one file on disk (optionally through a :class:`LintCache`)."""
    file_path = Path(path)
    raw = file_path.read_bytes()
    if cache is not None:
        key = cache.key(str(file_path), raw)
        cached = cache.get(key)
        if cached is not None:
            return cached
    source = raw.decode("utf-8")
    if module is None:
        module = module_name_for(list(file_path.parts))
    findings = lint_source(
        source,
        path=str(file_path),
        module=module,
        is_package=file_path.name == "__init__.py",
    )
    if cache is not None:
        cache.put(key, findings)
    return findings


def iter_python_files(paths: Iterable) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    De-duplication is by *resolved* path, so the same file reached via
    two spellings (``src/repro`` and ``./src/repro``, a symlinked
    checkout, a redundant CLI argument) lints once; the first spelling
    given is the one findings are reported under.
    """
    seen = set()
    ordered: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Sequence[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def lint_paths(paths: Iterable, cache_dir=None) -> List[Finding]:
    """Lint every python file under ``paths`` (files or directories).

    ``cache_dir`` (a path, or None to disable) routes per-file results
    through a :class:`LintCache` so re-lints only pay for changed files.
    """
    cache = LintCache(cache_dir) if cache_dir is not None else None
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, cache=cache))
    return sorted(findings)
