"""Text and JSON renderers for simlint findings."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import Finding

#: Bumped whenever the JSON shape changes; CI pins on it.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding + a summary."""
    lines = [finding.format() for finding in findings]
    if findings:
        by_rule = rule_counts(findings)
        breakdown = ", ".join(f"{rule} x{count}" for rule, count in by_rule.items())
        lines.append(f"simlint: {len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("simlint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (consumed by the CI ``lint-sim`` step)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "counts_by_rule": rule_counts(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow commands — findings annotate PRs inline.

    One ``::error file=...,line=...,col=...::RULE message`` line per
    finding (the CI ``lint-sim`` step emits this directly), plus the
    same human summary line the text reporter ends with.
    """
    lines = [
        f"::error file={f.path},line={f.line},col={f.col}::{f.rule} {f.message}"
        for f in findings
    ]
    if findings:
        by_rule = rule_counts(findings)
        breakdown = ", ".join(f"{rule} x{count}" for rule, count in by_rule.items())
        lines.append(f"simlint: {len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("simlint: clean")
    return "\n".join(lines)


def rule_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    """Findings per rule id, sorted by id."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def render(findings: List[Finding], fmt: str) -> str:
    """Dispatch on ``fmt`` ("text", "json", or "github")."""
    if fmt == "json":
        return render_json(findings)
    if fmt == "text":
        return render_text(findings)
    if fmt == "github":
        return render_github(findings)
    raise ValueError(f"unknown format {fmt!r}")
