"""Finding model and per-module analysis context for simlint."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports and JSON output are
    stable regardless of rule-execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: RULE message`` (clickable in IDEs)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module under analysis."""

    path: str
    module: str                 # dotted name, e.g. "repro.net.trust"
    is_package: bool            # True for __init__.py files
    tree: ast.AST
    source: str
    #: line -> suppressed rule ids; an empty frozenset means "all rules".
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    skip_file: bool = False

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True if ``rule`` is silenced on ``line`` by an ignore comment."""
        if self.skip_file:
            return True
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return not rules or rule in rules


def module_name_for(path_parts: List[str], package_root: str = "repro") -> Optional[str]:
    """Dotted module name from a file path's parts, or None if the file
    is not inside a ``repro`` package tree (e.g. a test fixture)."""
    if package_root not in path_parts:
        return None
    # Use the *last* occurrence so .../src/repro/... resolves even when a
    # parent directory happens to be called "repro" too.
    index = len(path_parts) - 1 - path_parts[::-1].index(package_root)
    parts = list(path_parts[index:])
    if not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)
