"""The simlint rule registry and the nine shipped rules.

Each rule guards one determinism or hygiene invariant of the simulator
(see DESIGN.md "simlint" for the full rationale).  Rules are plain
objects with a ``check(ctx)`` generator; registration order fixes the
catalog order shown by ``python -m repro lint --list-rules``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .findings import Finding, ModuleContext

#: Packages whose modules form the deterministic simulation core.  They
#: must never import orchestration (runtime), presentation (cli), or
#: benchmark-reporting (analysis.report) layers — see SL006.
SIM_LAYERS = frozenset(
    {
        "core",
        "reliability",
        "energy",
        "radio",
        "net",
        "obsolescence",
        "econ",
        "city",
        "experiment",
        "faults",
        "obs",
    }
)

#: The one module allowed to construct numpy generators directly.
RNG_MODULE = "repro.core.rng"


class Rule:
    """Base class: subclasses set ``id``/``title``/``rationale`` and
    implement :meth:`check`."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for ``node`` under this rule."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


#: Registry in registration order; keyed access via :func:`get_rule`.
RULES: List[Rule] = []


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if any(rule.id == instance.id for rule in RULES):
        raise ValueError(f"duplicate rule id {instance.id}")
    RULES.append(instance)
    return cls


def get_rule(rule_id: str) -> Rule:
    """Look a rule up by id (raises ``KeyError`` if unknown)."""
    for rule in RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the qualified names they were bound from.

    ``import numpy as np`` -> {"np": "numpy"};
    ``from numpy.random import default_rng as rng`` ->
    {"rng": "numpy.random.default_rng"}.  Relative imports are skipped —
    they can only name modules inside ``repro`` itself, which the banned
    lists never match (layering is SL006's job).
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                qualified = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = qualified
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def resolve_dotted(node: ast.AST, names: Dict[str, str]) -> Optional[str]:
    """Qualified dotted name for a Name/Attribute chain, or None.

    ``np.random.default_rng`` with {"np": "numpy"} resolves to
    ``numpy.random.default_rng``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(names.get(node.id, node.id))
    return ".".join(reversed(parts))


def terminal_identifier(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute expression (``sim.now`` ->
    ``now``), or None for other expression kinds."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def resolve_relative(
    ctx: ModuleContext, level: int, module: Optional[str]
) -> Optional[str]:
    """Absolute module named by a relative import in ``ctx``'s module."""
    if ctx.module is None:
        return None
    base = ctx.module.split(".")
    if not ctx.is_package:
        base = base[:-1]
    drop = level - 1
    if drop > len(base):
        return None
    if drop:
        base = base[:-drop]
    if module:
        base = base + module.split(".")
    return ".".join(base) if base else None


# ----------------------------------------------------------------------
# SL001 — banned nondeterminism sources
# ----------------------------------------------------------------------

@register
class BannedNondeterminism(Rule):
    """Wall clocks, the stdlib global RNG, and entropy taps are banned in
    sim code: any of them makes a run irreproducible from its seed."""

    id = "SL001"
    title = "banned nondeterminism source"
    rationale = (
        "Simulation results must be a pure function of the seed; wall-clock "
        "reads, the process-global stdlib RNG, and OS entropy are not."
    )

    BANNED_CALLS = {
        "time.time": "wall-clock read",
        "time.time_ns": "wall-clock read",
        "datetime.datetime.now": "wall-clock read",
        "datetime.datetime.utcnow": "wall-clock read",
        "datetime.datetime.today": "wall-clock read",
        "datetime.date.today": "wall-clock read",
        "os.urandom": "OS entropy tap",
        "os.getrandom": "OS entropy tap",
        "uuid.uuid1": "time/entropy-derived id",
        "uuid.uuid4": "entropy-derived id",
    }
    BANNED_MODULES = {
        "random": "the process-global stdlib RNG",
        "secrets": "OS entropy",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        names = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {root!r} ({self.BANNED_MODULES[root]}); "
                            "derive randomness from RandomStreams",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                root = node.module.split(".")[0]
                if root in self.BANNED_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {root!r} ({self.BANNED_MODULES[root]}); "
                        "derive randomness from RandomStreams",
                    )
            elif isinstance(node, ast.Call):
                resolved = resolve_dotted(node.func, names)
                if resolved is None:
                    continue
                reason = self.BANNED_CALLS.get(resolved)
                root = resolved.split(".")[0]
                if reason is None and root in self.BANNED_MODULES:
                    reason = self.BANNED_MODULES[root]
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to {resolved} ({reason}) breaks seed-determinism",
                    )


# ----------------------------------------------------------------------
# SL002 — ad-hoc numpy generator construction
# ----------------------------------------------------------------------

@register
class AdHocNumpyRng(Rule):
    """Every generator must descend from ``RandomStreams``; an ad-hoc
    ``np.random.default_rng(...)`` silently re-uses or fixes a seed and
    escapes the named-stream independence guarantee."""

    id = "SL002"
    title = "ad-hoc numpy generator outside core/rng"
    rationale = (
        "RandomStreams gives every subsystem an independent, named, "
        "reproducible stream; raw default_rng() calls alias seeds (e.g. two "
        "registries both seeded 0) and perturb other subsystems' draws."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module == RNG_MODULE:
            return
        names = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_dotted(node.func, names)
            if resolved is None:
                continue
            if resolved == "numpy.random.default_rng" or resolved.startswith(
                "numpy.random."
            ) and resolved.split(".")[-1] in {
                "RandomState",
                "seed",
                "SeedSequence",
            }:
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}(...) outside {RNG_MODULE}; derive generators "
                    "from RandomStreams.get(name) / .fork(i)",
                )
            elif resolved.startswith("numpy.random.") and resolved.count(".") == 2:
                # Module-level distribution calls (np.random.random(), ...)
                # draw from numpy's hidden global RandomState.
                attr = resolved.split(".")[-1]
                if attr[:1].islower():
                    yield self.finding(
                        ctx,
                        node,
                        f"{resolved}(...) uses numpy's global RNG state; "
                        "derive generators from RandomStreams",
                    )


# ----------------------------------------------------------------------
# SL003 — implicit Optional annotations
# ----------------------------------------------------------------------

def _annotation_allows_none(node: Optional[ast.AST]) -> bool:
    """True if the annotation already admits ``None``."""
    if node is None:
        # Unannotated: out of scope (that is mypy's job, not simlint's).
        return True
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True
        if isinstance(node.value, str):
            text = node.value
            return "Optional" in text or "None" in text or "Any" in text
        return False
    if isinstance(node, ast.Name):
        return node.id in {"Any", "object", "None"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"Any", "object"}
    if isinstance(node, ast.Subscript):
        head = terminal_identifier(node.value)
        if head == "Optional":
            return True
        if head == "Union":
            inner = node.slice
            # Py<3.9 wraps the slice in ast.Index; unwrap defensively.
            inner = getattr(inner, "value", inner)
            elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            return any(_annotation_allows_none(element) for element in elements)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_allows_none(node.left) or _annotation_allows_none(
            node.right
        )
    return False


def _is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class ImplicitOptional(Rule):
    """``x: T = None`` lies about the type: every consumer sees ``T`` but
    may receive ``None`` — the exact shape of PR 1's latent crashes."""

    id = "SL003"
    title = "implicit-Optional annotation"
    rationale = (
        "A None default (or None-initialised attribute) with a non-Optional "
        "annotation defeats strict-Optional type checking and hides "
        "AttributeErrors until a rarely-taken path runs."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, node)
            elif isinstance(node, ast.AnnAssign):
                if _is_none(node.value) and not _annotation_allows_none(
                    node.annotation
                ):
                    target = ast.unparse(node.target)
                    yield self.finding(
                        ctx,
                        node,
                        f"{target} annotated "
                        f"{ast.unparse(node.annotation)!r} but initialised to "
                        "None; annotate Optional[...] explicitly",
                    )

    def _check_signature(
        self, ctx: ModuleContext, node: ast.FunctionDef
    ) -> Iterator[Finding]:
        args = node.args
        positional = args.posonlyargs + args.args
        padded: List[Tuple[ast.arg, Optional[ast.AST]]] = []
        defaults: List[Optional[ast.AST]] = list(args.defaults)
        defaults = [None] * (len(positional) - len(defaults)) + defaults
        padded.extend(zip(positional, defaults))
        padded.extend(zip(args.kwonlyargs, args.kw_defaults))
        for arg, default in padded:
            if _is_none(default) and not _annotation_allows_none(arg.annotation):
                yield self.finding(
                    ctx,
                    arg,
                    f"parameter {arg.arg!r} annotated "
                    f"{ast.unparse(arg.annotation)!r} but defaults to None; "
                    "annotate Optional[...] explicitly",
                )


# ----------------------------------------------------------------------
# SL004 — mutable default arguments
# ----------------------------------------------------------------------

@register
class MutableDefault(Rule):
    """A mutable default is shared across calls — state leaks between
    simulation runs that must be independent."""

    id = "SL004"
    title = "mutable default argument"
    rationale = (
        "Default values are evaluated once at def time; a list/dict/set "
        "default carries state from one call (and one run) into the next, "
        "breaking run independence."
    )

    MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque",
         "OrderedDict"}
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default {ast.unparse(default)!r} is shared "
                        "across calls; default to None and construct inside",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = terminal_identifier(node.func)
            return name in self.MUTABLE_CALLS
        return False


# ----------------------------------------------------------------------
# SL005 — float equality against simulation time
# ----------------------------------------------------------------------

@register
class FloatTimeEquality(Rule):
    """Simulation timestamps are accumulated floats; ``==`` on them is a
    coin flip that changes with event ordering."""

    id = "SL005"
    title = "float equality against simulation time"
    rationale = (
        "Timestamps come out of repeated float addition, so exact equality "
        "depends on accumulation order; compare with <=/>= windows instead. "
        "(x != x self-comparison is exempt: it is the NaN guard idiom.)"
    )

    TIME_NAMES = frozenset(
        {"t", "time", "now", "clock", "timestamp", "sim_time", "horizon",
         "deadline"}
    )
    TIME_SUFFIXES = ("_time", "_at")

    def _is_time_like(self, node: ast.AST) -> bool:
        name = terminal_identifier(node)
        if name is None:
            return False
        return name in self.TIME_NAMES or name.endswith(self.TIME_SUFFIXES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if ast.dump(left) == ast.dump(right):
                    continue  # NaN-guard idiom (x != x)
                if _is_none(left) or _is_none(right):
                    continue  # == None is odd but not a float hazard
                if self._is_time_like(left) or self._is_time_like(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx,
                        node,
                        f"{symbol} comparison against simulation time "
                        f"({ast.unparse(left)} {symbol} {ast.unparse(right)}); "
                        "use an ordered comparison or an epsilon window",
                    )


# ----------------------------------------------------------------------
# SL006 — layering violations
# ----------------------------------------------------------------------

@register
class LayeringViolation(Rule):
    """Sim-layer packages must stay importable (and picklable) without
    orchestration or presentation code."""

    id = "SL006"
    title = "sim layer imports an upper layer"
    rationale = (
        "repro.runtime forks worker processes that import sim modules; a "
        "sim -> runtime/cli/analysis.report import creates cycles, drags "
        "presentation concerns into workers, and breaks the DESIGN.md layer "
        "diagram."
    )

    BANNED_TARGETS = (
        "repro.runtime",
        "repro.cli",
        "repro.__main__",
        "repro.analysis.report",
        "repro.devtools",
    )

    def _banned(self, target: Optional[str]) -> Optional[str]:
        if target is None:
            return None
        for banned in self.BANNED_TARGETS:
            if target == banned or target.startswith(banned + "."):
                return banned
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module or not ctx.module.startswith("repro."):
            return
        layer = ctx.module.split(".")[1]
        if layer not in SIM_LAYERS:
            return
        for node in ast.walk(ctx.tree):
            targets: List[Optional[str]] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module
                else:
                    base = resolve_relative(ctx, node.level, node.module)
                targets = [base]
                if base is not None:
                    # `from ..analysis import report` binds a submodule:
                    # check each imported name as a module path too.
                    targets.extend(
                        f"{base}.{alias.name}"
                        for alias in node.names
                        if alias.name != "*"
                    )
            else:
                continue
            seen: set = set()
            for target in targets:
                banned = self._banned(target)
                if banned is not None and banned not in seen:
                    seen.add(banned)
                    yield self.finding(
                        ctx,
                        node,
                        f"sim layer {layer!r} imports {banned} (upper layer); "
                        "invert the dependency or move the shared code down",
                    )


# ----------------------------------------------------------------------
# SL007 — non-tuple heap entries
# ----------------------------------------------------------------------

@register
class NonTupleHeapEntry(Rule):
    """Heap entries must be tuple literals keyed ``(time, priority, seq,
    payload)`` so ordering is decided by the key, never by comparing
    payload objects."""

    id = "SL007"
    title = "heappush entry is not a tuple literal"
    rationale = (
        "A non-tuple heap entry makes heapq compare payload objects; that "
        "either needs a total order on the payload (slow rich-comparison "
        "dispatch on the hottest loop in the simulator) or raises TypeError "
        "at the first tie.  Tuple-keyed entries keep ordering explicit, "
        "deterministic, and cheap.  Re-pushing an entry popped from the "
        "same heap is the one legitimate exception — suppress it with "
        "`# simlint: ignore[SL007]`."
    )

    PUSH_CALLS = frozenset({"heappush", "heappushpop", "heapreplace"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        names = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or len(node.args) < 2:
                continue
            resolved = resolve_dotted(node.func, names)
            if resolved is None:
                continue
            parts = resolved.split(".")
            if parts[0] != "heapq" or parts[-1] not in self.PUSH_CALLS:
                continue
            entry = node.args[1]
            if not isinstance(entry, ast.Tuple):
                yield self.finding(
                    ctx,
                    entry,
                    f"{parts[-1]} entry {ast.unparse(entry)!r} is not a tuple "
                    "literal; push an explicit (time, priority, seq, payload) "
                    "key so ordering never falls back to payload comparison",
                )


# ----------------------------------------------------------------------
# SL008 — fault code must draw randomness via RandomStreams
# ----------------------------------------------------------------------

@register
class FaultRandomnessOutsideStreams(Rule):
    """Fault scheduling and targeting may only draw from named
    ``RandomStreams`` generators — that is the whole bit-reproducibility
    contract of ``repro.faults`` (plan + seed identical at any worker
    count, plans composing commutatively)."""

    id = "SL008"
    title = "fault code draws randomness outside RandomStreams"
    rationale = (
        "repro.faults promises that a plan + seed is bit-reproducible at "
        "any worker count and that disjoint plans compose commutatively; "
        "both hold only because every draw comes from a stream named by "
        "the spec's content key.  A draw from any other generator (or a "
        "shared simulation stream) silently re-couples fault targeting to "
        "install order and run layout."
    )

    #: numpy Generator sampling methods a fault could plausibly reach for.
    DRAW_METHODS = frozenset(
        {"random", "integers", "choice", "shuffle", "permutation", "uniform",
         "normal", "standard_normal", "exponential", "poisson", "binomial",
         "weibull", "lognormal", "gamma", "beta"}
    )
    #: Producers whose return value is a RandomStreams-derived generator.
    STREAM_PRODUCERS = frozenset({"rng", "stream_for", "get", "fork"})

    def _stream_derived(self, node: ast.AST) -> bool:
        """True if ``node`` plausibly evaluates to a RandomStreams
        generator: an identifier ending in ``rng``/``stream``, or a
        direct call to a stream producer (``sim.rng("…")``,
        ``controller.stream_for(spec)``, ``streams.get(name)``)."""
        name = terminal_identifier(node)
        if name is not None:
            lowered = name.lower()
            return lowered.endswith("rng") or lowered.endswith("stream")
        if isinstance(node, ast.Call):
            producer = terminal_identifier(node.func)
            return producer in self.STREAM_PRODUCERS
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        module = ctx.module or ""
        if module != "repro.faults" and not module.startswith("repro.faults."):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in self.DRAW_METHODS:
                continue
            if self._stream_derived(node.func.value):
                continue
            yield self.finding(
                ctx,
                node,
                f"draw {ast.unparse(node.func)!r} does not come from a "
                "RandomStreams generator; use controller.stream_for(spec) "
                "(or sim.rng('faults:…')) so plan+seed stays bit-reproducible",
            )


# ----------------------------------------------------------------------
# SL009 — wall-clock reads inside sim layers
# ----------------------------------------------------------------------

@register
class WallClockInSimLayer(Rule):
    """Sim layers must never read any process clock — not even the
    monotonic ones SL001 deliberately allows for benchmark timing."""

    id = "SL009"
    title = "wall-clock read in a sim layer"
    rationale = (
        "SL001 bans epoch clocks everywhere, but perf_counter/monotonic "
        "stay legal for timing harnesses.  Inside sim layers even those "
        "are wrong: a monotonic read can only feed a decision or an "
        "artifact, and either way identical seeds stop producing "
        "identical runs (or identical snapshots).  Timing belongs one "
        "layer up — repro.runtime stamps wall_clock_s around the task "
        "call, and repro.obs snapshots deliberately exclude it."
    )

    WALL_CLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module or not ctx.module.startswith("repro."):
            return
        layer = ctx.module.split(".")[1]
        if layer not in SIM_LAYERS:
            return
        names = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_dotted(node.func, names)
            if resolved in self.WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"call to {resolved} inside sim layer {layer!r}; clocks "
                    "live in repro.runtime/cli/benchmarks — use sim.now for "
                    "simulated time",
                )


def catalog() -> Sequence[Tuple[str, str, str]]:
    """(id, title, rationale) for every registered rule, in order."""
    return [(rule.id, rule.title, rule.rationale) for rule in RULES]
