"""Command-line front end for simlint.

Reachable three ways, all sharing :func:`run`:

* ``python -m repro lint [--format json] [paths...]``
* ``python -m repro.devtools.simlint ...`` (standalone)
* the ``lint-sim`` CI step, which parses the JSON output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analyzer import lint_paths
from .reporters import render
from .rules import catalog


def default_target() -> Path:
    """The installed ``repro`` package — what ``lint`` checks when no
    paths are given."""
    import repro

    return Path(repro.__file__).parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach simlint's options to ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run(
    paths: List[str],
    fmt: str = "text",
    list_rules: bool = False,
) -> int:
    """Lint ``paths`` and print a report; exit code 1 iff findings."""
    if list_rules:
        for rule_id, title, rationale in catalog():
            print(f"{rule_id}  {title}")
            print(f"       {rationale}")
        return 0
    targets = paths or [str(default_target())]
    try:
        findings = lint_paths(targets)
    except FileNotFoundError as error:
        print(f"simlint: {error}", file=sys.stderr)
        return 2
    print(render(findings, fmt))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.simlint``)."""
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="AST-based determinism & unit-hygiene analyzer for centurysim",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run(args.paths, fmt=args.format, list_rules=args.list_rules)
