"""Command-line front end for simlint.

Reachable three ways, all sharing :func:`run`:

* ``python -m repro lint [--project] [--format json|github] [paths...]``
* ``python -m repro.devtools.simlint ...`` (standalone)
* the CI ``lint-sim`` (``--format github``) and ``lint-project``
  (``--project --format json``) steps.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analyzer import lint_paths
from .reporters import render
from .rules import catalog


def default_target() -> Path:
    """The installed ``repro`` package — what ``lint`` checks when no
    paths are given."""
    import repro

    return Path(repro.__file__).parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach simlint's options to ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text; github = workflow annotations)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also run the whole-program pass (SL010-SL014: cross-module "
        "stream/metric/topology/layering/unit contracts)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        nargs="?",
        const=".simlint_cache",
        default=None,
        help="cache per-file results under DIR (default .simlint_cache/), "
        "keyed on content hash + rule-set signature",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run(
    paths: List[str],
    fmt: str = "text",
    list_rules: bool = False,
    project: bool = False,
    cache: Optional[str] = None,
) -> int:
    """Lint ``paths`` and print a report; exit code 1 iff findings."""
    if list_rules:
        from .project_rules import project_catalog

        for rule_id, title, rationale in list(catalog()) + list(project_catalog()):
            print(f"{rule_id}  {title}")
            print(f"       {rationale}")
        return 0
    targets = paths or [str(default_target())]
    try:
        findings = lint_paths(targets, cache_dir=cache)
        if project:
            from .project_rules import lint_project

            findings = sorted(findings + lint_project(targets))
    except FileNotFoundError as error:
        print(f"simlint: {error}", file=sys.stderr)
        return 2
    print(render(findings, fmt))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.simlint``)."""
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="AST-based determinism & unit-hygiene analyzer for centurysim",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run(
        args.paths,
        fmt=args.format,
        list_rules=args.list_rules,
        project=args.project,
        cache=args.cache,
    )
