"""The cross-module simlint rules, SL010–SL014.

Each rule runs against a :class:`~.project.ProjectIndex` instead of one
module's AST, which is what lets it see the bug classes the repo has
actually shipped fixes for: RNG stream aliasing between subsystems
(PR 1), stale topology caches (PR 3/6), and metric shape collisions
(PR 5).  Findings reuse the per-file :class:`~.findings.Finding` model
and the in-place ``# simlint: ignore[SL01x]`` pragma semantics, so the
reporters, the JSON schema, and the suppression discipline are shared
with SL001–SL009.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .project import (
    CallFact,
    FunctionFact,
    MetricFact,
    ProjectIndex,
    RESERVED_STREAM_PREFIXES,
    StreamFact,
    unit_suffix,
)
from .rules import SIM_LAYERS


class ProjectRule:
    """Base class for whole-program rules: ``check`` sees the index."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str, col: int = 1) -> Finding:
        return Finding(path=path, line=line, col=col, rule=self.id, message=message)


#: Registry in catalog order (continues the per-file RULES numbering).
PROJECT_RULES: List[ProjectRule] = []


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if any(rule.id == instance.id for rule in PROJECT_RULES):
        raise ValueError(f"duplicate rule id {instance.id}")
    PROJECT_RULES.append(instance)
    return cls


def get_project_rule(rule_id: str) -> ProjectRule:
    """Look a project rule up by id (raises ``KeyError`` if unknown)."""
    for rule in PROJECT_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)


def _site(fact) -> str:
    return f"{fact.module}:{fact.line}"


# ----------------------------------------------------------------------
# SL010 — duplicate RNG stream names across subsystems
# ----------------------------------------------------------------------

@register
class DuplicateStreamName(ProjectRule):
    """Two subsystems claiming one stream name silently share draws —
    the exact aliasing class PR 1 fixed dynamically, now caught
    statically before it runs."""

    id = "SL010"
    title = "RNG stream name claimed by distinct subsystems"
    rationale = (
        "RandomStreams guarantees independence *per name*: two subsystems "
        "using the same name share one generator, so adding a draw in one "
        "perturbs the other (the PR 1 aliasing bug).  Within one subsystem "
        "a shared name can be a contract (the cohort engine replays the "
        "per-device streams bit-exactly and so must share them); across "
        "top-level packages it is almost certainly an accident.  The "
        "'faults:' prefix is reserved for the fault controller's "
        "content-keyed streams."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        claims: Dict[str, List[StreamFact]] = {}
        for fact in index.stream_claims():
            if fact.api == "fork" or fact.name is None:
                continue
            claims.setdefault(fact.name, []).append(fact)
        for name in sorted(claims):
            facts = claims[name]
            packages = sorted(
                {index.modules[f.module].package for f in facts}
            )
            if len(packages) > 1:
                for fact in facts:
                    others = ", ".join(
                        _site(f)
                        for f in facts
                        if index.modules[f.module].package
                        != index.modules[fact.module].package
                    )
                    yield self.finding(
                        fact.path,
                        fact.line,
                        f"stream {name!r} is also claimed by another "
                        f"subsystem ({others}); shared names share draws — "
                        "rename one (e.g. prefix with the package name)",
                    )
        # Reserved prefixes: literal names and f-string prefixes both count.
        for fact in index.stream_claims():
            if fact.api == "fork":
                continue
            text = fact.name if fact.name is not None else (fact.prefix or "")
            for prefix, owner in sorted(RESERVED_STREAM_PREFIXES.items()):
                if text.startswith(prefix) and (
                    index.modules[fact.module].package != owner
                ):
                    yield self.finding(
                        fact.path,
                        fact.line,
                        f"stream name {text!r} uses the {prefix!r} prefix "
                        f"reserved for repro.{owner} content-keyed streams",
                    )


# ----------------------------------------------------------------------
# SL011 — topology mutation without a topology_version bump
# ----------------------------------------------------------------------

@register
class TopologyMutationWithoutBump(ProjectRule):
    """``topology_version`` is the only invalidation signal the
    candidate-gateway, live-hotspot, and spatial-index caches have; a
    mutation path that skips the bump serves stale topology forever."""

    id = "SL011"
    title = "topology mutation without topology_version bump"
    rationale = (
        "Every cache derived from the entity graph (device candidate "
        "lists, live_hotspots, GatewayIndex) is keyed on "
        "sim.topology_version and revalidated by comparison, never by "
        "callback.  A function that rewires depends_on/dependents or "
        "flips an entity's state without bumping the version in the same "
        "function is the PR 3/6 stale-cache class: everything keeps "
        "running, against yesterday's topology."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for fact in index.topology_mutations():
            if fact.bumps_version:
                continue
            summary = ", ".join(dict.fromkeys(fact.mutations))
            yield self.finding(
                fact.path,
                fact.line,
                f"{fact.function}() mutates the entity graph ({summary}) "
                "but never bumps sim.topology_version; version-keyed "
                "caches will serve the old topology",
            )


# ----------------------------------------------------------------------
# SL012 — metric registered with conflicting shapes across modules
# ----------------------------------------------------------------------

@register
class ConflictingMetricRegistration(ProjectRule):
    """One metric name must mean one thing everywhere: one instrument
    kind, one label schema, one gauge aggregation, one edge vector."""

    id = "SL012"
    title = "metric name registered with conflicting kind or labels"
    rationale = (
        "MetricsRegistry raises on a cross-kind re-registration — but only "
        "when both sites run in the *same* simulation, so a conflict "
        "between two scenarios ships silently until someone composes "
        "them.  Conflicting label-key sets are worse: both register "
        "cleanly, and the merged snapshot holds two incompatible series "
        "under one name.  The registry's runtime check, made whole-program "
        "and static."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        by_name: Dict[str, List[MetricFact]] = {}
        for fact in index.metric_registrations():
            if fact.name is None:
                continue
            by_name.setdefault(fact.name, []).append(fact)
        for name in sorted(by_name):
            facts = by_name[name]
            yield from self._kind_conflicts(name, facts)
            yield from self._label_conflicts(name, facts, index)
            yield from self._gauge_agg_conflicts(name, facts)
            yield from self._edge_conflicts(name, facts)

    def _kind_conflicts(
        self, name: str, facts: List[MetricFact]
    ) -> Iterator[Finding]:
        kinds = sorted({f.kind for f in facts})
        if len(kinds) <= 1:
            return
        for fact in facts:
            others = ", ".join(
                f"{f.kind} at {_site(f)}" for f in facts if f.kind != fact.kind
            )
            yield self.finding(
                fact.path,
                fact.line,
                f"metric {name!r} registered as {fact.kind} here but also "
                f"as {others}; one name, one instrument kind",
            )

    def _label_conflicts(
        self, name: str, facts: List[MetricFact], index: ProjectIndex
    ) -> Iterator[Finding]:
        concrete = [f for f in facts if not f.dynamic_labels]
        by_module_keys = {(f.module, f.label_keys) for f in concrete}
        key_sets = {keys for _, keys in by_module_keys}
        if len(key_sets) <= 1:
            return
        # Only a *cross-module* disagreement is reportable: within one
        # module, distinct label sets under one name would already be a
        # single reviewable diff.
        modules_by_keys: Dict[frozenset, Set[str]] = {}
        for module, keys in by_module_keys:
            modules_by_keys.setdefault(keys, set()).add(module)
        if len({m for ms in modules_by_keys.values() for m in ms}) <= 1:
            return
        for fact in concrete:
            others = sorted(
                f"{{{', '.join(sorted(f.label_keys)) or 'no labels'}}} at {_site(f)}"
                for f in concrete
                if f.label_keys != fact.label_keys and f.module != fact.module
            )
            if not others:
                continue
            yield self.finding(
                fact.path,
                fact.line,
                f"metric {name!r} registered with label keys "
                f"{{{', '.join(sorted(fact.label_keys)) or 'no labels'}}} here "
                f"but with {'; '.join(others)}; merged snapshots would hold "
                "incompatible series under one name",
            )

    def _gauge_agg_conflicts(
        self, name: str, facts: List[MetricFact]
    ) -> Iterator[Finding]:
        gauges = [f for f in facts if f.kind == "gauge" and f.agg is not None]
        aggs = sorted({f.agg for f in gauges})
        if len(aggs) <= 1:
            return
        for fact in gauges:
            others = ", ".join(
                f"agg={f.agg!r} at {_site(f)}" for f in gauges if f.agg != fact.agg
            )
            yield self.finding(
                fact.path,
                fact.line,
                f"gauge {name!r} registered with agg={fact.agg!r} here but "
                f"{others}; snapshot merge needs one aggregation per name",
            )

    def _edge_conflicts(
        self, name: str, facts: List[MetricFact]
    ) -> Iterator[Finding]:
        hists = [f for f in facts if f.kind == "histogram" and f.edges is not None]
        edge_sets = {f.edges for f in hists}
        if len(edge_sets) <= 1:
            return
        for fact in hists:
            others = ", ".join(
                f"{f.edges} at {_site(f)}" for f in hists if f.edges != fact.edges
            )
            yield self.finding(
                fact.path,
                fact.line,
                f"histogram {name!r} registered with edges {fact.edges} here "
                f"but {others}; bucket merges require identical edges",
            )


# ----------------------------------------------------------------------
# SL013 — import cycles and the declared package DAG
# ----------------------------------------------------------------------

@register
class ImportGraphViolation(ProjectRule):
    """The whole-graph successor to SL006: no import-time module cycles,
    and every cross-package import must be an edge of the DAG declared
    in ``[tool.simlint.layers]`` (pyproject.toml)."""

    id = "SL013"
    title = "import cycle or undeclared cross-package import"
    rationale = (
        "SL006 bans a fixed list of upward imports per file; SL013 checks "
        "the whole graph.  Import-time module cycles make module "
        "initialization order-dependent (and pickling from worker "
        "processes fragile), so they are banned outright — break one with "
        "a deferred (function-scope) import, the sanctioned idiom already "
        "used for the runtime/experiment inversion.  Cross-package edges "
        "must appear in the [tool.simlint.layers] DAG, so adding a "
        "dependency between subsystems is a reviewable pyproject.toml "
        "diff, not an accident.  Deferred imports are exempt from the DAG "
        "(they cannot create import-time cycles); SL006 still polices the "
        "always-banned upward ones."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        yield from self._cycles(index)
        yield from self._dag(index)

    # -- cycle detection (top-level runtime imports only) ---------------

    def _cycles(self, index: ProjectIndex) -> Iterator[Finding]:
        graph = index.import_graph(top_level_only=True, include_type_only=False)
        for scc in _strongly_connected(graph):
            if len(scc) < 2:
                continue
            members = sorted(scc)
            anchor = members[0]
            target = next(t for t in graph[anchor] if t in scc)
            line = index.import_line(anchor, target)
            yield self.finding(
                index.modules[anchor].path,
                line,
                "import cycle at module import time: "
                + " <-> ".join(members)
                + "; defer one import into the function that needs it",
            )

    # -- declared package DAG -------------------------------------------

    def _dag(self, index: ProjectIndex) -> Iterator[Finding]:
        layers = index.config.layers
        if layers is None:
            return  # no [tool.simlint.layers] table: DAG check disabled
        pyproject = index.config.pyproject_path or "pyproject.toml"
        cycle = _declared_cycle(layers)
        if cycle:
            yield self.finding(
                pyproject,
                1,
                "[tool.simlint.layers] declares a cyclic DAG: "
                + " -> ".join(cycle),
            )
            return
        for (src, dst), facts in sorted(index.package_edges().items()):
            allowed = layers.get(src)
            fact = facts[0]
            if allowed is None:
                yield self.finding(
                    index.modules[fact.module].path,
                    fact.line,
                    f"package {src!r} imports {dst!r} but has no entry in "
                    "[tool.simlint.layers]; declare its allowed imports",
                )
            elif dst not in allowed:
                for fact in facts:
                    yield self.finding(
                        index.modules[fact.module].path,
                        fact.line,
                        f"package {src!r} imports {dst!r}, not an edge of "
                        "the [tool.simlint.layers] DAG; declare it there "
                        "or invert the dependency",
                    )


def _strongly_connected(graph: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan's SCCs, iterative (deterministic order, no recursion cap)."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = graph.get(node, [])
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index_of:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            if low[node] == index_of[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _declared_cycle(layers: Dict[str, Tuple[str, ...]]) -> Optional[List[str]]:
    """A cycle in the declared DAG itself, or None if it is acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {name: WHITE for name in layers}
    trail: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        color[node] = GREY
        trail.append(node)
        for succ in layers.get(node, ()):
            if color.get(succ, BLACK) == GREY:
                return trail[trail.index(succ):] + [succ]
            if color.get(succ) == WHITE:
                found = visit(succ)
                if found:
                    return found
        trail.pop()
        color[node] = BLACK
        return None

    for name in sorted(layers):
        if color[name] == WHITE:
            found = visit(name)
            if found:
                return found
    return None


# ----------------------------------------------------------------------
# SL014 — unit-suffix mismatches at call sites
# ----------------------------------------------------------------------

@register
class UnitSuffixMismatch(ProjectRule):
    """A seconds value flowing into a meters parameter type-checks,
    runs, and is wrong for fifty simulated years."""

    id = "SL014"
    title = "unit-suffixed argument mismatches the parameter's unit"
    rationale = (
        "All state is kept in SI base units and the suffix convention "
        "(_s seconds, _m meters, _j joules, _w watts) is the only place "
        "the unit is written down — Python will happily pass airtime_s "
        "where a distance_m is expected.  With the whole-program symbol "
        "table, the suffix at the call site can be checked against the "
        "suffix in the public sim-layer signature it feeds."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        table = self._public_sim_functions(index)
        for info in index.infos():
            for call in info.calls:
                yield from self._check_call(call, table, index)

    def _public_sim_functions(
        self, index: ProjectIndex
    ) -> Dict[str, List[FunctionFact]]:
        table: Dict[str, List[FunctionFact]] = {}
        for name, facts in index.functions_by_name().items():
            kept = [
                fact
                for fact in facts
                if fact.is_public
                and index.modules[fact.module].package in SIM_LAYERS
            ]
            if kept:
                table[name] = kept
        return table

    def _check_call(
        self,
        call: CallFact,
        table: Dict[str, List[FunctionFact]],
        index: ProjectIndex,
    ) -> Iterator[Finding]:
        candidates = table.get(call.callee)
        if not candidates:
            return
        if not call.is_attribute and call.resolved and "." in call.resolved:
            # `module.func(...)` / `from x import func` — narrow to the
            # module the import map names, when it is indexed.
            narrowed = [
                fact
                for fact in candidates
                if call.resolved in (fact.name, f"{fact.module}.{fact.name}")
            ]
            if narrowed:
                candidates = narrowed
        for position, arg_name in enumerate(call.positional):
            arg_unit = unit_suffix(arg_name)
            if arg_unit is None:
                continue
            verdicts = [
                self._positional_mismatch(fact, position, arg_unit)
                for fact in candidates
            ]
            # Flag only when *every* plausible callee disagrees with the
            # argument's unit — name collisions stay silent.
            if verdicts and all(v is not None for v in verdicts):
                param = verdicts[0]
                yield self.finding(
                    call.path,
                    call.line,
                    f"{call.callee}() argument {position + 1} is "
                    f"{arg_name!r} (unit '_{arg_unit}') but the parameter "
                    f"is {param!r} — mismatched unit suffix",
                )
        for kw_name, value_name in call.keywords:
            kw_unit = unit_suffix(kw_name)
            value_unit = unit_suffix(value_name)
            if kw_unit is None or value_unit is None or kw_unit == value_unit:
                continue
            if any(
                kw_name in fact.params or kw_name in fact.kwonly
                for fact in candidates
            ):
                yield self.finding(
                    call.path,
                    call.line,
                    f"{call.callee}(..., {kw_name}={value_name}) passes a "
                    f"'_{value_unit}' value into a '_{kw_unit}' parameter "
                    "— mismatched unit suffix",
                )

    @staticmethod
    def _positional_mismatch(
        fact: FunctionFact, position: int, arg_unit: str
    ) -> Optional[str]:
        """The conflicting parameter name, or None if compatible."""
        if position >= len(fact.params):
            return None
        param = fact.params[position]
        param_unit = unit_suffix(param)
        if param_unit is None or param_unit == arg_unit:
            return None
        return param


def project_catalog() -> Sequence[Tuple[str, str, str]]:
    """(id, title, rationale) for every project rule, in order."""
    return [(rule.id, rule.title, rule.rationale) for rule in PROJECT_RULES]


def lint_project(paths) -> List[Finding]:
    """Build a :class:`ProjectIndex` over ``paths`` and run SL010–SL014.

    Suppressions are honored exactly as in the per-file pass: an
    ``# simlint: ignore[SL011]`` pragma on the finding's line (in the
    file the finding points at) silences it.
    """
    index = ProjectIndex.build(paths)
    return lint_index(index)


def lint_index(index: ProjectIndex) -> List[Finding]:
    """Run every project rule over an already-built index."""
    path_to_info = {info.path: info for info in index.infos()}
    findings: List[Finding] = []
    for rule in PROJECT_RULES:
        for finding in rule.check(index):
            info = path_to_info.get(finding.path)
            if info is not None and info.is_suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(set(findings))
