"""Deterministic parallel Monte-Carlo execution layer.

One simulation run is single-threaded by design; a *study* of many
seeds is embarrassingly parallel.  This package fans runs across worker
processes while guaranteeing bit-identical aggregates at any worker
count — seeds are fixed up front via the hash-chained
:meth:`repro.core.rng.RandomStreams.fork` lineage, and results are
reassembled in run order.
"""

from .runner import (
    MonteCarloRunner,
    MonteCarloStudy,
    MonteCarloTask,
    RunResult,
    ScenarioTask,
    derive_seeds,
)

__all__ = [
    "MonteCarloRunner",
    "MonteCarloStudy",
    "MonteCarloTask",
    "RunResult",
    "ScenarioTask",
    "derive_seeds",
]
