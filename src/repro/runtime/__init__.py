"""Deterministic parallel and distributed Monte-Carlo execution.

One simulation run is single-threaded by design; a *study* of many
seeds is embarrassingly parallel.  Three layers compose:

* :mod:`repro.runtime.queue` — the dynamic work-queue scheduler:
  adaptive chunking, per-run failure capture, broken-pool recovery,
  and an in-order collector that makes streaming memory-bounded.
* :mod:`repro.runtime.runner` — :class:`MonteCarloRunner`, the study
  front-end: seed schedules via the hash-chained
  :meth:`repro.core.rng.RandomStreams.fork` lineage, bit-identical
  aggregates at any worker count.
* :mod:`repro.runtime.shard` — on-disk shard artifacts (``.mcr``) and
  the multi-host merge: a study partitioned across hosts merges back
  byte-identical to the unsharded single-process run.
"""

from .queue import (
    ExecutionReport,
    ExecutionStats,
    FailedRun,
    MonteCarloExecutionError,
    execute_runs,
    resolve_workers,
)
from .runner import (
    MonteCarloRunner,
    MonteCarloStudy,
    MonteCarloTask,
    RunResult,
    ScenarioTask,
    derive_seeds,
    study_metrics_entries,
)
from .shard import (
    SHARD_FORMAT_VERSION,
    ShardError,
    ShardManifest,
    ShardRunReport,
    ShardWriter,
    iter_shard,
    load_shard,
    merge_shards,
    read_manifest,
    run_shard,
    shard_indices,
    task_fingerprint,
)

__all__ = [
    "ExecutionReport",
    "ExecutionStats",
    "FailedRun",
    "MonteCarloExecutionError",
    "MonteCarloRunner",
    "MonteCarloStudy",
    "MonteCarloTask",
    "RunResult",
    "SHARD_FORMAT_VERSION",
    "ScenarioTask",
    "ShardError",
    "ShardManifest",
    "ShardRunReport",
    "ShardWriter",
    "derive_seeds",
    "execute_runs",
    "iter_shard",
    "load_shard",
    "merge_shards",
    "read_manifest",
    "resolve_workers",
    "run_shard",
    "shard_indices",
    "study_metrics_entries",
    "task_fingerprint",
]
