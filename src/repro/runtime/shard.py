"""On-disk shard artifacts for multi-host Monte-Carlo studies.

A study over ``runs`` seeds can be partitioned into ``N`` shards, shard
``i`` owning the seed-schedule residue class ``{k : k ≡ i (mod N)}``.
Because every run's seed depends only on ``(base_seed, k)`` (see
:func:`~repro.runtime.runner.derive_seeds`) and the snapshot-merge
algebra in :mod:`repro.obs` is commutative and associative, shards can
execute on different processes *or different hosts* and still merge to
a study byte-identical to the unsharded ``--workers 1`` run.

Shard artifact format, version 1 (``.mcr``, JSON lines)::

    {"kind":"mcr-header", "version":1, "task_digest":"sha256:…",
     "label":…, "base_seed":…, "runs":…, "shard":…, "nshards":…,
     "indices":[…]}
    {"kind":"run", "index":k, "seed":…, "sample":…, "wall_clock_s":…,
     "fault_stream":[[t,key,action,[targets…]],…], "metrics":{…}}
    {"kind":"failed", "index":k, "seed":…, "error":…, "traceback":…}
    {"kind":"mcr-footer", "completed":[…], "failed":[…],
     "lines":n, "content_sha256":"…"}

Every line is canonical JSON (sorted keys, compact separators).  Run
lines appear in ascending index order and are **streamed**: the writer
receives each result from the scheduler's in-order collector and writes
it immediately, so executing a shard holds O(workers) results resident,
never O(runs).  The footer carries a SHA-256 over every preceding byte,
making the artifact content-addressed: the merge refuses a shard whose
body does not hash to its footer (truncation, bit rot, or concatenation
accidents all surface as :class:`ShardError`).

Like the FaultPlan JSON convention, the format version is explicit and
this module reads exactly the version it writes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..analysis.uptime import MonteCarloUptime
from ..faults import fault_stream_from_json, fault_stream_to_json
from ..obs import MetricsSnapshot
from .queue import ExecutionStats, FailedRun, execute_runs, resolve_workers
from .runner import MonteCarloStudy, MonteCarloTask, RunResult, _execute, derive_seeds

#: The shard artifact format version this module reads and writes.
SHARD_FORMAT_VERSION = 1

#: Conventional suffix for shard artifacts.
SHARD_SUFFIX = ".mcr"


class ShardError(ValueError):
    """A malformed, corrupt, or incompatible shard artifact."""


def shard_indices(runs: int, shard: int, nshards: int) -> List[int]:
    """The deterministic slice of run indices shard ``shard`` owns.

    ``{k : k ≡ shard (mod nshards)}`` — a residue class, so the N
    slices tile the full schedule exactly and a run's seed never
    depends on how many shards execute it (the property suite asserts
    both).
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if nshards < 1:
        raise ValueError("nshards must be >= 1")
    if not 0 <= shard < nshards:
        raise ValueError(
            f"shard must be in [0, {nshards}), got {shard}"
        )
    return list(range(shard, runs, nshards))


def _jsonable(value: object) -> object:
    """Canonical JSON projection of a task field for fingerprinting."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return repr(value)


def task_fingerprint(task: MonteCarloTask) -> str:
    """A content digest of *what* a task computes.

    Two shards merge only if they ran the same task: same scenario,
    horizon, overrides, fault plan — everything that determines a run
    given ``(index, seed)``.  Frozen-dataclass tasks (the normal case)
    digest their full field contents; arbitrary callables fall back to
    their qualified name.
    """
    if dataclasses.is_dataclass(task) and not isinstance(task, type):
        payload: Dict[str, object] = {
            "type": f"{type(task).__module__}.{type(task).__qualname__}"
        }
        for f in dataclasses.fields(task):
            payload[f.name] = _jsonable(getattr(task, f.name))
    else:
        qualname = getattr(task, "__qualname__", None) or type(task).__qualname__
        module = getattr(task, "__module__", type(task).__module__)
        payload = {"type": f"{module}.{qualname}"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardManifest:
    """The header of a shard artifact: what was run and which slice."""

    task_digest: str
    label: str
    base_seed: int
    runs: int
    shard: int
    nshards: int
    indices: Tuple[int, ...]
    version: int = SHARD_FORMAT_VERSION

    def to_dict(self) -> dict:
        return {
            "kind": "mcr-header",
            "version": self.version,
            "task_digest": self.task_digest,
            "label": self.label,
            "base_seed": self.base_seed,
            "runs": self.runs,
            "shard": self.shard,
            "nshards": self.nshards,
            "indices": list(self.indices),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardManifest":
        if payload.get("kind") != "mcr-header":
            raise ShardError(
                f"not a shard artifact: first line kind is "
                f"{payload.get('kind')!r}, expected 'mcr-header'"
            )
        version = payload.get("version")
        if version != SHARD_FORMAT_VERSION:
            raise ShardError(
                f"unsupported shard format version {version!r} "
                f"(this build reads version {SHARD_FORMAT_VERSION})"
            )
        return cls(
            task_digest=str(payload["task_digest"]),
            label=str(payload["label"]),
            base_seed=int(payload["base_seed"]),
            runs=int(payload["runs"]),
            shard=int(payload["shard"]),
            nshards=int(payload["nshards"]),
            indices=tuple(int(k) for k in payload["indices"]),
            version=int(version),
        )


def _canonical_line(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


class ShardWriter:
    """Stream one shard's results to disk as they complete.

    Used as the scheduler's ``consume``/``on_failure`` sinks: each
    result is serialized and dropped immediately, which is what keeps a
    10k-run shard at O(workers) resident results.  ``close`` seals the
    artifact with the content-hash footer; an unsealed file is invalid
    by construction (the reader requires the footer), so a crashed
    shard run can never merge.
    """

    def __init__(self, path: str, manifest: ShardManifest) -> None:
        self.path = str(path)
        self.manifest = manifest
        self._hash = hashlib.sha256()
        self._handle = open(self.path, "w", encoding="utf-8", newline="")
        self._lines = 0
        self.completed: List[int] = []
        self.failed: List[int] = []
        self._closed = False
        self._emit(manifest.to_dict())

    def _emit(self, payload: dict) -> None:
        line = _canonical_line(payload)
        self._handle.write(line)
        self._hash.update(line.encode("utf-8"))
        self._lines += 1

    def write_result(self, result: RunResult) -> None:
        """Append one successful run (must arrive in index order)."""
        if result.index not in self.manifest.indices:
            raise ShardError(
                f"run index {result.index} is not in this shard's slice"
            )
        self._emit(
            {
                "kind": "run",
                "index": result.index,
                "seed": result.seed,
                "sample": result.sample,
                "wall_clock_s": result.wall_clock_s,
                "fault_stream": fault_stream_to_json(result.fault_stream),
                "metrics": result.metrics.to_dict(),
            }
        )
        self.completed.append(result.index)

    def write_failure(self, failed: FailedRun) -> None:
        """Append one failed-run record."""
        self._emit(
            {
                "kind": "failed",
                "index": failed.index,
                "seed": failed.seed,
                "error": failed.error,
                "traceback": failed.traceback,
            }
        )
        self.failed.append(failed.index)

    @property
    def content_sha256(self) -> str:
        """Digest over every line written so far (final at close)."""
        return self._hash.hexdigest()

    def close(self) -> None:
        if self._closed:
            return
        footer = {
            "kind": "mcr-footer",
            "completed": self.completed,
            "failed": self.failed,
            "lines": self._lines,
            "content_sha256": self._hash.hexdigest(),
        }
        self._handle.write(_canonical_line(footer))
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Seal only clean executions; a crashed shard must stay invalid.
        if exc_type is None:
            self.close()
        else:
            self._handle.close()


ShardEntry = Union[Tuple[str, RunResult], Tuple[str, FailedRun]]


def read_manifest(path: str) -> ShardManifest:
    """Read just the header line of a shard artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
    if not first:
        raise ShardError(f"{path}: empty file")
    try:
        payload = json.loads(first)
    except json.JSONDecodeError as exc:
        raise ShardError(f"{path}: malformed header line: {exc}") from None
    return ShardManifest.from_dict(payload)


def _result_from_payload(payload: dict) -> RunResult:
    return RunResult(
        index=int(payload["index"]),
        seed=int(payload["seed"]),
        sample=float(payload["sample"]),
        wall_clock_s=float(payload.get("wall_clock_s", 0.0)),
        metrics=MetricsSnapshot.from_dict(payload.get("metrics", {})),
        fault_stream=fault_stream_from_json(payload.get("fault_stream", [])),
    )


def iter_shard(path: str) -> Iterator[ShardEntry]:
    """Yield ``("run", RunResult)`` / ``("failed", FailedRun)`` entries.

    Entries stream in the order they were written (ascending index).
    The content hash is verified incrementally; a missing footer, a
    hash mismatch, or trailing bytes raise :class:`ShardError`.  O(1)
    memory — the merge reads ten shards of a 100k-run study without
    materializing any of them.
    """
    running = hashlib.sha256()
    footer: Optional[dict] = None
    body_lines = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if footer is not None:
                raise ShardError(f"{path}: content after footer line")
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ShardError(f"{path}: malformed line: {exc}") from None
            kind = payload.get("kind")
            if kind == "mcr-footer":
                footer = payload
                continue
            running.update(line.encode("utf-8"))
            body_lines += 1
            if kind == "mcr-header":
                continue
            if kind == "run":
                yield "run", _result_from_payload(payload)
            elif kind == "failed":
                yield "failed", FailedRun(
                    index=int(payload["index"]),
                    seed=int(payload["seed"]),
                    error=str(payload.get("error", "")),
                    traceback=str(payload.get("traceback", "")),
                )
            else:
                raise ShardError(f"{path}: unknown line kind {kind!r}")
    if footer is None:
        raise ShardError(
            f"{path}: no footer — the shard run did not complete cleanly"
        )
    if footer.get("content_sha256") != running.hexdigest():
        raise ShardError(
            f"{path}: content hash mismatch — artifact is corrupt "
            f"(footer {footer.get('content_sha256')!r}, "
            f"body {running.hexdigest()!r})"
        )
    if footer.get("lines") != body_lines:
        raise ShardError(
            f"{path}: footer records {footer.get('lines')} lines, "
            f"found {body_lines}"
        )


def load_shard(
    path: str,
) -> Tuple[ShardManifest, List[RunResult], List[FailedRun]]:
    """Eagerly read and verify one shard artifact."""
    manifest = read_manifest(path)
    results: List[RunResult] = []
    failures: List[FailedRun] = []
    for kind, entry in iter_shard(path):
        if kind == "run":
            results.append(entry)
        else:
            failures.append(entry)
    return manifest, results, failures


@dataclass(frozen=True)
class ShardRunReport:
    """Summary of one executed shard, for the CLI and tests."""

    manifest: ShardManifest
    path: str
    content_sha256: str
    completed: int
    failed: int
    wall_clock_s: float
    stats: ExecutionStats

    def summary_lines(self) -> List[str]:
        m = self.manifest
        return [
            f"{m.label}: shard {m.shard}/{m.nshards} — "
            f"{self.completed} of {len(m.indices)} run(s) completed"
            + (f", {self.failed} failed" if self.failed else "")
            + f", {self.wall_clock_s:.2f} s wall-clock",
            f"artifact: {self.path} (format v{m.version}, "
            f"sha256:{self.content_sha256})",
        ]


def run_shard(
    task: MonteCarloTask,
    runs: int,
    base_seed: int,
    shard: int,
    nshards: int,
    out_path: str,
    workers: int = 1,
    label: Optional[str] = None,
) -> ShardRunReport:
    """Execute one shard of a study and write its artifact.

    The seed schedule is the **full** study's — :func:`derive_seeds`
    over all ``runs`` indices, then sliced to this shard's residue
    class — so the seed a run sees is independent of ``nshards``.
    Results stream to ``out_path`` through :class:`ShardWriter` as the
    scheduler completes them.
    """
    started = time.perf_counter()
    indices = shard_indices(runs, shard, nshards)
    schedule = derive_seeds(base_seed, runs)
    pairs = [(k, schedule[k]) for k in indices]
    manifest = ShardManifest(
        task_digest=task_fingerprint(task),
        label=label or getattr(task, "scenario", type(task).__name__),
        base_seed=int(base_seed),
        runs=int(runs),
        shard=int(shard),
        nshards=int(nshards),
        indices=tuple(indices),
    )
    with ShardWriter(out_path, manifest) as writer:
        report = execute_runs(
            _execute,
            task,
            pairs,
            workers=resolve_workers(workers),
            consume=writer.write_result,
            on_failure=writer.write_failure,
        )
        digest = writer.content_sha256
        completed = len(writer.completed)
        failed = len(writer.failed)
    return ShardRunReport(
        manifest=manifest,
        path=str(out_path),
        content_sha256=digest,
        completed=completed,
        failed=failed,
        wall_clock_s=time.perf_counter() - started,
        stats=report.stats,
    )


def _validate_cover(manifests: Sequence[ShardManifest], paths: Sequence[str]) -> None:
    """Merge preconditions: same study, disjoint complete index cover."""
    first = manifests[0]
    for manifest, path in zip(manifests, paths):
        for field_name in ("task_digest", "base_seed", "runs", "label"):
            mine = getattr(manifest, field_name)
            theirs = getattr(first, field_name)
            if mine != theirs:
                raise ShardError(
                    f"{path}: {field_name} mismatch — shard has {mine!r}, "
                    f"{paths[0]} has {theirs!r}; shards must come from the "
                    f"same study definition"
                )
    owner: Dict[int, str] = {}
    for manifest, path in zip(manifests, paths):
        for index in manifest.indices:
            if index in owner:
                raise ShardError(
                    f"index {index} appears in both {owner[index]} and "
                    f"{path}; shard slices must be disjoint"
                )
            if not 0 <= index < first.runs:
                raise ShardError(
                    f"{path}: index {index} outside study range "
                    f"[0, {first.runs})"
                )
            owner[index] = path
    missing = [k for k in range(first.runs) if k not in owner]
    if missing:
        preview = ", ".join(str(k) for k in missing[:8])
        raise ShardError(
            f"shards do not cover the study: {len(missing)} of "
            f"{first.runs} indices missing (first: {preview}); "
            f"supply every shard of the partition"
        )


def merge_shards(paths: Sequence[str]) -> MonteCarloStudy:
    """Reassemble shard artifacts into the exact unsharded study.

    Validates the manifests (same task digest, base seed, run count;
    disjoint slices that cover every index; verified content hashes),
    then interleaves the per-shard streams back into global index
    order.  Uptime aggregate, per-run results, fault streams, and
    merged metrics are all byte-identical to a single-process run of
    the same study — determinism makes the merge exact, not
    approximate.
    """
    if not paths:
        raise ShardError("no shard artifacts given")
    started = time.perf_counter()
    manifests = [read_manifest(path) for path in paths]
    _validate_cover(manifests, paths)
    first = manifests[0]

    by_index_owner: Dict[int, int] = {}
    for position, manifest in enumerate(manifests):
        for index in manifest.indices:
            by_index_owner[index] = position
    streams = [iter_shard(path) for path in paths]

    results: List[RunResult] = []
    failures: List[FailedRun] = []
    for k in range(first.runs):
        position = by_index_owner[k]
        try:
            kind, entry = next(streams[position])
        except StopIteration:
            raise ShardError(
                f"{paths[position]}: ended before producing index {k}; "
                f"shard is incomplete"
            ) from None
        if entry.index != k:
            raise ShardError(
                f"{paths[position]}: expected index {k}, found "
                f"{entry.index}; shard entries must be index-ordered"
            )
        if kind == "run":
            results.append(entry)
        else:
            failures.append(entry)
    # Drain the iterators so every content hash is verified end-to-end.
    for stream, path in zip(streams, paths):
        for _extra in stream:
            raise ShardError(f"{path}: more entries than manifest indices")

    if not results:
        raise ShardError("all runs in all shards failed; nothing to merge")
    uptime = MonteCarloUptime.from_samples([r.sample for r in results])
    return MonteCarloStudy(
        label=first.label,
        base_seed=first.base_seed,
        workers=len(paths),
        runs=results,
        uptime=uptime,
        wall_clock_s=time.perf_counter() - started,
        failures=tuple(failures),
    )


__all__ = [
    "SHARD_FORMAT_VERSION",
    "SHARD_SUFFIX",
    "ShardError",
    "ShardManifest",
    "ShardRunReport",
    "ShardWriter",
    "iter_shard",
    "load_shard",
    "merge_shards",
    "read_manifest",
    "run_shard",
    "shard_indices",
    "task_fingerprint",
]
