"""Dynamic work-queue scheduling for Monte-Carlo runs.

The static ``pool.map`` path the runner shipped with (PR 1/PR 3) has
three structural weaknesses at study scale:

1. **All-or-nothing failure** — one poisoned run aborts the whole map
   and loses every completed result.
2. **Static chunking** — the chunk size is fixed before the first run
   finishes, so a study whose run times vary (faulted seeds run longer)
   straggles on the tail.
3. **No recovery** — a worker process dying (OOM killer, segfault in a
   native extension) poisons the pool and the whole study with it.

:func:`execute_runs` replaces it with dynamic dispatch: chunks are
submitted via ``Executor.submit`` and collected in *completion* order,
while an in-order collector reassembles results in *index* order before
they reach the caller.  Chunk sizes adapt to the observed per-run wall
clock, per-run exceptions become :class:`FailedRun` records instead of
aborting the study, and a ``BrokenProcessPool`` rebuilds the pool and
re-executes only the indices that were actually in flight.

Determinism is untouched by any of this: seeds are fixed before
dispatch (see :func:`~repro.runtime.runner.derive_seeds`), every run is
independent, and the collector hands results to the caller in run-index
order no matter which worker finished first.  Scheduling policy can
only change *when* a run executes, never *what* it computes.

The collector is also what makes **streaming** execution memory-bounded:
a caller that passes ``consume=`` (the shard writer does) sees each
result exactly once, in index order, and the scheduler holds at most the
out-of-order window — O(workers x chunk), not O(runs) — in memory.
"""

from __future__ import annotations

import math
import traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Executes one run: ``run_one(task, index, seed) -> RunResult``.  Must
#: be a picklable module-level function for process-pool dispatch.
RunOne = Callable[[object, int, int], object]

#: One unit of schedulable work: ``(run index, run seed)``.
IndexSeed = Tuple[int, int]

#: Aim each dispatched chunk at this much work: long enough to amortize
#: the pickle/IPC round-trip, short enough that the tail stays balanced.
TARGET_CHUNK_S = 0.25

#: Hard cap on adaptive chunk growth.  This bounds both scheduling
#: granularity (a straggler chunk can cost at most this many runs of
#: imbalance) and streaming memory (the reorder window is O(workers x
#: MAX_CHUNK) results).
MAX_CHUNK = 32

#: How many times an index may be caught in a broken pool before it is
#: recorded as failed instead of re-executed.  A run that reproducibly
#: kills its worker must not rebuild the pool forever.
MAX_INDEX_RETRIES = 2


class MonteCarloExecutionError(RuntimeError):
    """Raised when a study produces no successful runs at all."""


def resolve_workers(workers: int) -> int:
    """Resolve a worker-count request; the single source of truth.

    ``0`` means "one worker per CPU" (``os.cpu_count()``, falling back
    to 1 where the platform cannot say).  Positive counts pass through;
    negative counts are a :class:`ValueError`.  The CLI, the runner,
    and the shard executor all resolve through here so the semantics
    live in exactly one documented place.
    """
    import os

    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = one per CPU), got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return int(workers)


@dataclass(frozen=True)
class FailedRun:
    """One run that raised (or whose worker died) instead of returning.

    Captured per run so a single poisoned seed no longer aborts the
    whole study: completed work survives, and the failure travels in
    :attr:`MonteCarloStudy.failures` with enough context to reproduce
    it (``task(index, seed)`` re-raises deterministically).
    """

    index: int
    seed: int
    error: str
    traceback: str = ""


@dataclass
class ExecutionStats:
    """Observability counters for one :func:`execute_runs` call."""

    #: "serial" or "pool" — which execution strategy actually ran.
    mode: str = "serial"
    #: Chunks submitted to the pool (0 for serial execution).
    dispatched_chunks: int = 0
    #: Largest adaptive chunk size the scheduler reached.
    max_chunk_size: int = 1
    #: Times the process pool died and was rebuilt.
    pool_rebuilds: int = 0
    #: Indices re-dispatched after being lost to a broken pool.
    reexecuted_indices: int = 0
    #: High-water mark of results held in the reorder window.  The
    #: bounded-memory contract: O(workers x chunk), never O(runs).
    peak_resident_results: int = 0


@dataclass
class ExecutionReport:
    """What :func:`execute_runs` hands back to the caller."""

    #: Successful results in index order — empty when ``consume`` was
    #: given (streamed results are not retained).
    results: List[object] = field(default_factory=list)
    #: Failed runs in index order.
    failures: List[FailedRun] = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)


#: Tagged per-run outcome crossing the process boundary.
_Outcome = Tuple[str, object]  # ("ok", RunResult) | ("err", FailedRun)


def _run_chunk(run_one: RunOne, task: object, items: Sequence[IndexSeed]) -> List[_Outcome]:
    """Execute a chunk of runs in a worker, capturing per-run failures.

    Module-level so it pickles.  Exceptions are caught *per run*: a
    poisoned index yields a :class:`FailedRun` record and the rest of
    the chunk still executes — the fix for the old all-or-nothing map.
    """
    outcomes: List[_Outcome] = []
    for index, seed in items:
        try:
            outcomes.append(("ok", run_one(task, index, seed)))
        except Exception as exc:
            outcomes.append(
                (
                    "err",
                    FailedRun(
                        index=index,
                        seed=seed,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                    ),
                )
            )
    return outcomes


class _InOrderCollector:
    """Reassemble completion-order outcomes into index order.

    Outcomes arrive in whatever order workers finish; callers must see
    them in run-index order (deterministic output files, bit-stable
    float merge order).  The collector buffers only the out-of-order
    window and flushes greedily, tracking its own high-water mark so
    the bounded-memory contract is assertable.
    """

    def __init__(
        self,
        order: Sequence[int],
        consume: Callable[[object], None],
        on_failure: Callable[[FailedRun], None],
    ) -> None:
        self._order = list(order)
        self._consume = consume
        self._on_failure = on_failure
        self._buffer: Dict[int, _Outcome] = {}
        self._pos = 0
        self.seen: set = set()
        self.peak = 0

    def add(self, index: int, outcome: _Outcome) -> None:
        self._buffer[index] = outcome
        self.seen.add(index)
        if len(self._buffer) > self.peak:
            self.peak = len(self._buffer)
        while self._pos < len(self._order):
            expected = self._order[self._pos]
            if expected not in self._buffer:
                break
            kind, payload = self._buffer.pop(expected)
            if kind == "ok":
                self._consume(payload)
            else:
                self._on_failure(payload)
            self._pos += 1

    @property
    def done(self) -> bool:
        return self._pos == len(self._order)


def _adaptive_chunk_size(
    ema_run_s: Optional[float],
    pending: int,
    workers: int,
    target_chunk_s: float,
    max_chunk: int,
) -> int:
    """Next chunk size from the observed per-run wall clock.

    Three bounds compose: the *target* (enough runs to fill
    ``target_chunk_s`` of work), the *fair share* (never batch so much
    that workers idle near the tail), and the hard :data:`MAX_CHUNK`
    cap that keeps the streaming reorder window small.
    """
    if ema_run_s is None or ema_run_s <= 0.0:
        return 1
    target = max(1, int(target_chunk_s / ema_run_s))
    fair = max(1, math.ceil(pending / (2 * workers)))
    return max(1, min(target, fair, max_chunk))


def execute_runs(
    run_one: RunOne,
    task: object,
    pairs: Sequence[IndexSeed],
    workers: int,
    consume: Optional[Callable[[object], None]] = None,
    on_failure: Optional[Callable[[FailedRun], None]] = None,
    target_chunk_s: float = TARGET_CHUNK_S,
    max_chunk: int = MAX_CHUNK,
    max_index_retries: int = MAX_INDEX_RETRIES,
) -> ExecutionReport:
    """Execute ``pairs`` with the dynamic work-queue scheduler.

    ``pairs`` is any ascending-index slice of a seed schedule (a full
    study, or one shard's residue class).  Results reach ``consume`` —
    or, when it is ``None``, the returned report — in index order,
    regardless of worker count or completion order.  Per-run exceptions
    become :class:`FailedRun` records via ``on_failure`` (or the
    report); a broken pool is rebuilt and only the in-flight indices
    re-execute, each at most ``max_index_retries`` times.
    """
    workers = resolve_workers(workers)
    report = ExecutionReport()
    sink = report.results.append if consume is None else consume

    def fail_sink(failed: FailedRun) -> None:
        report.failures.append(failed)
        if on_failure is not None:
            on_failure(failed)

    collector = _InOrderCollector([i for i, _ in pairs], sink, fail_sink)

    if workers == 1:
        _execute_serial(run_one, task, pairs, collector)
        report.stats = ExecutionStats(
            mode="serial", peak_resident_results=collector.peak
        )
        return report

    try:
        _execute_pool(
            run_one,
            task,
            pairs,
            workers,
            collector,
            report.stats,
            target_chunk_s,
            max_chunk,
            max_index_retries,
        )
        report.stats.mode = "pool"
    except (OSError, ImportError, NotImplementedError, PermissionError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); falling back to serial "
            f"execution — results are identical, only slower",
            RuntimeWarning,
            stacklevel=2,
        )
        remaining = [p for p in pairs if p[0] not in collector.seen]
        _execute_serial(run_one, task, remaining, collector)
        report.stats.mode = "serial"
    report.stats.peak_resident_results = collector.peak
    return report


def _execute_serial(
    run_one: RunOne,
    task: object,
    pairs: Sequence[IndexSeed],
    collector: _InOrderCollector,
) -> None:
    """In-process execution: same outcomes, one result resident at a time."""
    for index, seed in pairs:
        for idx_outcome in _run_chunk(run_one, task, ((index, seed),)):
            collector.add(index, idx_outcome)


def _execute_pool(
    run_one: RunOne,
    task: object,
    pairs: Sequence[IndexSeed],
    workers: int,
    collector: _InOrderCollector,
    stats: ExecutionStats,
    target_chunk_s: float,
    max_chunk: int,
    max_index_retries: int,
) -> None:
    """The dynamic dispatch loop.  See module docstring for the design."""
    pending = deque(pairs)
    retry_counts: Dict[int, int] = {}
    chunk_size = 1
    ema_run_s: Optional[float] = None
    pool = ProcessPoolExecutor(max_workers=workers)
    inflight: Dict[object, Tuple[IndexSeed, ...]] = {}
    try:
        while pending or inflight:
            lost: List[Tuple[IndexSeed, ...]] = []
            # Top up: keep 2 x workers chunks outstanding — enough to
            # pipeline, few enough that chunk sizing stays adaptive.
            while pending and len(inflight) < 2 * workers:
                items = tuple(
                    pending.popleft() for _ in range(min(chunk_size, len(pending)))
                )
                try:
                    future = pool.submit(_run_chunk, run_one, task, items)
                except BrokenProcessPool:
                    lost.append(items)
                    break
                inflight[future] = items
                stats.dispatched_chunks += 1
                if len(items) > stats.max_chunk_size:
                    stats.max_chunk_size = len(items)

            if inflight and not lost:
                done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
                for future in done:
                    items = inflight.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        lost.append(items)
                        continue
                    except Exception as exc:
                        # Infrastructure failure for the whole chunk
                        # (e.g. an unpicklable result): record each
                        # item rather than aborting the study.
                        for index, seed in items:
                            collector.add(
                                index,
                                (
                                    "err",
                                    FailedRun(
                                        index=index,
                                        seed=seed,
                                        error=f"chunk failed: {type(exc).__name__}: {exc}",
                                    ),
                                ),
                            )
                        continue
                    for (index, seed), outcome in zip(items, outcomes):
                        collector.add(index, outcome)
                        if outcome[0] == "ok":
                            observed = getattr(outcome[1], "wall_clock_s", 0.0)
                            if observed > 0.0:
                                ema_run_s = (
                                    observed
                                    if ema_run_s is None
                                    else 0.5 * ema_run_s + 0.5 * observed
                                )
                chunk_size = _adaptive_chunk_size(
                    ema_run_s, len(pending), workers, target_chunk_s, max_chunk
                )

            if lost:
                # The pool is broken: every in-flight chunk is gone with
                # it.  Recover exactly the lost indices — completed work
                # is already in the collector and is never re-run.
                lost.extend(inflight.values())
                inflight.clear()
                pool.shutdown(wait=False)
                stats.pool_rebuilds += 1
                requeue: List[IndexSeed] = []
                for items in lost:
                    for index, seed in items:
                        retry_counts[index] = retry_counts.get(index, 0) + 1
                        if retry_counts[index] > max_index_retries:
                            collector.add(
                                index,
                                (
                                    "err",
                                    FailedRun(
                                        index=index,
                                        seed=seed,
                                        error=(
                                            "worker process died "
                                            f"{retry_counts[index]} times "
                                            "running this index"
                                        ),
                                    ),
                                ),
                            )
                        else:
                            requeue.append((index, seed))
                            stats.reexecuted_indices += 1
                pending = deque(sorted(requeue) + list(pending))
                pool = ProcessPoolExecutor(max_workers=workers)
                # Relearn chunk size conservatively: one bad index per
                # chunk keeps blast radius and retry attribution tight.
                chunk_size = 1
    finally:
        pool.shutdown(wait=True)


def static_chunksize(runs: int, workers: int) -> int:
    """The PR-3 static ``pool.map`` chunk formula, kept as the benchmark
    baseline: four chunks per worker, fixed before the first result."""
    return max(1, math.ceil(runs / (4 * workers)))


def measure_dispatch_overhead(report: ExecutionReport, wall_clock_s: float) -> float:
    """Mean per-run scheduling overhead in seconds.

    Wall clock not accounted for by the runs themselves, divided by the
    number of runs — the figure ``bench_mc_sharding`` tracks.
    """
    work_s = sum(getattr(r, "wall_clock_s", 0.0) for r in report.results)
    runs = len(report.results) + len(report.failures)
    if runs == 0:
        return 0.0
    return max(0.0, wall_clock_s - work_s) / runs


__all__ = [
    "ExecutionReport",
    "ExecutionStats",
    "FailedRun",
    "MAX_CHUNK",
    "MAX_INDEX_RETRIES",
    "MonteCarloExecutionError",
    "TARGET_CHUNK_S",
    "execute_runs",
    "measure_dispatch_overhead",
    "resolve_workers",
    "static_chunksize",
]
