"""Deterministic parallel Monte-Carlo execution.

Many-seed studies (E9/E11/E20) are embarrassingly parallel: each run is
one independent :class:`~repro.core.engine.Simulation` with its own
seed.  :class:`MonteCarloRunner` fans a picklable task out over a
``ProcessPoolExecutor`` and guarantees *bit-identical* results at any
worker count, because all randomness is fixed before any work is
dispatched:

1. Run seeds are derived in the parent through the hash-chained
   :meth:`repro.core.rng.RandomStreams.fork` lineage — run *i* always
   gets ``RandomStreams(base_seed).fork(i).seed``, a 128-bit integer
   that fully reconstructs its stream family in any process.
2. Workers never share state; each returns a structured
   :class:`RunResult` (sample, wall-clock, and the run's full
   :class:`~repro.obs.MetricsSnapshot`) and results are reassembled in
   index order regardless of completion order.  Snapshots merge
   order-independently, so a study's merged metrics are bit-identical
   at any worker count.

When ``workers=1``, or when the platform cannot host a process pool
(sandboxes without semaphores, missing ``fork``/``spawn`` support), the
runner executes the same task list serially in-process — same seeds,
same ordering, same aggregate statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple, Union

from ..analysis.uptime import MonteCarloUptime
from ..core import units
from ..core.rng import RandomStreams
from ..faults import FaultPlan, InvariantAuditor
from ..obs import EMPTY_SNAPSHOT, MetricsSnapshot, merge_all
from .queue import (
    ExecutionReport,
    FailedRun,
    MonteCarloExecutionError,
    execute_runs,
    resolve_workers,
)

#: A unit of Monte-Carlo work: ``task(index, seed)``.  Must be picklable
#: (a module-level function or a frozen dataclass like ScenarioTask) for
#: process-pool execution.  May return a full RunResult or a bare float
#: sample, which the runner wraps.
MonteCarloTask = Callable[[int, int], Union["RunResult", float]]


def derive_seeds(base_seed: int, runs: int) -> List[int]:
    """The canonical seed schedule: one fork per run index.

    Forks are hash-chained (see :meth:`RandomStreams.fork`), so distinct
    ``(base_seed, index)`` pairs yield distinct 128-bit run seeds, and
    the schedule is identical no matter where or when it is computed —
    the invariant that makes serial and parallel execution agree bit for
    bit.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    root = RandomStreams(seed=base_seed)
    return [root.fork(index).seed for index in range(runs)]


@dataclass(frozen=True)
class RunResult:
    """Structured outcome of one Monte-Carlo run.

    The run's telemetry travels as one picklable
    :class:`~repro.obs.MetricsSnapshot`; the historical per-field
    counters (``events_executed`` and friends) survive as derived
    read-only properties over it, so existing aggregation code and
    benchmarks read identical values from the new representation.
    ``wall_clock_s`` stays a plain field *outside* the snapshot: it is
    the one legitimately nondeterministic observation, and keeping it
    out of the snapshot is what lets metrics files be byte-identical
    across worker counts.
    """

    index: int
    seed: int
    #: The statistic being aggregated (weekly uptime for scenario tasks).
    sample: float
    wall_clock_s: float = 0.0
    #: The run's full metrics snapshot (empty for bare-float tasks).
    metrics: MetricsSnapshot = EMPTY_SNAPSHOT
    #: The executed fault event stream — ``(time, spec key, action,
    #: target names)`` tuples in execution order.  Crossing process
    #: boundaries intact is the point: the property suite asserts this
    #: stream is bit-identical at any worker count.
    fault_stream: Tuple[Tuple[float, str, str, Tuple[str, ...]], ...] = ()
    #: Full experiment result, present only when the task keeps it.
    detail: object = field(default=None, compare=False)

    # -- derived compatibility reads over the snapshot ------------------
    @property
    def events_executed(self) -> int:
        """Events the run's engine executed (from the snapshot)."""
        return int(self.metrics.counter_value("sim_events_executed_total"))

    @property
    def peak_pending_events(self) -> int:
        """Pending-queue high-water mark (from the snapshot)."""
        return int(self.metrics.gauge_value("sim_peak_pending_events"))

    @property
    def faults_injected(self) -> int:
        """Fault events scheduled (zero unless the task carried a plan)."""
        return int(self.metrics.counter_value("faults_injected_total"))

    @property
    def faults_fired(self) -> int:
        """Fault actions that actually executed."""
        return int(self.metrics.counter_value("faults_fired_total"))

    @property
    def invariant_violations(self) -> int:
        """Violations the run's auditor collected (0 when auditing was
        off *or* the run was clean; see the task's flag)."""
        return int(self.metrics.gauge_value("run_invariant_violations"))


@dataclass(frozen=True)
class MonteCarloStudy:
    """Everything a many-seed study produces, runs plus aggregate.

    ``runs`` holds the successful results in index order; ``failures``
    holds the per-run failure records (a poisoned seed no longer aborts
    the study — see :class:`~repro.runtime.queue.FailedRun`).
    """

    label: str
    base_seed: int
    workers: int
    runs: List[RunResult]
    uptime: MonteCarloUptime
    wall_clock_s: float
    failures: Tuple[FailedRun, ...] = ()

    @property
    def total_events(self) -> int:
        """Events executed across all runs."""
        return sum(r.events_executed for r in self.runs)

    @property
    def peak_pending_events(self) -> int:
        """Largest pending-queue high-water mark seen by any run."""
        return max((r.peak_pending_events for r in self.runs), default=0)

    @property
    def total_faults_injected(self) -> int:
        """Fault events scheduled across all runs."""
        return sum(r.faults_injected for r in self.runs)

    @property
    def total_faults_fired(self) -> int:
        """Fault actions that actually executed across all runs."""
        return sum(r.faults_fired for r in self.runs)

    @property
    def total_invariant_violations(self) -> int:
        """Invariant violations collected across all runs."""
        return sum(r.invariant_violations for r in self.runs)

    def merged_metrics(self) -> "MetricsSnapshot":
        """All runs' snapshots merged into one (order-independent)."""
        return merge_all(r.metrics for r in self.runs)

    def summary_lines(self) -> List[str]:
        """Headline rows for CLI / benchmark output."""
        agg = self.uptime
        lines = [
            f"{self.label}: {agg.runs} runs, {self.workers} worker(s), "
            f"{self.wall_clock_s:.2f} s wall-clock",
            f"uptime: mean {agg.mean:.4f} ± {agg.std:.4f}, "
            f"p5 {agg.p5:.4f}, median {agg.p50:.4f}, worst {agg.worst:.4f}",
            f"events: {self.total_events:,} executed, "
            f"peak pending queue {self.peak_pending_events:,}",
        ]
        if self.total_faults_injected or self.total_invariant_violations:
            lines.append(
                f"faults: {self.total_faults_fired} fired of "
                f"{self.total_faults_injected} injected; "
                f"invariant violations: {self.total_invariant_violations}"
            )
        if self.failures:
            first = self.failures[0]
            lines.append(
                f"failures: {len(self.failures)} run(s) failed; "
                f"first: run {first.index} (seed {first.seed}) — {first.error}"
            )
        return lines


def study_metrics_entries(study: MonteCarloStudy):
    """The canonical ``(meta, snapshot)`` metrics entries for a study.

    One line per run (``{"run": k, "seed": s}``) plus a merged line
    whose meta carries the run count, base seed, and — so a serialized
    study is self-describing even when seeds were poisoned — the
    **failure count** (:attr:`MonteCarloStudy.failures` used to be
    invisible in ``--metrics`` output; a served MC response must say
    "8 of 10 runs" on its face).  The CLI ``mc``/``mc-merge`` writers
    and the ``/v1/mc`` service endpoint all serialize through here,
    which is what makes a cache hit byte-comparable to an offline file.
    """
    per_run = [
        ({"run": run.index, "seed": run.seed}, run.metrics)
        for run in study.runs
    ]
    merged = (
        {
            "merged": True,
            "runs": len(study.runs),
            "base_seed": study.base_seed,
            "failures": len(study.failures),
        },
        study.merged_metrics(),
    )
    return per_run, merged


@dataclass(frozen=True)
class ScenarioTask:
    """Picklable task running one fifty-year scenario per seed.

    ``overrides`` is a tuple of ``(field, value)`` pairs applied to the
    scenario's :class:`~repro.experiment.fifty_year.FiftyYearConfig`
    (tuples, unlike dicts, keep the dataclass hashable/frozen).  With
    ``keep_result=True`` the full :class:`FiftyYearResult` rides along
    in :attr:`RunResult.detail` — it is small and picklable.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan` installed
    before the run; ``audit=True`` attaches an
    :class:`~repro.faults.InvariantAuditor` in collect mode (one bad run
    should be *reported* in its RunResult, not abort a whole study) and
    sweeps once more at the horizon.  Both are plain frozen dataclass
    payloads, so the task pickles unchanged and every worker injects the
    identical plan.
    """

    scenario: str
    horizon: float = units.years(50.0)
    report_interval: Optional[float] = None
    overrides: Tuple[Tuple[str, object], ...] = ()
    keep_result: bool = False
    faults: Optional[FaultPlan] = None
    audit: bool = False
    audit_every: int = 2500

    def __call__(self, index: int, seed: int) -> RunResult:
        # Imported lazily: repro.experiment itself builds on repro.runtime.
        from ..experiment.fifty_year import FiftyYearExperiment
        from ..experiment.scenarios import scenario_config

        config = scenario_config(
            self.scenario,
            seed,
            horizon=self.horizon,
            report_interval=self.report_interval,
            overrides=self.overrides,
        )
        experiment = FiftyYearExperiment(config)
        controller = None
        if self.faults is not None:
            controller = experiment.sim.install_faults(self.faults)
        auditor = None
        if self.audit:
            auditor = InvariantAuditor(
                experiment.sim, every=self.audit_every, strict=False
            ).install()
        result = experiment.run()
        if auditor is not None:
            auditor.check_now()
            experiment.sim.metrics.gauge(
                "run_invariant_violations", agg="sum"
            ).set(len(auditor.violations))
        # No self-timing here: ``_execute`` stamps wall_clock_s, so the
        # snapshot stays free of nondeterministic observations.
        return RunResult(
            index=index,
            seed=seed,
            sample=result.overall.uptime,
            metrics=experiment.sim.metrics.snapshot(),
            fault_stream=(
                controller.stream_tuple() if controller is not None else ()
            ),
            detail=result if self.keep_result else None,
        )


def _execute(task: MonteCarloTask, index: int, seed: int) -> RunResult:
    """Run one task invocation and normalize its return to a RunResult.

    Module-level so it pickles for the process pool.  Timing lives here
    — not in the tasks — so *every* run reports ``wall_clock_s``, bare
    floats included, and sim-layer code never touches the wall clock.
    A task that already stamped its own timing keeps it.
    """
    started = time.perf_counter()
    outcome = task(index, seed)
    elapsed = time.perf_counter() - started
    if isinstance(outcome, RunResult):
        if outcome.wall_clock_s == 0.0:
            outcome = replace(outcome, wall_clock_s=elapsed)
        return outcome
    return RunResult(
        index=index, seed=seed, sample=float(outcome), wall_clock_s=elapsed
    )


class MonteCarloRunner:
    """Fan a Monte-Carlo task over processes, deterministically.

    >>> from repro.runtime import MonteCarloRunner, ScenarioTask
    >>> from repro.core import units
    >>> task = ScenarioTask("owned-only", horizon=units.years(1.0))
    >>> study = MonteCarloRunner(task, runs=2, base_seed=7).run()
    >>> study.uptime.runs
    2
    """

    def __init__(
        self,
        task: MonteCarloTask,
        runs: int,
        base_seed: int = 100,
        workers: int = 1,
        label: Optional[str] = None,
    ) -> None:
        if runs < 1:
            raise ValueError("runs must be >= 1")
        self.task = task
        self.runs = int(runs)
        self.base_seed = int(base_seed)
        # ``0`` means one worker per CPU; resolved once, here.
        self.workers = resolve_workers(workers)
        self.label = label or getattr(task, "scenario", type(task).__name__)

    def seeds(self) -> List[int]:
        """The exact per-run seed schedule this runner will use."""
        return derive_seeds(self.base_seed, self.runs)

    def run(self) -> MonteCarloStudy:
        """Execute all runs and aggregate; identical at any worker count.

        Execution rides the dynamic work-queue scheduler
        (:func:`~repro.runtime.queue.execute_runs`): per-run failures
        are collected into :attr:`MonteCarloStudy.failures` instead of
        aborting the study, and a broken worker pool re-executes only
        the indices that were in flight.
        """
        started = time.perf_counter()
        report = self.execute()
        if not report.results:
            first = report.failures[0]
            raise MonteCarloExecutionError(
                f"all {self.runs} runs failed; first failure "
                f"(run {first.index}, seed {first.seed}): {first.error}"
            )
        uptime = MonteCarloUptime.from_samples(
            [r.sample for r in report.results]
        )
        return MonteCarloStudy(
            label=self.label,
            base_seed=self.base_seed,
            workers=self.workers,
            runs=report.results,
            uptime=uptime,
            wall_clock_s=time.perf_counter() - started,
            failures=tuple(report.failures),
        )

    def execute(
        self,
        consume: Optional[Callable[[RunResult], None]] = None,
        on_failure: Optional[Callable[[FailedRun], None]] = None,
    ) -> ExecutionReport:
        """Run the schedule through the scheduler, optionally streaming.

        With ``consume`` set, results are handed over one at a time in
        index order and *not* retained — the shard executor uses this to
        keep a 10k-run study at O(workers) resident results.
        """
        seeds = self.seeds()
        pairs = list(zip(range(self.runs), seeds))
        return execute_runs(
            _execute,
            self.task,
            pairs,
            workers=self.workers,
            consume=consume,
            on_failure=on_failure,
        )
