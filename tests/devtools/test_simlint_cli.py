"""CLI-level tests: ``python -m repro lint`` text/JSON output and exit
codes, as consumed by the CI ``lint-sim`` step."""

import json
from pathlib import Path

from repro.cli import main
from repro.devtools.simlint import JSON_SCHEMA_VERSION
from repro.devtools.simlint.cli import main as simlint_main

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = str(Path(__file__).parents[2] / "src" / "repro")


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", SRC_REPRO]) == 0
        assert "simlint: clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main(["lint", str(FIXTURES / "sl001_nondeterminism.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "SL001" in out
        assert "finding(s)" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "definitely/not/a/path.py"]) == 2
        assert "simlint" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_is_machine_parseable(self, capsys):
        code = main(
            ["lint", "--format", "json", str(FIXTURES / "sl002_adhoc_rng.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["count"] == 4
        assert payload["counts_by_rule"] == {"SL002": 4}
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}
        assert first["rule"] == "SL002"
        assert first["line"] == 12

    def test_json_clean_tree(self, capsys):
        assert main(["lint", "--format", "json", SRC_REPRO]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []

    def test_findings_sorted_by_position(self, capsys):
        main(["lint", "--format", "json", str(FIXTURES)])
        payload = json.loads(capsys.readouterr().out)
        keys = [(f["path"], f["line"], f["col"]) for f in payload["findings"]]
        assert keys == sorted(keys)


class TestRuleCatalog:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006"):
            assert rule_id in out


class TestStandaloneEntryPoint:
    def test_module_main_matches_repro_lint(self, capsys):
        assert simlint_main([SRC_REPRO]) == 0
        assert "simlint: clean" in capsys.readouterr().out

    def test_default_target_is_repro_package(self, capsys):
        # No paths: lint the installed package itself.
        assert simlint_main([]) == 0
        assert "simlint: clean" in capsys.readouterr().out


class TestGithubFormat:
    def test_error_annotations_emitted(self, capsys):
        code = main(
            [
                "lint",
                "--format",
                "github",
                str(FIXTURES / "sl001_nondeterminism.py"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("::error ")]
        assert len(lines) == 6
        first = lines[0]
        assert "file=" in first and "line=9" in first and "::SL001 " in first

    def test_clean_tree_has_no_annotations(self, capsys):
        assert main(["lint", "--format", "github", SRC_REPRO]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "simlint: clean" in out


class TestProjectMode:
    def test_project_pass_clean_on_repro(self, capsys):
        assert main(["lint", "--project", SRC_REPRO]) == 0
        assert "simlint: clean" in capsys.readouterr().out

    def test_project_findings_reported(self, capsys):
        bad = FIXTURES / "project" / "sl010_bad"
        code = main(["lint", "--project", "--format", "json", str(bad)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_rule"] == {"SL010": 3}

    def test_list_rules_includes_project_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL010", "SL011", "SL012", "SL013", "SL014"):
            assert rule_id in out


class TestCacheFlag:
    def test_cache_flag_populates_and_reuses(self, capsys, tmp_path):
        cache_dir = tmp_path / "lintcache"
        target = str(FIXTURES / "clean.py")
        assert main(["lint", "--cache", str(cache_dir), target]) == 0
        capsys.readouterr()
        entries = list(cache_dir.rglob("*.json"))
        assert len(entries) == 1
        assert main(["lint", "--cache", str(cache_dir), target]) == 0
