"""Whole-program pass tests: the :class:`ProjectIndex` fact extractors
and the cross-module rules SL010–SL014, driven by multi-file fixture
packages under ``fixtures/project/`` — every bad case has a corrected
good twin that must stay silent."""

from pathlib import Path

import pytest

from repro.devtools.simlint import (
    PROJECT_RULES,
    ProjectIndex,
    get_project_rule,
    lint_index,
    lint_project,
)
from repro.devtools.simlint.project import (
    ProjectConfig,
    _parse_layers_minimal,
    load_project_config,
)
from repro.devtools.simlint.project_rules import (
    _declared_cycle,
    _strongly_connected,
)

PROJECT_FIXTURES = Path(__file__).parent / "fixtures" / "project"


def case_findings(name):
    return lint_project([PROJECT_FIXTURES / name])


def rules_of(findings):
    return {f.rule for f in findings}


class TestRegistry:
    def test_all_five_project_rules_registered(self):
        assert [rule.id for rule in PROJECT_RULES] == [
            "SL010", "SL011", "SL012", "SL013", "SL014",
        ]

    def test_every_rule_documented(self):
        for rule in PROJECT_RULES:
            assert rule.title
            assert rule.rationale

    def test_get_project_rule_unknown(self):
        with pytest.raises(KeyError):
            get_project_rule("SL999")


class TestSL010DuplicateStreams:
    def test_cross_package_duplicate_fires_at_every_site(self):
        findings = case_findings("sl010_bad")
        assert rules_of(findings) == {"SL010"}
        duplicates = [f for f in findings if "telemetry" in f.message]
        assert len(duplicates) == 2
        assert {Path(f.path).name for f in duplicates} == {
            "device.py", "battery.py",
        }
        # Each site names the other subsystem's claim.
        assert any("repro.energy.battery" in f.message for f in duplicates)
        assert any("repro.net.device" in f.message for f in duplicates)

    def test_reserved_prefix_outside_faults(self):
        findings = case_findings("sl010_bad")
        reserved = [f for f in findings if "faults:" in f.message]
        assert len(reserved) == 1
        assert Path(reserved[0].path).name == "fleet.py"

    def test_good_twin_silent(self):
        # Same name inside one package, the faults: prefix inside
        # faults/, and sim.rng claims are all sanctioned.
        assert case_findings("sl010_good") == []


class TestSL011TopologyMutations:
    def test_unbumped_mutations_fire(self):
        findings = case_findings("sl011_bad")
        assert rules_of(findings) == {"SL011"}
        by_file = {Path(f.path).name: f for f in findings}
        assert set(by_file) == {"rewire.py", "churn.py"}
        assert "rewire()" in by_file["rewire.py"].message
        assert ".depends_on.append" in by_file["rewire.py"].message
        assert "kill()" in by_file["churn.py"].message

    def test_good_twin_silent(self):
        # Bump in the same function and constructor self-initialization
        # are both clean.
        assert case_findings("sl011_good") == []


class TestSL012MetricConflicts:
    def test_all_four_conflict_classes_fire(self):
        findings = case_findings("sl012_bad")
        assert rules_of(findings) == {"SL012"}
        # Kind, edges, label-keys, and gauge-agg conflicts, each
        # reported at both sites.
        assert len(findings) == 8
        messages = " | ".join(f.message for f in findings)
        assert "one name, one instrument kind" in messages
        assert "identical edges" in messages
        assert "incompatible series" in messages
        assert "one aggregation per name" in messages

    def test_good_twin_silent(self):
        assert case_findings("sl012_good") == []


class TestSL013ImportGraph:
    def test_module_cycle_detected(self):
        findings = case_findings("sl013_cycle_bad")
        assert rules_of(findings) == {"SL013"}
        assert len(findings) == 1
        assert "repro.net.alpha <-> repro.net.beta" in findings[0].message

    def test_deferred_and_type_checking_imports_break_cycles(self):
        assert case_findings("sl013_cycle_good") == []

    def test_undeclared_edge_and_missing_package(self):
        findings = case_findings("sl013_dag_bad")
        assert rules_of(findings) == {"SL013"}
        by_file = {Path(f.path).name: f for f in findings}
        assert "no entry in" in by_file["tariff.py"].message
        assert "not an edge of" in by_file["link.py"].message

    def test_declared_edges_silent(self):
        assert case_findings("sl013_dag_good") == []

    def test_declared_table_must_be_acyclic(self):
        index = ProjectIndex(
            ProjectConfig(
                layers={"a": ("b",), "b": ("a",)},
                pyproject_path="pyproject.toml",
            )
        )
        index.add_source("x = 1\n", path="repro/core/x.py")
        findings = [
            f for f in get_project_rule("SL013").check(index)
        ]
        assert len(findings) == 1
        assert "cyclic" in findings[0].message
        assert findings[0].path == "pyproject.toml"


class TestSL014UnitSuffixes:
    def test_mismatches_fire(self):
        findings = case_findings("sl014_bad")
        assert rules_of(findings) == {"SL014"}
        assert [f.line for f in findings] == [7, 8, 9]
        positional, keyword, resolved = findings
        assert "argument 1 is 'timeout_m'" in positional.message
        assert "delay_s=interval_m" in keyword.message
        assert "advance()" in resolved.message

    def test_good_twin_and_ambiguous_names_silent(self):
        assert case_findings("sl014_good") == []


class TestIndexFacts:
    def test_heap_entry_shapes_recorded(self):
        index = ProjectIndex()
        index.add_source(
            "import heapq\n"
            "def push(q, t, item):\n"
            "    heapq.heappush(q, (t, 0, item))\n",
            path="repro/core/queue.py",
        )
        entries = index.heap_entry_shapes()
        assert len(entries) == 1
        assert entries[0].arity == 3

    def test_type_checking_imports_marked_type_only(self):
        index = ProjectIndex()
        index.add_source(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.net import device\n",
            path="repro/city/fleet.py",
        )
        facts = [
            f
            for info in index.infos()
            for f in info.imports
            if f.base == "repro.net"
        ]
        assert facts and all(f.type_only for f in facts)

    def test_function_scope_imports_not_top_level(self):
        index = ProjectIndex()
        index.add_source(
            "def late():\n"
            "    from repro.net import device\n"
            "    return device\n",
            path="repro/city/fleet.py",
        )
        facts = [
            f
            for info in index.infos()
            for f in info.imports
            if f.base == "repro.net"
        ]
        assert facts and all(not f.top_level for f in facts)

    def test_syntax_errors_skipped_not_fatal(self):
        index = ProjectIndex()
        index.add_source("def broken(:\n", path="repro/net/broken.py")
        assert index.modules == {}

    def test_project_findings_honor_suppressions(self):
        index = ProjectIndex()
        index.add_source(
            "def build(streams):\n"
            "    return streams.get('faults:x')  # simlint: ignore[SL010]\n",
            path="repro/net/device.py",
        )
        assert lint_index(index) == []


class TestLayersConfig:
    def test_minimal_parser_matches_real_pyproject(self):
        # The repo's own table (multi-line arrays included) must parse
        # identically with and without tomllib.
        pyproject = Path(__file__).parents[2] / "pyproject.toml"
        cfg = load_project_config(pyproject.parent)
        assert cfg.layers is not None
        assert _parse_layers_minimal(pyproject.read_text()) == cfg.layers

    def test_minimal_parser_handles_multiline_arrays(self):
        layers = _parse_layers_minimal(
            "[tool.simlint.layers]\n"
            'core = []\n'
            'net = [\n'
            '    "core",  # comment\n'
            '    "radio",\n'
            "]\n"
            "[tool.other]\n"
            'net = ["ignored"]\n'
        )
        assert layers == {"core": (), "net": ("core", "radio")}

    def test_missing_table_returns_none(self):
        assert _parse_layers_minimal("[tool.black]\nline-length = 88\n") is None


class TestGraphAlgorithms:
    def test_strongly_connected_components(self):
        graph = {
            "a": ["b"], "b": ["c"], "c": ["a"],  # 3-cycle
            "d": ["a"],                           # tail into it
            "e": [],                              # isolated
        }
        sccs = [sorted(s) for s in _strongly_connected(graph) if len(s) > 1]
        assert sccs == [["a", "b", "c"]]

    def test_declared_cycle_detection(self):
        assert _declared_cycle({"a": ("b",), "b": ()}) is None
        cycle = _declared_cycle({"a": ("b",), "b": ("a",)})
        assert cycle is not None and cycle[0] == cycle[-1]


def _probe_stack():
    from repro.core import Entity, Hierarchy, Simulation

    class Dev(Entity):
        TIER = "device"

    class Gw(Entity):
        TIER = "gateway"

    class Cl(Entity):
        TIER = "cloud"

    sim = Simulation()
    cloud = Cl(sim, "cloud")
    gateway = Gw(sim, "gw")
    gateway.tags["asn"] = "7922"
    device = Dev(sim, "dev")
    gateway.add_dependency(cloud)
    device.add_dependency(gateway)
    hierarchy = Hierarchy()
    hierarchy.extend([cloud, gateway, device])
    for entity in hierarchy.entities:
        entity.deploy()
    return sim, hierarchy, gateway


class TestRealTreeContracts:
    def test_blast_radius_bumps_topology_version(self):
        # SL011 found these: the counterfactual probes flip entity
        # state without invalidating version-keyed caches.  The fix
        # bumps at the flip and again at the restore.
        sim, hierarchy, gateway = _probe_stack()
        state = gateway.state
        version = sim.topology_version
        lost = hierarchy.blast_radius(gateway)
        assert [e.name for e in lost] == ["dev"]
        assert gateway.state == state, "probe must restore state"
        assert sim.topology_version == version + 2, (
            "flip and restore must each invalidate version-keyed caches"
        )

    def test_correlated_failure_bumps_topology_version(self):
        from repro.analysis.risk import correlated_failure

        sim, hierarchy, gateway = _probe_stack()
        version = sim.topology_version
        result = correlated_failure(hierarchy, "asn", "7922")
        assert result.devices_lost == 1
        assert gateway.alive, "probe must restore state"
        assert sim.topology_version == version + 2
