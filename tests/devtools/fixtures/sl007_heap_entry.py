"""Fixture: SL007 violations (non-tuple heap entries).

Never imported — read from disk by the simlint tests.  Keep the line
layout stable.
"""

import heapq
from heapq import heappush


def push_object(heap: list, event) -> None:
    heapq.heappush(heap, event)                      # line 12: SL007


def push_bare_name(heap: list, entry) -> None:
    heappush(heap, entry)                            # line 16: SL007


def replace_object(heap: list, event) -> None:
    heapq.heapreplace(heap, event)                   # line 20: SL007


def pushpop_call(heap: list, make_entry) -> None:
    heapq.heappushpop(heap, make_entry())            # line 24: SL007


def requeue(heap: list, entry) -> None:
    heapq.heappush(heap, entry)  # simlint: ignore[SL007]


def fine_tuple(heap: list, event) -> None:
    heapq.heappush(heap, (event.time, event.priority, event.sequence, event))


def fine_pop(heap: list):
    return heapq.heappop(heap)
