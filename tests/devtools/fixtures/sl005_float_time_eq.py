"""Fixture: SL005 violations (float equality against simulation time).

Never imported — read from disk by the simlint tests.  Keep the line
layout stable.
"""


def at_horizon(now: float, horizon: float) -> bool:
    return now == horizon                            # line 9: SL005


def missed_deadline(t: float, deadline: float) -> bool:
    return t != deadline                             # line 13: SL005


def event_due(scheduled_at: float, sim_time: float) -> bool:
    return scheduled_at == sim_time                  # line 17: SL005


def nan_guard(time: float) -> bool:
    return time != time                              # exempt: NaN idiom


def fine_window(now: float, deadline: float) -> bool:
    return abs(now - deadline) < 1e-9


def fine_ordered(t: float, horizon: float) -> bool:
    return t >= horizon


def fine_not_time(count: int, total: int) -> bool:
    return count == total
