"""Fixture: SL008 violations (fault code drawing outside RandomStreams).

Never imported — read from disk by the simlint tests with a
``repro.faults.*`` module name.  Keep the line layout stable.
"""

import numpy as np


def pick_target(pool, generator) -> int:
    return int(generator.choice(len(pool)))          # line 11: SL008


def jitter(spec, clock) -> float:
    return float(clock.normal(0.0, 1.0))             # line 15: SL008


def burst_size(model) -> int:
    return int(model.poisson(3.0))                   # line 19: SL008


def fine_named_stream(pool, rng) -> int:
    return int(rng.choice(len(pool)))


def fine_controller_stream(pool, controller, spec) -> int:
    return int(controller.stream_for(spec).choice(len(pool)))


def fine_sim_stream(pool, sim) -> int:
    return int(sim.rng("faults:x").integers(0, len(pool)))


def fine_suffixed(pool, fault_rng) -> int:
    return int(fault_rng.integers(0, len(pool)))


def fine_unrelated_method(entries) -> list:
    return sorted(np.unique(entries))
