"""Fixture: SL003 violations (implicit-Optional annotations).

Never imported — read from disk by the simlint tests.  Keep the line
layout stable.
"""

from typing import Any, List, Optional, Union


def bad_param(horizon: float = None) -> float:       # line 10: SL003
    return horizon or 0.0


def bad_keyword(*, label: str = None) -> str:        # line 14: SL003
    return label or ""


class State:
    def __init__(self) -> None:
        self.endpoint: "Endpoint" = None             # line 20: SL003
        self.count: int = 0


def fine_optional(x: Optional[float] = None) -> float:
    return x or 0.0


def fine_union(x: Union[float, None] = None) -> float:
    return x or 0.0


def fine_any(x: Any = None) -> Any:
    return x


def fine_pep604(x: "float | None" = None) -> float:
    return x or 0.0


def fine_no_annotation(x=None):
    return x


def fine_list(xs: List[float]) -> int:
    return len(xs)


class Endpoint:
    pass
