"""Fixture: violations silenced by suppression comments.

Never imported — read from disk by the simlint tests.  Every violation
here carries an ignore pragma, so the file must lint clean; the one
exception (line 17) carries a pragma for a *different* rule and must
still be reported.
"""

import random  # simlint: ignore[SL001]


def stamp(t: float, deadline: float) -> bool:
    return t == deadline  # simlint: ignore


def jitter() -> float:
    return random.random()  # simlint: ignore[SL004]


def shuffle(xs: list) -> None:
    random.shuffle(xs)  # simlint: ignore[SL001, SL005]
