"""Fixture: a module that satisfies every simlint rule.

Never imported — read from disk by the simlint tests.
"""

from typing import List, Optional

import numpy as np

from repro.core.rng import RandomStreams


def sample_uptime(seed: int, n: int = 8) -> List[float]:
    rng: np.random.Generator = RandomStreams(seed).get("fixture.clean")
    return [float(x) for x in rng.random(n)]


def weekly_window(now: float, deadline: float) -> bool:
    return now >= deadline


def merge(extra: Optional[List[float]] = None) -> List[float]:
    merged: List[float] = []
    merged.extend(extra or [])
    return merged
