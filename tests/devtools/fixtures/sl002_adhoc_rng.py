"""Fixture: SL002 violations (ad-hoc numpy generators).

Never imported — read from disk by the simlint tests.  Keep the line
layout stable.
"""

import numpy as np
from numpy.random import default_rng


def fresh() -> np.random.Generator:
    return np.random.default_rng(0)        # line 12: SL002


def renamed() -> np.random.Generator:
    return default_rng(42)                 # line 16: SL002


def legacy() -> float:
    np.random.seed(7)                      # line 20: SL002
    return float(np.random.random())       # line 21: SL002
