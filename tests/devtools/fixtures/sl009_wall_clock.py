"""Fixture: SL009 violations (wall-clock reads inside a sim layer).

Never imported — read from disk by the simlint tests with a
``repro.core.*`` module name.  Keep the line layout stable.
"""

import time
from time import monotonic, perf_counter


def measure_step(sim) -> float:
    started = time.perf_counter()                    # line 12: SL009
    sim.step()
    return time.perf_counter() - started             # line 14: SL009


def stamp_record() -> float:
    return monotonic()                               # line 18: SL009


def cpu_budget_left(limit_s: float) -> bool:
    return time.process_time() < limit_s             # line 22: SL009


def aliased_measure() -> float:
    return perf_counter()                            # line 26: SL009


def fine_simulated_time(sim) -> float:
    return sim.now


def fine_sleepless(sim, horizon: float) -> None:
    sim.run_until(horizon)
