"""Fixture: SL001 violations (banned nondeterminism sources).

Never imported — read from disk by the simlint tests.  Expected
findings are asserted by line number in test_simlint_rules.py; keep the
line layout stable.
"""

import os
import random                              # line 9: SL001 (import)
import time
import uuid
from datetime import datetime


def stamp() -> float:
    return time.time()                     # line 16: SL001


def label() -> str:
    return str(uuid.uuid4())               # line 20: SL001


def jitter() -> float:
    return random.random()                 # line 24: SL001


def today() -> str:
    return datetime.now().isoformat()      # line 28: SL001


def token() -> bytes:
    return os.urandom(8)                   # line 32: SL001
