"""SL010 good twin: distinct, package-prefixed stream name."""


def build(streams):
    return streams.get("energy-telemetry")
