"""SL010 good twin: same name as net/device.py, same package — the
cohort engine must replay the per-device streams bit-exactly, so the
share is the contract, not an accident."""


def replay(streams):
    return streams.get("net-telemetry")
