"""SL010 good twin: package-prefixed name, shared only inside net/."""


def build(streams):
    return streams.get("net-telemetry")
