"""SL010 good twin: the 'faults:' prefix is fine inside repro.faults."""


def stream_for(streams, key):
    return streams.get(f"faults:{key}")
