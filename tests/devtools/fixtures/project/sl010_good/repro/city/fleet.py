"""SL010 good twin: sim.rng with a city-prefixed name."""


def demand_stream(sim):
    return sim.rng("city-demand")
