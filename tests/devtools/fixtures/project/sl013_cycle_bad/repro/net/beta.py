"""SL013 fixture: the other half of the cycle."""

from repro.net import alpha


def pong():
    return alpha.ping()
