"""SL013 fixture: half of an import-time module cycle."""

from repro.net import beta


def ping():
    return beta.pong()
