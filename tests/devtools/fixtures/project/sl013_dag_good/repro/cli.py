"""SL013 good twin: import target, declared this time."""


def main():
    return 0
