"""SL013 good twin: a core-layer module for others to import."""

VALUE = 42
