"""SL013 good twin: the energy -> cli edge is declared in the table."""

from repro.cli import main


def run():
    return main()
