"""SL013 good twin: econ's single edge to core is declared."""

from repro.core import thing


def price():
    return thing.VALUE
