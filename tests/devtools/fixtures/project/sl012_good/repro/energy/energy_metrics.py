"""SL012 good twin: registrations identical to net/'s."""


def instrument(registry):
    registry.counter("frames_total")
    registry.histogram("frame_delay_s", edges=(0.1, 1.0))
    registry.counter("drops_total", tier="gateway")
    registry.gauge("queue_depth", agg="max")
