"""SL010 fixture: uses the reserved 'faults:' prefix outside faults/."""


def build(streams):
    return streams.get("faults:pulse")
