"""SL010 fixture: claims the same stream name as net/."""


def build(streams):
    return streams.get("telemetry")
