"""SL010 fixture: claims a stream name that energy/ also claims."""


def build(streams):
    return streams.get("telemetry")
