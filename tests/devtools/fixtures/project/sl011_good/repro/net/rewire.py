"""SL011 good twin: same mutations, version bumped in the same
function; constructor self-initialization is exempt (no pre-existing
graph state can go stale there)."""


def rewire(device, gateway):
    device.depends_on.append(gateway)
    gateway.dependents.append(device)
    device.sim.topology_version += 1
    return device


class Link:
    def __init__(self, sim):
        self.sim = sim
        self.depends_on = []
        self.dependents = []
        self.state = None
