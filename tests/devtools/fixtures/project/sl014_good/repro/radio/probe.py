"""SL014 good twin: a colliding name with a *different* unit — the
consensus check must stay silent when any plausible callee agrees."""


def probe(span_m):
    return span_m
