"""SL014 good twin: same public signatures as the bad fixture."""


def wait(delay_s):
    return delay_s


def advance(time_s, distance_m):
    return time_s + distance_m


def probe(span_s):
    return span_s
