"""SL014 good twin: suffixes line up; ambiguous names stay silent."""

from repro.core.sched import advance, wait


def run(helpers, timeout_s, hop_m, gap_s):
    wait(timeout_s)
    wait(delay_s=timeout_s)
    advance(timeout_s, hop_m)
    # Two sim-layer functions are named `probe` (core: span_s,
    # radio: span_m); an unresolved attribute call matches both, one
    # agrees, so the consensus rule must not fire.
    return helpers.probe(gap_s)
