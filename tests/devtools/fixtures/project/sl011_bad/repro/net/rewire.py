"""SL011 fixture: rewires the entity graph, never bumps the version."""


def rewire(device, gateway):
    device.depends_on.append(gateway)
    gateway.dependents.append(device)
    return device
