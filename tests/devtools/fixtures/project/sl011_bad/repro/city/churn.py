"""SL011 fixture: flips liveness state without bumping the version."""

from repro.core.entity import EntityState


def kill(entity):
    entity.state = EntityState.FAILED
    return entity
