"""SL012 fixture: the other half — kind, edges, labels, agg all clash."""


def instrument(registry):
    registry.gauge("frames_total")
    registry.histogram("frame_delay_s", edges=(0.5, 5.0))
    registry.counter("drops_total", reason="thermal")
    registry.gauge("queue_depth", agg="sum")
