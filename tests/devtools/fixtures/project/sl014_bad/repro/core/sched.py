"""SL014 fixture: public sim-layer signatures with unit suffixes."""


def wait(delay_s):
    return delay_s


def advance(time_s, distance_m):
    return time_s + distance_m
