"""SL014 fixture: meters flowing into seconds parameters."""

from repro.core.sched import advance, wait


def run(timeout_m, interval_m, hop_m):
    wait(timeout_m)
    wait(delay_s=interval_m)
    return advance(hop_m, hop_m)
