"""SL013 good twin: one top-level direction is fine on its own."""

from repro.net import alpha


def pong():
    return alpha.ping()
