"""SL013 good twin: the back-edge is deferred into the function that
needs it (and kept visible to type checkers under TYPE_CHECKING) —
the sanctioned cycle-breaking idiom."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.net import beta  # noqa: F401


def ping():
    from repro.net import beta

    return beta.pong()
