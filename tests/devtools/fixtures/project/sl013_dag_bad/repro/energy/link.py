"""SL013 fixture: energy -> cli is not a declared DAG edge."""

from repro.cli import main


def run():
    return main()
