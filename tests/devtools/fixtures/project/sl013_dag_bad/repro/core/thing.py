"""SL013 fixture: a core-layer module for others to import."""

VALUE = 42
