"""SL013 fixture: 'econ' imports but has no [tool.simlint.layers] entry."""

from repro.core import thing


def price():
    return thing.VALUE
