"""SL013 fixture: import target outside the declared edge set."""


def main():
    return 0
