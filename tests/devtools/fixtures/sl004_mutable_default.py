"""Fixture: SL004 violations (mutable default arguments).

Never imported — read from disk by the simlint tests.  Keep the line
layout stable.
"""

from typing import Dict, List, Optional


def bad_list(samples: List[float] = []) -> int:      # line 10: SL004
    return len(samples)


def bad_dict(weights: Dict[str, float] = {}) -> int:  # line 14: SL004
    return len(weights)


def bad_call(names=list()) -> int:                   # line 18: SL004
    return len(names)


def bad_keyword(*, seen=set()) -> int:               # line 22: SL004
    return len(seen)


def fine_none(samples: Optional[List[float]] = None) -> int:
    return len(samples or [])


def fine_tuple(samples: tuple = ()) -> int:
    return len(samples)
