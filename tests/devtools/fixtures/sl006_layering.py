"""Fixture: SL006 violations (sim layer importing upper layers).

Never imported — read from disk and linted under the module name
``repro.city.sl006_layering`` so the layering rule applies.  Keep the
line layout stable.
"""

from repro.runtime import MonteCarloRunner           # line 8: SL006
from repro.analysis.report import PaperComparison    # line 9: SL006
import repro.cli                                     # line 10: SL006
from repro.analysis.diary import ExperimentDiary     # fine: diary is sim-facing
from repro.core import units                         # fine: downward import

__all__ = [
    "MonteCarloRunner",
    "PaperComparison",
    "repro",
    "ExperimentDiary",
    "units",
]
