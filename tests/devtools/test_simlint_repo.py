"""The repo gate: ``src/repro`` must lint clean, forever.

This is the test that turns simlint's conventions into enforced
invariants — any PR that reintroduces an ad-hoc ``default_rng``, a
wall-clock read, or a layering violation fails here, not in review.
"""

from pathlib import Path

import repro
from repro.devtools.simlint import lint_paths, lint_project, render_text

PACKAGE_ROOT = Path(repro.__file__).parent


def test_repro_package_lints_clean():
    findings = lint_paths([PACKAGE_ROOT])
    assert findings == [], "\n" + render_text(findings)


def test_repro_package_passes_project_rules():
    # The whole-program gate: cross-module stream claims, topology
    # mutations, metric shapes, the declared import DAG, and unit
    # suffixes must all hold over the real tree.
    findings = lint_project([PACKAGE_ROOT])
    assert findings == [], "\n" + render_text(findings)


def test_gate_actually_scans_the_tree():
    # Guard the guard: if file discovery broke, the gate above would
    # pass vacuously.  The package has dozens of modules; require a
    # sane floor.
    from repro.devtools.simlint import iter_python_files

    files = iter_python_files([PACKAGE_ROOT])
    assert len(files) > 50
    assert any(f.name == "trust.py" for f in files)
