"""Per-rule tests for simlint: one fixture module per rule with known
violations (asserting exact rule ids and line numbers), a clean module,
and the suppression-comment semantics."""

from pathlib import Path

import pytest

from repro.devtools.simlint import (
    PARSE_ERROR_RULE,
    RULES,
    Finding,
    LintCache,
    get_rule,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
)

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_findings(name: str, module=None):
    path = FIXTURES / name
    if module is not None:
        return lint_source(path.read_text(), path=str(path), module=module)
    return lint_file(path)


def lines_for(findings, rule):
    return [f.line for f in findings if f.rule == rule]


class TestRegistry:
    def test_all_nine_rules_registered(self):
        assert [rule.id for rule in RULES] == [
            "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007",
            "SL008", "SL009",
        ]

    def test_every_rule_documented(self):
        for rule in RULES:
            assert rule.title
            assert rule.rationale

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError):
            get_rule("SL999")


class TestSL001Nondeterminism:
    def test_exact_lines(self):
        findings = fixture_findings("sl001_nondeterminism.py")
        assert {f.rule for f in findings} == {"SL001"}
        assert lines_for(findings, "SL001") == [9, 16, 20, 24, 28, 32]

    def test_aliased_imports_resolved(self):
        findings = lint_source(
            "import time as clock\n"
            "from datetime import datetime as dt\n"
            "a = clock.time()\n"
            "b = dt.utcnow()\n"
        )
        assert lines_for(findings, "SL001") == [3, 4]

    def test_perf_counter_allowed(self):
        # Wall-clock *measurement* for observability is fine; only
        # result-affecting clock reads are banned.
        assert lint_source("import time\nx = time.perf_counter()\n") == []


class TestSL002AdHocRng:
    def test_exact_lines(self):
        findings = fixture_findings("sl002_adhoc_rng.py")
        assert {f.rule for f in findings} == {"SL002"}
        assert lines_for(findings, "SL002") == [12, 16, 20, 21]

    def test_core_rng_module_exempt(self):
        source = (
            "import numpy as np\n"
            "g = np.random.default_rng(np.random.SeedSequence(entropy=(1,)))\n"
        )
        assert lint_source(source, module="repro.core.rng") == []
        assert lines_for(lint_source(source, module="repro.net.trust"), "SL002") == [2, 2]

    def test_generator_annotations_not_flagged(self):
        source = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n"
        )
        assert lint_source(source) == []


class TestSL003ImplicitOptional:
    def test_exact_lines(self):
        findings = fixture_findings("sl003_implicit_optional.py")
        assert {f.rule for f in findings} == {"SL003"}
        assert lines_for(findings, "SL003") == [10, 14, 20]

    def test_explicit_optional_variants_clean(self):
        # The fixture's fine_* functions cover Optional, Union, Any,
        # PEP 604 strings, and unannotated defaults: none may fire.
        findings = fixture_findings("sl003_implicit_optional.py")
        assert all(f.line <= 20 for f in findings)


class TestSL004MutableDefault:
    def test_exact_lines(self):
        findings = fixture_findings("sl004_mutable_default.py")
        assert {f.rule for f in findings} == {"SL004"}
        assert lines_for(findings, "SL004") == [10, 14, 18, 22]

    def test_dataclass_field_factory_clean(self):
        source = (
            "from dataclasses import dataclass, field\n"
            "from typing import List\n"
            "@dataclass\n"
            "class Diary:\n"
            "    entries: List[str] = field(default_factory=list)\n"
        )
        assert lint_source(source) == []


class TestSL005FloatTimeEquality:
    def test_exact_lines(self):
        findings = fixture_findings("sl005_float_time_eq.py")
        assert {f.rule for f in findings} == {"SL005"}
        assert lines_for(findings, "SL005") == [9, 13, 17]

    def test_nan_guard_exempt(self):
        assert lint_source("def f(time: float) -> bool:\n    return time != time\n") == []

    def test_chained_comparison_positions(self):
        findings = lint_source("ok = 0.0 <= now == deadline\n")
        assert lines_for(findings, "SL005") == [1]


class TestSL006Layering:
    def test_exact_lines(self):
        findings = fixture_findings(
            "sl006_layering.py", module="repro.city.sl006_layering"
        )
        assert {f.rule for f in findings} == {"SL006"}
        assert lines_for(findings, "SL006") == [8, 9, 10]

    def test_relative_imports_resolved(self):
        findings = lint_source(
            "from ..analysis.report import PaperComparison\n",
            module="repro.experiment.fifty_year",
        )
        assert lines_for(findings, "SL006") == [1]

    def test_from_package_import_submodule(self):
        findings = lint_source(
            "from ..analysis import report\n",
            module="repro.experiment.fifty_year",
        )
        assert lines_for(findings, "SL006") == [1]

    def test_diary_import_allowed(self):
        assert lint_source(
            "from ..analysis.diary import ExperimentDiary\n",
            module="repro.experiment.fifty_year",
        ) == []

    def test_non_sim_layers_unconstrained(self):
        source = "from repro.runtime import MonteCarloRunner\n"
        assert lint_source(source, module="repro.cli") == []
        assert lint_source(source, module="repro.analysis.report") == []


class TestSL007NonTupleHeapEntry:
    def test_exact_lines(self):
        findings = fixture_findings("sl007_heap_entry.py")
        assert {f.rule for f in findings} == {"SL007"}
        assert lines_for(findings, "SL007") == [12, 16, 20, 24]

    def test_suppressed_requeue_clean(self):
        # The fixture's requeue function (the deliberate kernel idiom:
        # push back an entry previously popped from the same heap)
        # carries an ignore pragma and must not be reported.
        findings = fixture_findings("sl007_heap_entry.py")
        assert 28 not in lines_for(findings, "SL007")

    def test_tuple_entries_clean(self):
        source = (
            "import heapq\n"
            "def f(heap, ev):\n"
            "    heapq.heappush(heap, (ev.time, ev.priority, 0, ev))\n"
        )
        assert lint_source(source) == []

    def test_heappop_not_flagged(self):
        source = "import heapq\ndef f(heap):\n    return heapq.heappop(heap)\n"
        assert lint_source(source) == []

    def test_aliased_import_resolved(self):
        source = (
            "import heapq as hq\n"
            "def f(heap, ev):\n"
            "    hq.heappush(heap, ev)\n"
        )
        assert lines_for(lint_source(source), "SL007") == [3]


class TestSL008FaultRandomness:
    def test_exact_lines(self):
        findings = fixture_findings(
            "sl008_faults_rng.py", module="repro.faults.sl008_faults_rng"
        )
        assert {f.rule for f in findings} == {"SL008"}
        assert lines_for(findings, "SL008") == [11, 15, 19]

    def test_rule_scoped_to_faults_package(self):
        # The identical source outside repro.faults is out of scope.
        path = FIXTURES / "sl008_faults_rng.py"
        source = path.read_text()
        assert lint_source(source, module="repro.net.helium") == []
        assert lint_source(source, module="faults_utils") == []

    def test_stream_producers_allowed(self):
        source = (
            "def f(sim, controller, spec, pool):\n"
            "    a = sim.rng('faults:k').choice(len(pool))\n"
            "    b = controller.stream_for(spec).integers(0, 4)\n"
            "    c = sim.streams.get('faults:k').random()\n"
            "    return a, b, c\n"
        )
        assert lint_source(source, module="repro.faults.spec") == []

    def test_shared_stream_receiver_flagged(self):
        # Drawing from an object that is not visibly a stream or a
        # stream-producer call is exactly the bug class SL008 exists for.
        source = "def f(model):\n    return model.exponential(2.0)\n"
        findings = lint_source(source, module="repro.faults.spec")
        assert lines_for(findings, "SL008") == [2]


class TestSL009WallClockInSimLayer:
    def test_exact_lines(self):
        findings = fixture_findings(
            "sl009_wall_clock.py", module="repro.core.sl009_wall_clock"
        )
        assert {f.rule for f in findings} == {"SL009"}
        assert lines_for(findings, "SL009") == [12, 14, 18, 22, 26]

    def test_rule_scoped_to_sim_layers(self):
        # The identical source in runtime/cli (or module-less) is fine:
        # that is exactly where timing harnesses belong.
        path = FIXTURES / "sl009_wall_clock.py"
        source = path.read_text()
        assert lint_source(source, module="repro.runtime.runner") == []
        assert lint_source(source, module="repro.cli") == []
        assert lint_source(source) == []

    def test_obs_layer_in_scope(self):
        source = "import time\nx = time.monotonic()\n"
        findings = lint_source(source, module="repro.obs.trace")
        assert lines_for(findings, "SL009") == [2]

    def test_epoch_clock_in_sim_layer_fires_both_rules(self):
        # time.time() in a sim layer is doubly wrong: SL001 (epoch clock
        # anywhere) and SL009 (any clock in a sim layer).
        source = "import time\nx = time.time()\n"
        findings = lint_source(source, module="repro.net.device")
        assert lines_for(findings, "SL001") == [2]
        assert lines_for(findings, "SL009") == [2]


class TestCleanModule:
    def test_zero_findings(self):
        assert fixture_findings("clean.py") == []


class TestSuppression:
    def test_pragmas_silence_matching_rules_only(self):
        findings = fixture_findings("suppressed.py")
        # Only line 17 survives: its pragma names SL004, but the
        # violation is SL001.
        assert [(f.rule, f.line) for f in findings] == [("SL001", 17)]

    def test_bare_ignore_silences_everything_on_line(self):
        source = "import random  # simlint: ignore\n"
        assert lint_source(source) == []

    def test_skip_file(self):
        source = "# simlint: skip-file\nimport random\nx = random.random()\n"
        assert lint_source(source) == []

    def test_ignore_is_line_scoped(self):
        source = (
            "import random  # simlint: ignore[SL001]\n"
            "x = random.random()\n"
        )
        findings = lint_source(source)
        assert [(f.rule, f.line) for f in findings] == [("SL001", 2)]


class TestParseErrors:
    def test_syntax_error_reported_as_sl000(self):
        findings = lint_source("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR_RULE


class TestFindingModel:
    def test_format_is_clickable(self):
        finding = Finding("src/x.py", 3, 7, "SL001", "msg")
        assert finding.format() == "src/x.py:3:7: SL001 msg"

    def test_ordering_is_positional(self):
        a = Finding("a.py", 2, 1, "SL005", "m")
        b = Finding("a.py", 10, 1, "SL001", "m")
        assert sorted([b, a]) == [a, b]


class TestParseSuppressions:
    def test_multiple_pragmas_in_one_comment_merge(self):
        source = "x = 1  # simlint: ignore[SL005] simlint: ignore[SL007]\n"
        suppressions, skip = parse_suppressions(source)
        assert not skip
        assert suppressions == {1: frozenset({"SL005", "SL007"})}

    def test_blanket_ignore_wins_over_scoped(self):
        # Either order: once any pragma on the line is a bare `ignore`,
        # the whole line is exempt (empty frozenset).
        for source in (
            "x = 1  # simlint: ignore simlint: ignore[SL005]\n",
            "x = 1  # simlint: ignore[SL005] simlint: ignore\n",
        ):
            suppressions, __ = parse_suppressions(source)
            assert suppressions == {1: frozenset()}, source

    def test_duplicate_rule_ids_collapse(self):
        source = "x = 1  # simlint: ignore[SL001, SL001, sl001]\n"
        suppressions, __ = parse_suppressions(source)
        assert suppressions == {1: frozenset({"SL001"})}

    def test_lowercase_ids_normalized(self):
        source = "import random  # simlint: ignore[sl001]\n"
        assert lint_source(source) == []

    def test_tokenize_error_tolerated(self):
        suppressions, skip = parse_suppressions("x = (\n")
        assert suppressions == {} and not skip


class TestFileDiscovery:
    def test_same_tree_via_two_spellings_lints_once(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "mod.py").write_text("import random\n")
        once = iter_python_files([package])
        twice = iter_python_files([package, tmp_path / "." / "pkg"])
        assert len(once) == len(twice) == 1
        # Findings don't double up either.
        assert len(lint_paths([package, tmp_path / "." / "pkg"])) == 1

    def test_first_spelling_wins_for_reporting(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        relative = tmp_path / "." / "mod.py"
        files = iter_python_files([relative, tmp_path / "mod.py"])
        assert files == [relative]


class TestLintCache:
    def test_roundtrip_preserves_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import random\nx = random.random()\n")
        cache = LintCache(tmp_path / "cache")
        cold = lint_file(target, cache=cache)
        warm = lint_file(target, cache=cache)
        assert cold == warm
        assert cache.hits == 1 and cache.misses == 1

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        cache = LintCache(tmp_path / "cache")
        assert lint_file(target, cache=cache) == []
        target.write_text("import random\n")
        assert [f.rule for f in lint_file(target, cache=cache)] == ["SL001"]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        cache = LintCache(tmp_path / "cache")
        key = cache.key(str(target), target.read_bytes())
        lint_file(target, cache=cache)
        cache._entry(key).write_text("not json")
        assert lint_file(target, cache=cache) == []

    def test_warm_run_is_at_least_5x_faster(self, tmp_path):
        import time

        src_repro = Path(__file__).parents[2] / "src" / "repro"
        cache_dir = tmp_path / "cache"

        start = time.perf_counter()
        cold = lint_paths([src_repro], cache_dir=cache_dir)
        cold_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        warm = lint_paths([src_repro], cache_dir=cache_dir)
        warm_elapsed = time.perf_counter() - start

        assert cold == warm == []
        assert warm_elapsed * 5 <= cold_elapsed, (
            f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s"
        )
