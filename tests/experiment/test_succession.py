"""Tests for repro.experiment.succession (§4.5 experimenter log)."""

import numpy as np
import pytest

from repro.core import units
from repro.experiment import (
    SuccessionConfig,
    SuccessionModel,
    expected_handoffs,
)


def model(**kw):
    return SuccessionModel(config=SuccessionConfig(**kw))


class TestGeneration:
    def test_covers_horizon_contiguously(self, rng):
        m = model()
        custodians = m.generate(units.years(50.0), rng)
        assert custodians[0].starts_at == 0.0
        assert custodians[-1].ends_at == units.years(50.0)
        for a, b in zip(custodians, custodians[1:]):
            assert a.ends_at == b.starts_at

    def test_fifty_years_needs_several_custodians(self, rng):
        m = model(mean_tenure_years=7.0)
        custodians = m.generate(units.years(50.0), rng)
        assert len(custodians) >= 3  # founders retire before year 50

    def test_expected_handoffs_estimate(self):
        assert expected_handoffs(50.0, 7.0) == pytest.approx(50.0 / 7.0)
        with pytest.raises(ValueError):
            expected_handoffs(0.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            SuccessionConfig(mean_tenure_years=0.0)
        with pytest.raises(ValueError):
            SuccessionConfig(handoff_retention=0.0)
        with pytest.raises(ValueError):
            model().generate(0.0, rng)


class TestLookup:
    def test_custodian_at(self, rng):
        m = model()
        m.generate(units.years(50.0), rng)
        first = m.custodian_at(0.0)
        assert first.generation == 0
        last = m.custodian_at(units.years(49.9))
        assert last.generation >= first.generation

    def test_lookup_before_generate_rejected(self):
        with pytest.raises(RuntimeError):
            model().custodian_at(0.0)

    def test_handoffs_monotone(self, rng):
        m = model()
        m.generate(units.years(50.0), rng)
        counts = [m.handoffs_by(units.years(y)) for y in (0.0, 10.0, 25.0, 50.0)]
        assert counts == sorted(counts)
        assert counts[0] == 0


class TestKnowledgeDecay:
    def test_knowledge_declines_with_handoffs(self, rng):
        m = model(handoff_retention=0.8)
        m.generate(units.years(50.0), rng)
        assert m.knowledge_at(0.0) == 1.0
        assert m.knowledge_at(units.years(49.0)) < 1.0

    def test_miss_probability_rises(self, rng):
        m = model(handoff_retention=0.7, base_miss_probability=0.02)
        m.generate(units.years(50.0), rng)
        early = m.miss_probability_at(units.years(1.0))
        late = m.miss_probability_at(units.years(49.0))
        assert early == pytest.approx(0.02)
        assert late > early

    def test_perfect_retention_keeps_base_rate(self, rng):
        m = model(handoff_retention=1.0, base_miss_probability=0.02)
        m.generate(units.years(50.0), rng)
        assert m.miss_probability_at(units.years(49.0)) == pytest.approx(0.02)

    def test_miss_probability_capped_at_one(self, rng):
        m = model(handoff_retention=0.3, base_miss_probability=0.5)
        m.generate(units.years(200.0), rng)
        assert m.miss_probability_at(units.years(199.0)) <= 1.0


class TestRoster:
    def test_roster_lines(self, rng):
        m = model()
        m.generate(units.years(30.0), rng)
        roster = m.roster()
        assert len(roster) == len(m.custodians)
        assert roster[0].startswith("custodian-1:")
