"""Engine equivalence for the city-scale scenario.

``tests/experiment/golden/city-small_seed7.json`` was captured from the
*per-entity* engine (``benchmarks/capture_city_golden.py``) — one
:class:`~repro.net.device.EdgeDevice` and one
:class:`~repro.reliability.failure.FailureProcess` per sensor, the same
execution shape every other golden trace pins.  This suite demands:

1. the per-entity replay still produces the pinned executed-event trace
   bit for bit (SHA-256 over ``(time, priority, sequence, label)``), and
2. the cohort engine — one batched event servicing dozens of members —
   lands the *identical* fleet summary: every delivery, loss category,
   gap-histogram bucket, brownout-driven denial, uptime week, and death
   count equal to the per-entity run.

Together they prove cohort batching is an execution strategy, not a
model change: the two engines draw the same named RNG streams in the
same per-stream order, so plan+seed determinism carries across engines.
Event *counts* legitimately differ (that is the whole point of
batching), so they are compared against the fixture only for the
reference engine.

Both replays run under a strict InvariantAuditor.

If a future PR changes city behavior intentionally, re-capture with::

    PYTHONPATH=src python benchmarks/capture_city_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.city.scenario import CityScenario
from repro.faults import InvariantAuditor

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

from capture_city_golden import (  # noqa: E402
    STEM,
    TraceDigest,
    small_city_config,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def load_fixture() -> dict:
    return json.loads((GOLDEN_DIR / f"{STEM}.json").read_text())


def run_engine(engine: str, digest: TraceDigest | None = None) -> dict:
    city = CityScenario(small_city_config(engine))
    if digest is not None:
        city.sim.trace_executed = digest.add
    auditor = InvariantAuditor(city.sim, every=250, strict=True).install()
    summary = city.run()
    auditor.check_now()
    return summary


def test_per_entity_engine_reproduces_pinned_trace() -> None:
    fixture = load_fixture()
    assert fixture["version"] == 1
    digest = TraceDigest()
    summary = run_engine("per-entity", digest)
    # Head/tail first: on mismatch these show *where* execution diverged.
    assert digest.head == fixture["trace_head"]
    assert digest.tail == fixture["trace_tail"]
    assert digest.count == fixture["trace_events"]
    assert digest.sha.hexdigest() == fixture["trace_sha256"]
    assert summary == fixture["fleet_summary"] | {"engine": "per-entity"}


def test_cohort_engine_matches_reference_summary() -> None:
    fixture = load_fixture()
    summary = run_engine("cohort")
    # Same summary, field for field, except the engine tag itself.
    expected = dict(fixture["fleet_summary"], engine="cohort")
    assert summary == expected


def test_engines_agree_on_fresh_seeds() -> None:
    """Equivalence is a property, not a fixture accident: both engines
    must agree on seeds the golden capture never saw."""
    from dataclasses import replace

    for seed in (11, 23):
        base = small_city_config("per-entity")
        reference = CityScenario(replace(base, seed=seed)).run()
        cohort = CityScenario(
            replace(base, seed=seed, engine="cohort")
        ).run()
        assert dict(reference, engine="") == dict(cohort, engine="")
