"""Tests for the management-layer integrations in the 50-year harness:
succession-driven renewal misses and protocol-based gateway swaps."""

from dataclasses import replace

import pytest

from repro.core import units
from repro.experiment import FiftyYearConfig, FiftyYearExperiment, run_scenario


def config(**overrides):
    base = FiftyYearConfig(
        seed=5,
        horizon=units.years(12.0),
        n_154_devices=2,
        n_lora_devices=0,
        initial_hotspots=0,
        hotspot_arrivals_per_year=0.0,
        wallet_credits=0,
        n_owned_gateways=2,
        report_interval=units.days(2.0),
        renewal_miss_probability=0.0,
    )
    return replace(base, **overrides)


class TestSuccessionIntegration:
    def test_succession_model_attached(self):
        experiment = FiftyYearExperiment(
            config(model_succession=True, renewal_miss_probability=0.02)
        )
        experiment.build()
        assert experiment.succession is not None
        assert experiment.endpoint.miss_probability_fn is not None
        assert len(experiment.succession.custodians) >= 1

    def test_disabled_by_default(self):
        experiment = FiftyYearExperiment(config())
        experiment.build()
        assert experiment.succession is None
        assert experiment.endpoint.miss_probability_fn is None

    def test_roster_in_diary(self):
        result = FiftyYearExperiment(
            config(model_succession=True, horizon=units.years(30.0))
        ).run()
        assert "custodian-1" in result.diary.render()

    def test_staff_turnover_scenario_runs(self):
        result = run_scenario("staff-turnover", seed=3, horizon=units.years(2.0))
        assert result.overall.weeks > 0

    def test_miss_fn_overrides_constant(self, sim):
        from repro.net import CloudEndpoint

        cloud = CloudEndpoint(sim, renewal_miss_probability=0.0)
        cloud.miss_probability_fn = lambda t: 1.0  # always fumble
        cloud.deploy()
        sim.run_until(units.years(11.0))
        assert cloud.missed_renewals == 1


class TestCommissioningIntegration:
    def test_replacement_logs_protocol_labor(self):
        result = FiftyYearExperiment(config(horizon=units.years(20.0))).run()
        if result.gateway_replacements == 0:
            pytest.skip("no gateway failure drawn at this seed")
        # Protocol labor (install+enroll+verify ~2h) plus configured
        # swap hours: every replacement costs more than swap hours alone.
        per_swap = (
            result.maintenance.total_hours(tier="gateway")
            / result.gateway_replacements
        )
        assert per_swap > result.config.gateway_swap_hours

    def test_migration_noted_in_diary(self):
        result = FiftyYearExperiment(config(horizon=units.years(20.0))).run()
        if result.gateway_replacements == 0:
            pytest.skip("no gateway failure drawn at this seed")
        assert "migrated" in result.diary.render()


class TestFleetGrowth:
    def test_devices_added_over_time(self):
        cfg = config(
            n_lora_devices=1,
            initial_hotspots=10,
            hotspot_arrivals_per_year=4.0,
            wallet_credits=500_000,
            device_additions_per_year=3.0,
            horizon=units.years(5.0),
        )
        result = FiftyYearExperiment(cfg).run()
        lora_arm = result.arms["helium-lora"]
        assert len(lora_arm.device_names) > 1
        assert "added device" in result.diary.render()

    def test_mixed_harvester_types(self):
        cfg = config(
            n_lora_devices=0,
            initial_hotspots=10,
            hotspot_arrivals_per_year=4.0,
            wallet_credits=500_000,
            device_additions_per_year=6.0,
            horizon=units.years(3.0),
        )
        experiment = FiftyYearExperiment(cfg)
        experiment.run()
        sources = {type(d.power.source).__name__ for d in experiment.devices_lora}
        assert len(sources) >= 2  # more than one harvester type deployed

    def test_growth_disabled_by_default(self):
        cfg = config(n_lora_devices=1, initial_hotspots=5,
                     hotspot_arrivals_per_year=1.0, wallet_credits=500_000)
        experiment = FiftyYearExperiment(cfg)
        experiment.run()
        assert len(experiment.devices_lora) == 1

    def test_growing_fleet_scenario_registered(self):
        from repro.experiment import SCENARIOS
        assert "growing-fleet" in SCENARIOS
        assert SCENARIOS["growing-fleet"](1).device_additions_per_year > 0


class TestTrustIntegration:
    def _trust_config(self, **overrides):
        base = config(
            n_lora_devices=0,
            initial_hotspots=0,
            hotspot_arrivals_per_year=0.0,
            wallet_credits=0,
            model_trust=True,
            horizon=units.years(10.0),
        )
        from dataclasses import replace as _replace
        return _replace(base, **overrides)

    def test_registry_commissions_fleet(self):
        experiment = FiftyYearExperiment(self._trust_config())
        experiment.build()
        assert experiment.trust_registry is not None
        names = {d.name for d in experiment.devices_154}
        assert names <= set(experiment.trust_registry.records)

    def test_blocklists_synced_to_gateways(self):
        experiment = FiftyYearExperiment(self._trust_config())
        result = experiment.run()
        blocked = experiment.trust_registry.blocklist_at(experiment.sim.now)
        for gateway in experiment.owned_gateways:
            if gateway.alive:
                assert gateway.blocklist == set(blocked)
        assert result.overall.weeks > 0

    def test_aged_out_fleet_goes_dark(self):
        # Force a tiny cryptoperiod window by running past it: ed25519
        # degrades at 25 yr + 15 yr acceptance -> dark after year 40.
        experiment = FiftyYearExperiment(
            self._trust_config(horizon=units.years(45.0),
                               report_interval=units.days(7.0),
                               maintain_gateways=True)
        )
        result = experiment.run()
        blocked = set(experiment.trust_registry.blocklist_at(experiment.sim.now))
        alive_names = {d.name for d in experiment.devices_154 if d.alive}
        # Any surviving device is, by year 45, untrusted and blocked.
        assert alive_names <= blocked or not alive_names

    def test_disabled_by_default(self):
        experiment = FiftyYearExperiment(config())
        experiment.build()
        assert experiment.trust_registry is None
