"""Tests for repro.experiment.scenarios."""

import pytest

from repro.core import units
from repro.core.policy import AttachmentPolicy
from repro.experiment import (
    SCENARIOS,
    monte_carlo_uptime,
    run_scenario,
)


class TestScenarioCatalog:
    def test_all_scenarios_produce_configs(self):
        for name, factory in SCENARIOS.items():
            config = factory(1)
            assert config.seed == 1

    def test_owned_only_has_no_helium(self):
        config = SCENARIOS["owned-only"](1)
        assert config.n_lora_devices == 0
        assert config.initial_hotspots == 0

    def test_helium_only_has_no_owned(self):
        config = SCENARIOS["helium-only"](1)
        assert config.n_154_devices == 0
        assert config.n_owned_gateways == 0

    def test_unmaintained_flag(self):
        assert not SCENARIOS["unmaintained"](1).maintain_gateways

    def test_collapse_has_halflife(self):
        assert SCENARIOS["network-collapse"](1).network_halflife_years is not None

    def test_instance_bound_policy(self):
        config = SCENARIOS["instance-bound"](1)
        assert config.attachment is AttachmentPolicy.INSTANCE_BOUND

    def test_underfunded_wallet_smaller(self):
        assert (
            SCENARIOS["underfunded-wallet"](1).wallet_credits
            < SCENARIOS["as-designed"](1).wallet_credits
        )


class TestRunScenario:
    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            run_scenario("moon-base")

    def test_horizon_override(self):
        result = run_scenario("owned-only", seed=3, horizon=units.years(1.0))
        assert result.overall.weeks == int(units.years(1.0) // units.WEEK)

    def test_underfunded_wallet_runs_dry(self):
        result = run_scenario(
            "underfunded-wallet", seed=3, horizon=units.years(2.0)
        )
        # 12 devices at 6h cadence burn 100k*12 credits in well under
        # 2 years... wallet must show refusals by then.
        assert result.wallet.refusals == 0 or result.wallet.balance == 0


class TestMonteCarlo:
    def test_aggregates_runs(self):
        mc = monte_carlo_uptime("owned-only", runs=2, horizon=units.years(1.0))
        assert mc.runs == 2
        assert 0.0 <= mc.worst <= mc.mean <= 1.0

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            monte_carlo_uptime("owned-only", runs=0)


class TestMonteCarloOverrides:
    def test_report_interval_override(self):
        from repro.core import units
        from repro.experiment import monte_carlo_uptime

        mc = monte_carlo_uptime(
            "owned-only",
            runs=2,
            horizon=units.years(1.0),
            report_interval=units.days(7.0),
        )
        assert mc.runs == 2
        assert 0.0 <= mc.mean <= 1.0
