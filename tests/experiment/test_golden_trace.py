"""Golden event-order equivalence: the optimized kernel vs the seed kernel.

The fixtures under ``tests/experiment/golden/`` were captured from the
pre-optimization kernel (see ``benchmarks/capture_golden.py``).  Each one
pins the SHA-256 of the executed ``(time, priority, sequence, label)``
stream plus the FiftyYearResult summary for one (scenario, seed) pair.

These tests replay the same scenarios on the current kernel and demand
bit-identical traces.  Every replay runs with a *strict*
:class:`~repro.faults.InvariantAuditor` attached: the auditor is
read-only, so the pre-auditor hashes must still hold — and any runtime
invariant violation fails the case with entity and sim-time attached.
The ``as-designed-faults`` case additionally installs the pinned
ten-fault chaos plan (:func:`repro.faults.plans.pinned_chaos_plan`),
pinning the wounded trace and the executed fault stream counts.  A single reordered event, perturbed timestamp, or
shifted RNG draw flips the hash — this is the proof that the tuple-keyed
heap, fused ``run_until`` loop, candidate-gateway cache, and lazy
``hears()`` evaluation are pure optimizations, not behavior changes.

If a future PR changes behavior *intentionally*, re-capture with::

    PYTHONPATH=src python benchmarks/capture_golden.py --faults
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiment.fifty_year import FiftyYearExperiment
from repro.experiment.scenarios import SCENARIOS
from repro.faults import InvariantAuditor
from repro.faults.plans import pinned_chaos_plan

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: (fixture stem, scenario, seed, plan factory or None).
CASES = [
    ("owned-only_seed2021", "owned-only", 2021, None),
    ("owned-only_seed4242", "owned-only", 4242, None),
    ("as-designed_seed2021", "as-designed", 2021, None),
    ("as-designed_seed4242", "as-designed", 4242, None),
    ("as-designed-faults_seed2021", "as-designed", 2021, pinned_chaos_plan),
]


def trace_line(event) -> bytes:
    """Must match ``capture_golden.trace_line`` byte for byte."""
    return f"{event.time!r}|{event.priority}|{event.sequence}|{event.label}\n".encode()


class TraceDigest:
    def __init__(self) -> None:
        self.sha = hashlib.sha256()
        self.count = 0
        self.head = []
        self.tail = []

    def add(self, event) -> None:
        line = trace_line(event)
        self.sha.update(line)
        self.count += 1
        text = line.decode().rstrip("\n")
        if len(self.head) < 5:
            self.head.append(text)
        self.tail.append(text)
        if len(self.tail) > 5:
            self.tail.pop(0)


def summarize(result, sim) -> dict:
    """Must mirror ``capture_golden.summarize`` exactly."""
    arms = {}
    for key, arm in result.arms.items():
        arms[key] = {
            "weekly_uptime": arm.weekly_uptime,
            "longest_gap_weeks": arm.longest_gap_weeks,
            "devices_alive_at_end": arm.devices_alive_at_end,
            "delivered": arm.delivered,
            "attempts": arm.attempts,
        }
    return {
        "overall_uptime": result.overall.uptime,
        "longest_gap_weeks": result.overall.longest_gap_weeks,
        "arms": arms,
        "gateway_replacements": result.gateway_replacements,
        "device_touches": result.device_touches,
        "wallet_spent": result.wallet.spent,
        "wallet_balance": result.wallet.balance,
        "wallet_refusals": result.wallet.refusals,
        "maintenance_hours": result.maintenance.total_hours(),
        "executed_events": sim.executed_events,
        "log_records": len(sim.log),
    }


@pytest.mark.parametrize(
    "stem,scenario,seed,plan_factory", CASES, ids=[case[0] for case in CASES]
)
def test_golden_trace_equivalence(stem, scenario, seed, plan_factory) -> None:
    fixture_path = GOLDEN_DIR / f"{stem}.json"
    fixture = json.loads(fixture_path.read_text())
    assert fixture["version"] == 1

    digest = TraceDigest()
    config = SCENARIOS[scenario](seed)
    experiment = FiftyYearExperiment(config)
    plan = plan_factory() if plan_factory is not None else None
    if plan is not None:
        experiment.sim.install_faults(plan)
    experiment.sim.trace_executed = digest.add
    auditor = InvariantAuditor(experiment.sim, strict=True).install()
    result = experiment.run()
    auditor.check_now()

    # Head/tail first: on mismatch these show *where* execution diverged
    # instead of just "hash differs".
    assert digest.head == fixture["trace_head"]
    assert digest.tail == fixture["trace_tail"]
    assert digest.count == fixture["trace_events"]
    assert digest.sha.hexdigest() == fixture["trace_sha256"]
    assert summarize(result, experiment.sim) == fixture["summary"]
    if plan is not None:
        controller = experiment.sim.fault_controller
        assert fixture["faults"] == {
            "plan": plan.name,
            "specs": len(plan),
            "injected": controller.injected,
            "fired": controller.fired,
        }
