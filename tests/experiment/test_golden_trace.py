"""Golden event-order equivalence: the optimized kernel vs the seed kernel.

The fixtures under ``tests/experiment/golden/`` were captured from the
pre-optimization kernel (see ``benchmarks/capture_golden.py``).  Each one
pins the SHA-256 of the executed ``(time, priority, sequence, label)``
stream plus the FiftyYearResult summary for one (scenario, seed) pair.

These tests replay the same scenarios on the current kernel and demand
bit-identical traces.  A single reordered event, perturbed timestamp, or
shifted RNG draw flips the hash — this is the proof that the tuple-keyed
heap, fused ``run_until`` loop, candidate-gateway cache, and lazy
``hears()`` evaluation are pure optimizations, not behavior changes.

If a future PR changes behavior *intentionally*, re-capture with::

    PYTHONPATH=src python benchmarks/capture_golden.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiment.fifty_year import FiftyYearExperiment
from repro.experiment.scenarios import SCENARIOS

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

CASES = [
    ("owned-only", 2021),
    ("owned-only", 4242),
    ("as-designed", 2021),
    ("as-designed", 4242),
]


def trace_line(event) -> bytes:
    """Must match ``capture_golden.trace_line`` byte for byte."""
    return f"{event.time!r}|{event.priority}|{event.sequence}|{event.label}\n".encode()


class TraceDigest:
    def __init__(self) -> None:
        self.sha = hashlib.sha256()
        self.count = 0
        self.head = []
        self.tail = []

    def add(self, event) -> None:
        line = trace_line(event)
        self.sha.update(line)
        self.count += 1
        text = line.decode().rstrip("\n")
        if len(self.head) < 5:
            self.head.append(text)
        self.tail.append(text)
        if len(self.tail) > 5:
            self.tail.pop(0)


def summarize(result, sim) -> dict:
    """Must mirror ``capture_golden.summarize`` exactly."""
    arms = {}
    for key, arm in result.arms.items():
        arms[key] = {
            "weekly_uptime": arm.weekly_uptime,
            "longest_gap_weeks": arm.longest_gap_weeks,
            "devices_alive_at_end": arm.devices_alive_at_end,
            "delivered": arm.delivered,
            "attempts": arm.attempts,
        }
    return {
        "overall_uptime": result.overall.uptime,
        "longest_gap_weeks": result.overall.longest_gap_weeks,
        "arms": arms,
        "gateway_replacements": result.gateway_replacements,
        "device_touches": result.device_touches,
        "wallet_spent": result.wallet.spent,
        "wallet_balance": result.wallet.balance,
        "wallet_refusals": result.wallet.refusals,
        "maintenance_hours": result.maintenance.total_hours(),
        "executed_events": sim.executed_events,
        "log_records": len(sim.log),
    }


@pytest.mark.parametrize(
    "scenario,seed", CASES, ids=[f"{s}-seed{n}" for s, n in CASES]
)
def test_golden_trace_equivalence(scenario: str, seed: int) -> None:
    fixture_path = GOLDEN_DIR / f"{scenario}_seed{seed}.json"
    fixture = json.loads(fixture_path.read_text())
    assert fixture["version"] == 1

    digest = TraceDigest()
    config = SCENARIOS[scenario](seed)
    experiment = FiftyYearExperiment(config)
    experiment.sim.trace_executed = digest.add
    result = experiment.run()

    # Head/tail first: on mismatch these show *where* execution diverged
    # instead of just "hash differs".
    assert digest.head == fixture["trace_head"]
    assert digest.tail == fixture["trace_tail"]
    assert digest.count == fixture["trace_events"]
    assert digest.sha.hexdigest() == fixture["trace_sha256"]
    assert summarize(result, experiment.sim) == fixture["summary"]
