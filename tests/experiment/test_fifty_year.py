"""Tests for repro.experiment.fifty_year (short horizons for speed)."""

from dataclasses import replace

import pytest

from repro.core import units
from repro.core.policy import AttachmentPolicy
from repro.experiment import FiftyYearConfig, FiftyYearExperiment


def small_config(**overrides):
    base = FiftyYearConfig(
        seed=7,
        horizon=units.years(2.0),
        n_154_devices=3,
        n_lora_devices=3,
        n_owned_gateways=2,
        initial_hotspots=15,
        report_interval=units.hours(12.0),
        renewal_miss_probability=0.0,
    )
    return replace(base, **overrides)


class TestBuild:
    def test_build_assembles_all_tiers(self):
        experiment = FiftyYearExperiment(small_config())
        experiment.build()
        assert experiment.endpoint.alive
        assert experiment.campus.alive
        assert len(experiment.owned_gateways) == 2
        assert len(experiment.devices_154) == 3
        assert len(experiment.devices_lora) == 3
        assert len(experiment.helium.live_hotspots()) == 15

    def test_double_build_rejected(self):
        experiment = FiftyYearExperiment(small_config())
        experiment.build()
        with pytest.raises(RuntimeError):
            experiment.build()

    def test_wallet_provisioned(self):
        experiment = FiftyYearExperiment(small_config())
        experiment.build()
        assert experiment.helium.wallet.balance == small_config().wallet_credits


class TestRun:
    def test_short_run_delivers_data(self):
        result = FiftyYearExperiment(small_config()).run()
        assert result.overall.uptime > 0.9
        assert result.arms["owned-802.15.4"].delivered > 0
        assert result.arms["helium-lora"].delivered > 0

    def test_devices_never_touched(self):
        # §4's top-level constraint.
        result = FiftyYearExperiment(small_config()).run()
        assert result.device_touches == 0

    def test_wallet_debited_per_lora_delivery(self):
        result = FiftyYearExperiment(small_config()).run()
        assert result.wallet.spent >= result.arms["helium-lora"].delivered

    def test_summary_lines_render(self):
        result = FiftyYearExperiment(small_config()).run()
        text = "\n".join(result.summary_lines())
        assert "overall weekly uptime" in text
        assert "helium-lora" in text
        assert "wallet" in text

    def test_run_builds_if_needed(self):
        result = FiftyYearExperiment(small_config()).run()
        assert result.overall.weeks == int(units.years(2.0) // units.WEEK)

    def test_deterministic_per_seed(self):
        a = FiftyYearExperiment(small_config()).run()
        b = FiftyYearExperiment(small_config()).run()
        assert a.overall.uptime == b.overall.uptime
        assert a.wallet.spent == b.wallet.spent

    def test_seeds_differ(self):
        a = FiftyYearExperiment(small_config(seed=1)).run()
        b = FiftyYearExperiment(small_config(seed=2)).run()
        assert (
            a.wallet.spent != b.wallet.spent
            or a.arms["owned-802.15.4"].delivered
            != b.arms["owned-802.15.4"].delivered
        )


class TestMaintenance:
    def test_gateway_replacement_over_long_horizon(self):
        # Pi-class gateways have single-digit-year MTBF; over 15 years
        # with 2 gateways we expect replacements, logged with labor.
        config = small_config(horizon=units.years(15.0), n_lora_devices=0,
                              initial_hotspots=0, report_interval=units.days(1.0))
        result = FiftyYearExperiment(config).run()
        assert result.gateway_replacements >= 1
        assert result.maintenance.total_hours() > 0.0
        assert result.maintenance.count(tier="gateway", action="replace") == (
            result.gateway_replacements
        )

    def test_unmaintained_gateways_stay_dead(self):
        config = small_config(
            horizon=units.years(15.0),
            maintain_gateways=False,
            n_lora_devices=0,
            initial_hotspots=0,
            report_interval=units.days(1.0),
        )
        experiment = FiftyYearExperiment(config)
        result = experiment.run()
        assert result.gateway_replacements == 0
        assert result.maintenance.total_hours() == 0.0

    def test_diary_records_incidents(self):
        config = small_config(horizon=units.years(15.0), n_lora_devices=0,
                              initial_hotspots=0, report_interval=units.days(1.0))
        result = FiftyYearExperiment(config).run()
        text = result.diary.render()
        assert "experiment commenced" in text
        assert "gateway" in text


class TestPolicyEffect:
    def test_instance_bound_arm_degrades(self):
        kwargs = dict(
            horizon=units.years(12.0),
            n_lora_devices=0,
            initial_hotspots=0,
            n_owned_gateways=1,
            report_interval=units.days(1.0),
        )
        good = FiftyYearExperiment(small_config(**kwargs)).run()
        bad = FiftyYearExperiment(
            small_config(attachment=AttachmentPolicy.INSTANCE_BOUND, **kwargs)
        ).run()
        good_arm = good.arms["owned-802.15.4"]
        bad_arm = bad.arms["owned-802.15.4"]
        assert bad_arm.delivery_rate <= good_arm.delivery_rate
