"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "owned-only"])
        assert args.scenario == "owned-only"
        assert args.years == 10.0
        assert args.seed == 2021


class TestCommands:
    def test_scenarios_lists_catalog(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "as-designed" in out
        assert "staff-turnover" in out

    def test_la(self, capsys):
        assert main(["la"]) == 0
        out = capsys.readouterr().out
        assert "591,315" in out
        assert "197,105" in out

    def test_la_custom_minutes(self, capsys):
        assert main(["la", "--minutes", "60"]) == 0
        assert "591,315 person-hours" in capsys.readouterr().out

    def test_quote(self, capsys):
        assert main(["quote"]) == 0
        out = capsys.readouterr().out
        assert "438,000" in out
        assert "$5.00" in out

    def test_quote_faster_schedule(self, capsys):
        assert main(["quote", "--per-hour", "6"]) == 0
        assert "2,628,000" in capsys.readouterr().out

    def test_tco(self, capsys):
        assert main(["tco", "--gateways", "50", "--horizon", "30"]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out
        assert "fiber" in out

    def test_capacity(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "802.15.4" in out
        assert "lora-sf12" in out

    def test_run_short_scenario(self, capsys):
        code = main(
            ["run", "owned-only", "--years", "1", "--report-days", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "overall weekly uptime" in out

    def test_run_with_diary(self, capsys):
        code = main(
            ["run", "owned-only", "--years", "1", "--report-days", "7", "--diary"]
        )
        assert code == 0
        assert "experiment commenced" in capsys.readouterr().out

    def test_run_unknown_scenario(self, capsys):
        assert main(["run", "moonbase", "--years", "1"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_mc_study(self, capsys):
        code = main([
            "mc", "owned-only", "--runs", "2", "--years", "1",
            "--workers", "1", "--report-days", "7", "--per-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "peak pending queue" in out
        assert "peak-q" in out

    def test_mc_unknown_scenario(self, capsys):
        assert main(["mc", "moonbase", "--runs", "1"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path / "figs"), "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "e05_tco.csv" in out
        assert (tmp_path / "figs" / "e15_channel.csv").exists()
