"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "owned-only"])
        assert args.scenario == "owned-only"
        assert args.years == 10.0
        assert args.seed == 2021


class TestCommands:
    def test_scenarios_lists_catalog(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "as-designed" in out
        assert "staff-turnover" in out

    def test_la(self, capsys):
        assert main(["la"]) == 0
        out = capsys.readouterr().out
        assert "591,315" in out
        assert "197,105" in out

    def test_la_custom_minutes(self, capsys):
        assert main(["la", "--minutes", "60"]) == 0
        assert "591,315 person-hours" in capsys.readouterr().out

    def test_quote(self, capsys):
        assert main(["quote"]) == 0
        out = capsys.readouterr().out
        assert "438,000" in out
        assert "$5.00" in out

    def test_quote_faster_schedule(self, capsys):
        assert main(["quote", "--per-hour", "6"]) == 0
        assert "2,628,000" in capsys.readouterr().out

    def test_tco(self, capsys):
        assert main(["tco", "--gateways", "50", "--horizon", "30"]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out
        assert "fiber" in out

    def test_capacity(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "802.15.4" in out
        assert "lora-sf12" in out

    def test_run_short_scenario(self, capsys):
        code = main(
            ["run", "owned-only", "--years", "1", "--report-days", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "overall weekly uptime" in out

    def test_run_with_diary(self, capsys):
        code = main(
            ["run", "owned-only", "--years", "1", "--report-days", "7", "--diary"]
        )
        assert code == 0
        assert "experiment commenced" in capsys.readouterr().out

    def test_run_unknown_scenario(self, capsys):
        assert main(["run", "moonbase", "--years", "1"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_mc_study(self, capsys):
        code = main([
            "mc", "owned-only", "--runs", "2", "--years", "1",
            "--workers", "1", "--report-days", "7", "--per-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "peak pending queue" in out
        assert "peak-q" in out

    def test_mc_unknown_scenario(self, capsys):
        assert main(["mc", "moonbase", "--runs", "1"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path / "figs"), "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "e05_tco.csv" in out
        assert (tmp_path / "figs" / "e15_channel.csv").exists()

class TestShardedExecution:
    """mc --shard / mc-merge: the distributed-execution CLI surface."""

    MC = ["mc", "owned-only", "--runs", "4", "--years", "1",
          "--report-days", "7"]

    def test_shard_then_merge_matches_workers_1(self, tmp_path, capsys):
        single = tmp_path / "single.jsonl"
        assert main(self.MC + ["--workers", "1",
                               "--metrics", str(single)]) == 0
        shards = []
        for i in range(2):
            out = tmp_path / f"s{i}.mcr"
            assert main(self.MC + ["--shard", f"{i}/2",
                                   "--out", str(out)]) == 0
            shards.append(str(out))
        text = capsys.readouterr().out
        assert "shard 0/2" in text
        assert "shard 1/2" in text
        merged = tmp_path / "merged.jsonl"
        assert main(["mc-merge"] + shards + ["--metrics", str(merged)]) == 0
        assert "4 runs" in capsys.readouterr().out
        # The acceptance criterion: byte-identical metrics JSONL.
        assert merged.read_bytes() == single.read_bytes()

    def test_shard_requires_out(self, capsys):
        assert main(self.MC + ["--shard", "0/2"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_shard_rejects_metrics(self, tmp_path, capsys):
        args = self.MC + ["--shard", "0/2", "--out", str(tmp_path / "s.mcr"),
                          "--metrics", str(tmp_path / "m.jsonl")]
        assert main(args) == 2
        assert "mc-merge" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["2", "a/b", "2/2", "-1/2", "0/0"])
    def test_malformed_shard_spec(self, spec, tmp_path, capsys):
        args = self.MC + [f"--shard={spec}", "--out", str(tmp_path / "s.mcr")]
        assert main(args) == 2
        assert "shard" in capsys.readouterr().err

    def test_merge_rejects_incompatible_shards(self, tmp_path, capsys):
        a = tmp_path / "a.mcr"
        b = tmp_path / "b.mcr"
        assert main(self.MC + ["--shard", "0/2", "--out", str(a)]) == 0
        assert main(["mc", "owned-only", "--runs", "4", "--years", "1",
                     "--report-days", "7", "--base-seed", "999",
                     "--shard", "1/2", "--out", str(b)]) == 0
        capsys.readouterr()
        assert main(["mc-merge", str(a), str(b)]) == 2
        assert "cannot merge shards" in capsys.readouterr().err

    def test_merge_missing_file(self, tmp_path, capsys):
        assert main(["mc-merge", str(tmp_path / "nope.mcr")]) == 2
        assert "cannot merge shards" in capsys.readouterr().err
