"""Shared fixtures for the centurysim test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Simulation


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for sampling in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def sim() -> Simulation:
    """A fresh simulation with a fixed seed."""
    return Simulation(seed=42)
